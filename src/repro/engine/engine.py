"""The execution engine: batch evaluation with pluggable backends.

:class:`ExecutionEngine` sits between callers that produce batches of
independent :class:`~repro.engine.tasks.EvalTask` objects (the evaluator's
``evaluate_many``, the search framework's batched proposal loop, the
experiment runner's grid fan-out) and an
:class:`~repro.engine.backends.ExecutionBackend` that actually executes
them.  For every batch it

1. answers cached tasks straight from the evaluator's memoization cache,
2. deduplicates the remaining tasks by cache key so each unique
   ``(pipeline spec, fidelity)`` is evaluated exactly once,
3. dispatches the unique work to the backend in a stable order,
4. merges the results back into the evaluator's cache — both the
   in-memory LRU and, when the evaluator has a ``cache_dir``, the
   persistent cross-run cache (one batched append per shard), and
5. returns trial records in the original task order.

Determinism: tasks are dispatched and merged in submission order, and the
evaluator derives every low-fidelity subsample seed from the task itself
(seed, pipeline spec, fidelity) rather than from a shared RNG, so the
serial, thread and process backends produce bit-for-bit identical results.
"""

from __future__ import annotations

import time
import weakref

from repro.core.result import TrialRecord
from repro.engine.backends import ExecutionBackend, make_backend
from repro.engine.tasks import EvalTask
from repro.telemetry.metrics import get_registry


class PendingTask:
    """One submitted evaluation task, resolving to a :class:`TrialRecord`.

    Created by :meth:`ExecutionEngine.submit_task`; comes in three shapes:

    * *resolved at submit* — the evaluator's cache already held the entry,
      so the record is available immediately and no work was dispatched;
    * *primary* — owns the backend future actually computing the entry;
    * *alias* — shares a primary's in-flight future (the completion-driven
      analogue of an in-batch duplicate under :meth:`ExecutionEngine.run`).

    ``ready()`` never blocks; :meth:`ExecutionEngine.resolve_task` blocks
    until the record is available and performs the per-completion cache
    merge-back.  ``cancel()`` succeeds only for work that never produced a
    result: aliases always cancel (they dispatched nothing of their own),
    primaries cancel iff their backend future does — which is what lets a
    budget interruption refund exactly the never-dispatched tasks.
    """

    __slots__ = ("task", "key", "future", "_primary", "_entry", "_record",
                 "_cancelled")

    def __init__(self, task: EvalTask, key, *, future=None, primary=None,
                 entry=None) -> None:
        self.task = task
        self.key = key
        self.future = future
        self._primary = primary
        self._entry = entry
        self._record: TrialRecord | None = None
        self._cancelled = False

    def ready(self) -> bool:
        """Whether resolving would return without blocking."""
        if self._record is not None or self._entry is not None:
            return True
        if self._primary is not None:
            return self._primary.ready()
        return self.future is not None and self.future.done()

    def cancel(self) -> bool:
        """Cancel work that has not produced a result yet; True on success."""
        if self._cancelled:
            return True
        if self._record is not None or self._entry is not None:
            return False
        if self._primary is not None:
            # An alias never dispatched its own work: dropping it leaves the
            # primary's future untouched and is always safe.
            self._cancelled = True
            return True
        if self.future is not None and self.future.cancel():
            self._cancelled = True
            return True
        return False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = ("cancelled" if self._cancelled
                 else "done" if self.ready() else "pending")
        return f"PendingTask({self.task.pipeline!r}, {state})"


class ExecutionEngine:
    """Dispatch batches of evaluation tasks to a pluggable backend.

    Parameters
    ----------
    backend:
        Backend name (``"serial"``, ``"thread"``, ``"process"``) or an
        :class:`~repro.engine.backends.ExecutionBackend` instance.
    n_workers:
        Worker count for named backends; ``None`` or ``-1`` uses one
        worker per CPU core.
    eval_timeout:
        Optional per-evaluation deadline in seconds (see
        :class:`~repro.engine.backends.ExecutionBackend`).
    retry_policy:
        Optional :class:`~repro.engine.faults.RetryPolicy` for transient
        worker failures.
    """

    def __init__(self, backend: str | ExecutionBackend = "serial", *,
                 n_workers: int | None = None,
                 eval_timeout: float | None = None,
                 retry_policy=None,
                 remote_coordinator: str | None = None,
                 worker_timeout: float | None = None) -> None:
        self.backend = make_backend(backend, n_workers=n_workers,
                                    eval_timeout=eval_timeout,
                                    retry_policy=retry_policy,
                                    remote_coordinator=remote_coordinator,
                                    worker_timeout=worker_timeout)
        #: primaries still computing, keyed by (evaluator id, cache key) so a
        #: duplicate submission aliases the in-flight future instead of
        #: re-dispatching the same work.  Each entry carries a weakref to
        #: its evaluator: abandoned entries whose evaluator died must never
        #: alias a later evaluator that CPython allocated at the same id.
        self._inflight: dict = {}
        #: every live backend future, for close()-time cancellation; weak so
        #: consumed futures vanish on their own
        self._futures: "weakref.WeakSet" = weakref.WeakSet()

    @property
    def n_workers(self) -> int:
        return self.backend.n_workers

    # ------------------------------------------------------------- generic
    def map(self, fn, items) -> list:
        """Map ``fn`` over ``items`` on the backend, preserving input order.

        Used for coarse-grained fan-out (e.g. whole experiment-grid cells);
        with a process backend ``fn`` must be a picklable module-level
        function.
        """
        return self.backend.map(fn, list(items))

    # ---------------------------------------------------------- evaluation
    def run(self, evaluator, tasks) -> list[TrialRecord]:
        """Evaluate a batch of tasks and return records in task order.

        Cached tasks never reach the backend; duplicate uncached tasks
        within the batch are evaluated once and fanned back out (matching
        what the evaluator's cache would have done serially).  When the
        evaluator's cache is disabled every task is executed individually,
        mirroring serial semantics.
        """
        tasks = [task if isinstance(task, EvalTask) else EvalTask(task)
                 for task in tasks]
        records: list[TrialRecord | None] = [None] * len(tasks)

        # Partition into cache hits and groups of identical pending work.
        pending: dict = {}
        for index, task in enumerate(tasks):
            key = evaluator.cache_key(task.pipeline, task.fidelity)
            if evaluator.cache_enabled and key in pending:
                # A duplicate of work already queued in this batch: it will
                # be served by that evaluation's entry, which serially would
                # have been a cache hit — count it as one.
                pending[key].append(index)
                evaluator.cache_hits += 1
                continue
            entry = evaluator.cache_lookup(key)
            if entry is not None:
                records[index] = evaluator.record_from_entry(task, entry)
            elif evaluator.cache_enabled:
                pending[key] = [index]
            else:
                # No cache: no dedup either — every task runs, like serial.
                pending[(key, index)] = [index]

        if pending:
            groups = list(pending.values())
            tracer = getattr(evaluator, "tracer", None)
            batch_wall = time.time() if tracer is not None else 0.0
            batch_start = time.perf_counter()
            inflight = get_registry().gauge("engine.inflight")
            inflight.inc(len(groups))
            # Longest-processing-time-first dispatch: parallel waves finish
            # at the speed of their slowest member, so a long pipeline
            # landing last tail-blocks the whole batch.  Pipeline length is
            # the natural cost proxy (each step adds a fit+transform pass
            # over the data); ties keep submission order, and the results
            # are scattered back to submission order below, so every
            # downstream consumer — records, cache merge-back — is
            # oblivious to the reordering.  Serial backends skip the sort:
            # submission order IS the deterministic reference order.
            order = list(range(len(groups)))
            if len(order) > 1 and self.backend.n_workers > 1:
                order.sort(key=lambda i: (-len(tasks[groups[i][0]].pipeline), i))
            work = [
                (tasks[groups[i][0]].pipeline, tasks[groups[i][0]].fidelity)
                for i in order
            ]
            try:
                dispatched = [
                    evaluator.absorb_worker_counters(entry)
                    for entry in self.backend.run_evaluations(evaluator, work)
                ]
            finally:
                inflight.dec(len(groups))
            if tracer is not None:
                tracer.emit("engine.batch", ts=batch_wall,
                            dur=time.perf_counter() - batch_start,
                            tasks=len(tasks), dispatched=len(groups),
                            backend=type(self.backend).__name__)
            entries: list = [None] * len(groups)
            for position, index in enumerate(order):
                entries[index] = dispatched[position]
            merged = []
            for group, entry in zip(groups, entries):
                first = tasks[group[0]]
                merged.append(
                    (evaluator.cache_key(first.pipeline, first.fidelity), entry)
                )
                evaluator.n_evaluations += 1
                for index in group:
                    records[index] = evaluator.record_from_entry(tasks[index], entry)
            # One merge-back for the whole batch: results computed by
            # thread/process workers land in the evaluator's LRU and — when
            # a cache_dir is set — in the persistent cross-run cache, one
            # append per touched shard instead of one write per task.
            evaluator.cache_store_batch(merged)

        return records

    # ------------------------------------------------------------- futures
    def submit_task(self, evaluator, task) -> PendingTask:
        """Submit one task for evaluation; returns a :class:`PendingTask`.

        Cache-aware, like :meth:`run` is for batches: a task whose entry
        the evaluator's cache already holds resolves immediately without
        touching the backend, and a task identical to one still in flight
        aliases that future instead of re-dispatching the work.
        """
        task = task if isinstance(task, EvalTask) else EvalTask(task)
        key = evaluator.cache_key(task.pipeline, task.fidelity)
        if evaluator.cache_enabled:
            # Probe in-flight work before the cache: an aliased duplicate
            # counts one hit at resolve time (like an in-batch duplicate
            # under run()) and must not also record a lookup miss here.
            primary = self._inflight_primary(evaluator, key)
            if primary is not None and not primary.cancelled:
                return PendingTask(task, key, future=primary.future,
                                   primary=primary)
            entry = evaluator.cache_lookup(key)
            if entry is not None:
                return PendingTask(task, key, entry=entry)
        future = self.backend.submit_evaluation(
            evaluator, (task.pipeline, task.fidelity)
        )
        # Only primaries count toward in-flight depth: aliases and
        # cache-resolved tasks never dispatched work of their own.
        get_registry().gauge("engine.inflight").inc()
        pending = PendingTask(task, key, future=future)
        if evaluator.cache_enabled:
            self._inflight[(id(evaluator), key)] = (weakref.ref(evaluator),
                                                    pending)
        self._futures.add(future)
        return pending

    def _inflight_primary(self, evaluator, key) -> PendingTask | None:
        """The in-flight primary for ``(evaluator, key)``, if still valid.

        A stale entry — its evaluator garbage-collected, possibly with the
        id re-used by a new evaluator — is purged instead of aliased, so an
        abandoned submission can never leak another evaluator's result.
        """
        entry = self._inflight.get((id(evaluator), key))
        if entry is None:
            return None
        owner, primary = entry
        if owner() is not evaluator:
            del self._inflight[(id(evaluator), key)]
            return None
        return primary

    def submit_tasks(self, evaluator, tasks) -> list[PendingTask]:
        """Submit a batch of tasks; returns pending handles in task order."""
        return [self.submit_task(evaluator, task) for task in tasks]

    def resolve_task(self, evaluator, pending: PendingTask) -> TrialRecord:
        """Block until ``pending`` completes and return its trial record.

        This is where the per-completion cache merge-back happens: the
        entry computed by the worker lands in the evaluator's LRU and —
        when a ``cache_dir`` is set — the persistent disk cache the moment
        it completes, not at the end of a batch.
        """
        if pending._record is not None:
            return pending._record
        if pending._entry is None:
            if pending._primary is not None:
                self.resolve_task(evaluator, pending._primary)
                pending._entry = pending._primary._entry
                # The duplicate would have been a cache hit under serial
                # execution; keep the counters comparable.
                evaluator.cache_hits += 1
            else:
                entry = evaluator.absorb_worker_counters(
                    pending.future.result()
                )
                get_registry().gauge("engine.inflight").dec()
                evaluator.n_evaluations += 1
                evaluator.cache_store(pending.key, entry)
                self._inflight.pop((id(evaluator), pending.key), None)
                pending._entry = entry
        pending._record = evaluator.record_from_entry(pending.task, pending._entry)
        return pending._record

    def cancel_task(self, evaluator, pending: PendingTask) -> bool:
        """Cancel a pending task if its work never ran; True on success."""
        if not pending.cancel():
            return False
        if pending._primary is None:
            # A cancelled primary's dispatched work will never resolve:
            # release its in-flight slot here instead.
            get_registry().gauge("engine.inflight").dec()
            if self._inflight_primary(evaluator, pending.key) is pending:
                del self._inflight[(id(evaluator), pending.key)]
        return True

    def wait_any(self, pending) -> None:
        """Block until at least one of ``pending`` is ready to resolve."""
        pending = [item for item in pending if not item.ready()]
        futures = [item.future for item in pending if item.future is not None]
        if futures:
            self.backend.wait_any(futures)

    def as_completed(self, evaluator, pending):
        """Yield ``(index, record)`` pairs as submitted tasks complete.

        ``index`` is the position in ``pending``.  On the serial backend
        completions arrive strictly in submission order with values
        identical to :meth:`run`; on thread/process backends cache-resolved
        tasks are yielded first (in submission order) and the rest as their
        futures finish, ties broken by submission order.
        """
        pending = list(pending)
        if self.backend.ordered_completion:
            for index, item in enumerate(pending):
                yield index, self.resolve_task(evaluator, item)
            return
        remaining = dict(enumerate(pending))
        while remaining:
            ready = [index for index, item in remaining.items() if item.ready()]
            if not ready:
                self.wait_any(remaining.values())
                continue
            for index in ready:
                yield index, self.resolve_task(evaluator, remaining.pop(index))

    def close(self) -> None:
        """Cancel in-flight futures and release the backend's pooled workers.

        Safe to call twice.  Futures that never started are cancelled (so a
        search cut short by a budget does not leave its backlog running) and
        pool shutdown waits for the workers, so no worker process is ever
        orphaned.  Backends also release their pools at interpreter exit, so
        calling this is only needed to free workers eagerly mid-process.
        """
        for future in list(self._futures):
            future.cancel()
        self._futures.clear()
        self._inflight.clear()
        self.backend.close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ExecutionEngine(backend={self.backend!r})"


def resolve_backend_name(n_jobs: int | None = None,
                         backend: str | None = None) -> str:
    """The single defaulting rule for CLI-style ``n_jobs``/``backend`` options.

    An unset backend (``None``) resolves to ``"process"`` when ``n_jobs``
    asks for parallelism, because pipeline evaluation is CPU-bound, and to
    ``"serial"`` otherwise.  An explicitly chosen backend — including
    ``"serial"`` — is returned unchanged.
    """
    if backend is not None:
        return backend
    return "process" if n_jobs not in (None, 1) else "serial"


def resolve_engine(n_jobs: int | None = None,
                   backend: str | ExecutionBackend | None = None, *,
                   eval_timeout: float | None = None,
                   retry_policy=None,
                   remote_coordinator: str | None = None,
                   worker_timeout: float | None = None
                   ) -> ExecutionEngine | None:
    """Build an engine from CLI-style ``n_jobs`` / ``backend`` options.

    Returns ``None`` (meaning: plain serial evaluation, no engine overhead)
    when the options resolve to single-worker serial execution (see
    :func:`resolve_backend_name`).  ``n_jobs=-1`` means one worker per CPU
    core.  ``eval_timeout`` / ``retry_policy`` configure the backend's
    fault tolerance (ignored on the engineless serial path, which has no
    pool to watch — use ``ExecutionContext.build_engine`` to force an
    engine when a deadline matters).  ``remote_coordinator`` /
    ``worker_timeout`` are forwarded only when the resolved backend is
    ``"remote"``: a globally exported ``REPRO_REMOTE_COORDINATOR`` must
    not break contexts that run serial or process backends.
    """
    if isinstance(backend, ExecutionBackend):
        return ExecutionEngine(backend, eval_timeout=eval_timeout,
                               retry_policy=retry_policy)
    name = resolve_backend_name(n_jobs, backend)
    if name == "serial":
        return None
    n_workers = None if n_jobs in (None, -1) else n_jobs
    if name != "remote":
        remote_coordinator = None
        worker_timeout = None
    return ExecutionEngine(name, n_workers=n_workers,
                           eval_timeout=eval_timeout,
                           retry_policy=retry_policy,
                           remote_coordinator=remote_coordinator,
                           worker_timeout=worker_timeout)
