"""Failure taxonomy, retry policy, and fault-injection primitives.

Fault tolerance is built from three small pieces that the backends
(:mod:`repro.engine.backends`) compose:

* a **taxonomy** — :class:`WorkerCrashError` (a pool worker died),
  :class:`TransientEvaluationError` (a retryable infrastructure hiccup)
  and :class:`EvaluationTimeoutError` (a deadline expired) — plus
  :func:`classify_failure`, which decides whether an error is worth
  retrying at all;
* a :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *seeded* jitter, so recovery never draws from global RNG state
  (RPR001) and never sleeps unboundedly (RPR008);
* the **injection primitives** the chaos harness
  (:mod:`repro.engine.chaos`) attaches to work items:
  :class:`InjectedFault` descriptions wrapped around ``(pipeline,
  fidelity)`` pairs as :class:`FaultInjection` items, applied either
  inside a pool worker (:func:`apply_fault_in_worker` — a ``crash``
  genuinely kills the process) or inline
  (:func:`apply_fault_inline` — a ``crash`` raises
  :class:`WorkerCrashError` for the serial/thread retry envelope).

A task lost to infrastructure resolves to a :func:`failure_entry` — a
normal cache-entry dict with ``failure_kind`` set — so it flows through
the existing record pipeline as a failed :class:`TrialRecord` instead of
killing the search.  Failure entries carry zero timings and accuracy
0.0, which keeps a crash-and-recover run's records bit-for-bit
comparable across repeats of the same fault plan.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError, ValidationError

#: ``failure_kind`` of a trial quarantined after repeated worker crashes
FAILURE_KIND_CRASH = "worker_crash"
#: ``failure_kind`` of a trial that exceeded the evaluation deadline
FAILURE_KIND_TIMEOUT = "timeout"

#: exit code of a chaos-killed worker (distinctive in core dumps / logs)
CRASH_EXIT_CODE = 77


class WorkerCrashError(ReproError):
    """A pool worker died (or was killed) while computing an evaluation."""


class TransientEvaluationError(ReproError):
    """A retryable infrastructure failure during one evaluation attempt.

    Raised for failures that say nothing about the pipeline being
    evaluated — a flaky IPC channel, an injected chaos exception — so
    the same work is expected to succeed on a clean retry.
    """


class EvaluationTimeoutError(ReproError):
    """An evaluation exceeded the context's ``eval_timeout`` deadline.

    Deadline expiry is *permanent* for the task that blew it: retrying a
    deterministic evaluation that just proved it cannot finish in time
    would hang the search for another full deadline.
    """


#: error types a :class:`RetryPolicy` treats as retryable.  ``OSError``
#: covers the IPC layer (broken pipes, fork failures); ``BrokenExecutor``
#: is how ``concurrent.futures`` reports a dead pool.
TRANSIENT_ERROR_TYPES = (
    WorkerCrashError,
    TransientEvaluationError,
    BrokenExecutor,
    OSError,
)


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is worth retrying (see :data:`TRANSIENT_ERROR_TYPES`).

    :class:`EvaluationTimeoutError` is checked first: it derives from
    nothing transient, but being explicit here keeps the
    timeout-is-permanent decision in one greppable place.
    """
    if isinstance(error, EvaluationTimeoutError):
        return False
    return isinstance(error, TRANSIENT_ERROR_TYPES)


def classify_failure(error: BaseException) -> str:
    """``"transient"`` (retry may succeed) or ``"permanent"`` (give up)."""
    return "transient" if is_transient(error) else "permanent"


def failure_entry(kind: str) -> dict:
    """The cache-entry shape of an evaluation lost to infrastructure.

    Zero timings on purpose: wall-clock spent crashing or hanging is
    nondeterministic, and two runs of the same fault plan must produce
    identical records.  Entries carrying a ``failure_kind`` are never
    persisted to the evaluation caches (see
    ``PipelineEvaluator.cache_store``) — the fault describes this *run*,
    not the pipeline.
    """
    if kind not in (FAILURE_KIND_CRASH, FAILURE_KIND_TIMEOUT):
        raise ValidationError(
            f"failure kind must be {FAILURE_KIND_CRASH!r} or "
            f"{FAILURE_KIND_TIMEOUT!r}, got {kind!r}"
        )
    return {"accuracy": 0.0, "prep_time": 0.0, "train_time": 0.0,
            "failed": True, "failure_kind": kind}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Attributes
    ----------
    max_attempts:
        Total tries per task (first attempt included).  A task still
        failing transiently on its ``max_attempts``-th try is
        quarantined as a ``worker_crash`` record.
    base_delay:
        Backoff before the second attempt, in seconds; attempt ``n``
        waits ``base_delay * 2**(n-1)``, capped at ``max_delay``.
    max_delay:
        Upper bound on any single backoff sleep.
    jitter:
        Fractional jitter added on top of the backoff (``0.1`` = up to
        +10%), drawn from a generator seeded by ``(seed, attempt)`` —
        never from global RNG state — so delays are reproducible and
        never influence search results (only wall-clock).
    seed:
        Jitter seed.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if int(self.max_attempts) < 1:
            raise ValidationError(
                f"max_attempts must be at least 1, got {self.max_attempts!r}"
            )
        object.__setattr__(self, "max_attempts", int(self.max_attempts))
        for name in ("base_delay", "max_delay", "jitter"):
            value = float(getattr(self, name))
            if value < 0:
                raise ValidationError(
                    f"{name} must be >= 0, got {getattr(self, name)!r}"
                )
            object.__setattr__(self, name, value)
        object.__setattr__(self, "seed", int(self.seed))

    def should_retry(self, attempt: int,
                     error: BaseException | None = None) -> bool:
        """Whether try number ``attempt`` (1-based) may be followed by another."""
        if attempt >= self.max_attempts:
            return False
        return error is None or is_transient(error)

    def delay(self, attempt: int) -> float:
        """Backoff after try number ``attempt`` failed, in seconds."""
        if attempt < 1:
            raise ValidationError(f"attempt must be >= 1, got {attempt!r}")
        base = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if base <= 0 or self.jitter <= 0:
            return base
        rng = np.random.default_rng(
            (self.seed * 0x9E3779B1 + attempt) % 2**32
        )
        return base * (1.0 + self.jitter * float(rng.random()))

    def sleep(self, attempt: int) -> None:
        """Sleep the backoff for ``attempt`` (the one call site of the delay)."""
        backoff = self.delay(attempt)
        if backoff > 0:
            time.sleep(backoff)


# ----------------------------------------------------------- fault injection
#: the fault kinds a chaos plan can schedule.  ``drop_worker`` is a
#: *membership* fault — it disconnects a live remote worker instead of
#: sabotaging the task itself — and is intercepted by the chaos backend
#: before the work item ships (see ``ChaosBackend._wrap``); it must
#: never reach the per-task apply functions below.
CHAOS_FAULT_KINDS = ("crash", "error", "delay", "drop_worker")


@dataclass(frozen=True)
class InjectedFault:
    """One planned fault: what goes wrong when its task is evaluated.

    ``crash`` kills the worker process (``os._exit``) under the process
    backend and raises :class:`WorkerCrashError` inline; ``error``
    raises :class:`TransientEvaluationError`; ``delay`` sleeps
    ``delay`` seconds before evaluating (a hang, from the watchdog's
    point of view).  A fault fires on the task's *first* attempt only,
    unless ``sticky`` — sticky faults follow the task through every
    retry, which is how quarantine paths are exercised.
    """

    kind: str
    delay: float = 0.0
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_FAULT_KINDS:
            raise ValidationError(
                f"fault kind must be one of {list(CHAOS_FAULT_KINDS)}, "
                f"got {self.kind!r}"
            )
        delay = float(self.delay)
        if delay < 0:
            raise ValidationError(
                f"fault delay must be >= 0 seconds, got {self.delay!r}"
            )
        object.__setattr__(self, "delay", delay)
        object.__setattr__(self, "sticky", bool(self.sticky))


class FaultInjection:
    """A work item carrying its planned fault: ``(pair, fault)``.

    Pickled to process-pool workers in place of the bare ``(pipeline,
    fidelity)`` pair; every evaluation path unwraps it through
    :func:`unwrap_work_item`.
    """

    __slots__ = ("pair", "fault")

    def __init__(self, pair, fault: InjectedFault) -> None:
        self.pair = pair
        self.fault = fault

    def __repr__(self) -> str:
        return f"FaultInjection({self.pair!r}, {self.fault!r})"


def unwrap_work_item(item):
    """``(pair, fault)`` for any work item; ``fault`` is None when clean."""
    if isinstance(item, FaultInjection):
        return item.pair, item.fault
    return item, None


def strip_fault(item):
    """The work item to resubmit after a failed attempt.

    A non-sticky fault fires once: the retry runs clean, which is what
    makes a crash-and-recover run converge to the no-fault results.
    """
    pair, fault = unwrap_work_item(item)
    if fault is not None and fault.sticky:
        return item
    return pair


def apply_fault_in_worker(fault: InjectedFault) -> None:
    """Apply ``fault`` inside a process-pool worker (the real thing).

    ``crash`` bypasses every ``finally``/atexit hook — exactly what an
    OOM kill or segfault looks like to the parent (``BrokenProcessPool``
    on every in-flight future of the pool).
    """
    if fault.kind == "drop_worker":
        raise ValidationError(
            "drop_worker is a membership fault handled by the chaos "
            "backend before dispatch; it cannot be applied to a task"
        )
    if fault.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if fault.kind == "delay":
        time.sleep(fault.delay)
    elif fault.kind == "error":
        raise TransientEvaluationError(
            "chaos: injected transient evaluation failure"
        )


def apply_fault_inline(fault: InjectedFault) -> None:
    """Apply ``fault`` in-process (serial/thread backends).

    A ``crash`` cannot kill anything here — the worker thread *is* the
    search — so it raises :class:`WorkerCrashError` for the retry
    envelope to catch, simulating the recovery path the process backend
    takes for real.
    """
    if fault.kind == "drop_worker":
        raise ValidationError(
            "drop_worker is a membership fault handled by the chaos "
            "backend before dispatch; it cannot be applied to a task"
        )
    if fault.kind == "crash":
        raise WorkerCrashError("chaos: injected worker crash")
    if fault.kind == "delay":
        time.sleep(fault.delay)
    elif fault.kind == "error":
        raise TransientEvaluationError(
            "chaos: injected transient evaluation failure"
        )
