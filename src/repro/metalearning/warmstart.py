"""Warm-started search: seed any algorithm's initial pipelines from meta-knowledge.

``WarmStartedSearch`` wraps an existing search algorithm and overrides its
Step-1 initial pipelines with suggestions retrieved from a
:class:`~repro.metalearning.store.MetaKnowledgeStore` (best pipelines of the
most similar previously-solved datasets), topping up with random pipelines
when the store has too few suggestions.  Everything else — the surrogate
updates, the proposal strategy, the budget handling — is inherited from the
wrapped algorithm, so warm starting composes with all 15 searchers.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import Budget
from repro.core.pipeline import Pipeline
from repro.core.problem import AutoFPProblem
from repro.core.result import SearchResult
from repro.core.search_space import SearchSpace
from repro.exceptions import SearchSpaceError
from repro.metalearning.store import MetaKnowledgeStore
from repro.search.base import SearchAlgorithm


class WarmStartedSearch(SearchAlgorithm):
    """Wrap a search algorithm with meta-learned initial pipelines.

    Parameters
    ----------
    base:
        The search algorithm to wrap (its class attributes and hooks are
        reused unchanged).
    store:
        The meta-knowledge store to query.
    n_warm:
        Maximum number of warm-start pipelines injected before the wrapped
        algorithm's own initialisation.
    model_name:
        Restrict retrieval to tasks solved with this downstream model
        (``None`` retrieves across models).
    """

    name = "warmstart"
    category = "meta"

    def __init__(self, base: SearchAlgorithm, store: MetaKnowledgeStore,
                 *, n_warm: int = 5, model_name: str | None = None,
                 random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        self.base = base
        self.store = store
        self.n_warm = int(n_warm)
        self.model_name = model_name
        self.name = f"warmstart[{base.name}]"
        self.warm_pipelines_: list[Pipeline] = []

    # ----------------------------------------------------------------- API
    def search(self, problem: AutoFPProblem, budget: Budget | None = None,
               *, max_trials: int = 50) -> SearchResult:
        """Retrieve warm-start pipelines for ``problem`` and run the wrapped search."""
        evaluator = problem.evaluator
        X = np.vstack([evaluator.X_train, evaluator.X_valid])
        y = np.concatenate([evaluator.y_train, evaluator.y_valid])
        self.warm_pipelines_ = self.store.suggested_pipelines(
            X, y, model=self.model_name, max_pipelines=self.n_warm,
            random_state=self.random_state,
        )
        # Filter suggestions to pipelines expressible in the problem's space.
        usable = []
        for pipeline in self.warm_pipelines_:
            try:
                problem.space.indices_of(pipeline)
            except SearchSpaceError:
                # A prior task's pipeline may use preprocessors this
                # problem's space does not offer; skipping it is the point.
                continue
            if len(pipeline) <= problem.space.max_length:
                usable.append(pipeline)
        self.warm_pipelines_ = usable
        return super().search(problem, budget, max_trials=max_trials)

    # ----------------------------------------------------------------- hooks
    def _setup(self, problem, rng) -> None:
        self.base._setup(problem, rng)

    def _initial_pipelines(self, space: SearchSpace, rng) -> list[Pipeline]:
        base_init = self.base._initial_pipelines(space, rng)
        warm = list(self.warm_pipelines_)
        # Replace the front of the base initialisation with the warm pipelines
        # so the total initial-evaluation count stays comparable.
        if len(warm) < len(base_init):
            return warm + base_init[len(warm):]
        return warm if warm else base_init

    def _update(self, trials, space, rng) -> None:
        self.base._update(trials, space, rng)

    def _propose(self, space, rng, trials):
        return self.base._propose(space, rng, trials)

    def _observe(self, record) -> None:
        self.base._observe(record)


def record_search_outcome(store: MetaKnowledgeStore, problem: AutoFPProblem,
                          result: SearchResult, *, model_name: str,
                          top_k: int = 3, random_state=0) -> None:
    """Store the top pipelines of a finished search for future warm starts."""
    evaluator = problem.evaluator
    X = np.vstack([evaluator.X_train, evaluator.X_valid])
    y = np.concatenate([evaluator.y_train, evaluator.y_valid])
    full = [t for t in result.trials if t.fidelity >= 1.0]
    ranked = sorted(full, key=lambda t: t.accuracy, reverse=True)
    best_pipelines = []
    seen = set()
    for trial in ranked:
        if trial.pipeline.spec() in seen:
            continue
        seen.add(trial.pipeline.spec())
        best_pipelines.append(trial.pipeline)
        if len(best_pipelines) >= top_k:
            break
    store.add_task(
        name=problem.name, model=model_name, X=X, y=y,
        best_pipelines=best_pipelines,
        best_accuracy=result.best_accuracy if best_pipelines else 0.0,
        random_state=random_state,
    )
