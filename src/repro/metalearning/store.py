"""Meta-knowledge store for warm-starting Auto-FP (Section 8, opportunity 1).

The paper's first research opportunity is to warm-start the evolution-based
search algorithms: instead of a random initial population, seed the search
with pipelines that worked well on *similar* datasets, where similarity is
measured on the auto-sklearn meta-features (the same mechanism auto-sklearn
uses for its own warm start).

The :class:`MetaKnowledgeStore` keeps one entry per previously solved task
(meta-feature vector + the best pipelines found) and answers
nearest-neighbour queries for new datasets.  Entries can be persisted to
and restored from JSON so knowledge accumulates across sessions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.pipeline import Pipeline
from repro.exceptions import ValidationError
from repro.metafeatures.extractor import METAFEATURE_NAMES, metafeature_vector


@dataclass
class MetaTask:
    """One solved Auto-FP task: where it came from and what worked."""

    name: str
    model: str
    metafeatures: np.ndarray
    best_pipelines: list[Pipeline]
    best_accuracy: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "model": self.model,
            "metafeatures": self.metafeatures.tolist(),
            "best_pipelines": [list(p.spec()) for p in self.best_pipelines],
            "best_accuracy": self.best_accuracy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetaTask":
        pipelines = [
            Pipeline.from_spec([(name, tuple(tuple(item) for item in items))
                                for name, items in spec])
            for spec in data["best_pipelines"]
        ]
        return cls(
            name=data["name"],
            model=data["model"],
            metafeatures=np.asarray(data["metafeatures"], dtype=np.float64),
            best_pipelines=pipelines,
            best_accuracy=float(data.get("best_accuracy", 0.0)),
        )


@dataclass
class MetaKnowledgeStore:
    """Nearest-neighbour store of solved tasks keyed by meta-features.

    Meta-feature vectors are z-normalised across the stored tasks before
    distances are computed, so features on wildly different scales (counts
    vs entropies) contribute comparably.
    """

    tasks: list[MetaTask] = field(default_factory=list)

    # ------------------------------------------------------------- mutation
    def add_task(self, name: str, model: str, X, y, best_pipelines,
                 best_accuracy: float = 0.0, *, metafeatures: np.ndarray | None = None,
                 random_state=0) -> MetaTask:
        """Record a solved task.  Meta-features are computed unless provided."""
        if metafeatures is None:
            metafeatures = metafeature_vector(X, y, include_landmarks=False,
                                              random_state=random_state)
        metafeatures = np.asarray(metafeatures, dtype=np.float64)
        if metafeatures.shape != (len(METAFEATURE_NAMES),):
            raise ValidationError(
                f"metafeatures must have shape ({len(METAFEATURE_NAMES)},), "
                f"got {metafeatures.shape}"
            )
        pipelines = [p if isinstance(p, Pipeline) else Pipeline(p) for p in best_pipelines]
        task = MetaTask(name=name, model=model, metafeatures=metafeatures,
                        best_pipelines=pipelines, best_accuracy=float(best_accuracy))
        self.tasks.append(task)
        return task

    def __len__(self) -> int:
        return len(self.tasks)

    # -------------------------------------------------------------- queries
    def _normalised_matrix(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        matrix = np.stack([task.metafeatures for task in self.tasks])
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std == 0] = 1.0
        return (matrix - mean) / std, mean, std

    def nearest_tasks(self, X, y, *, model: str | None = None, k: int = 3,
                      metafeatures: np.ndarray | None = None,
                      random_state=0) -> list[MetaTask]:
        """Return the ``k`` stored tasks most similar to dataset ``(X, y)``."""
        candidates = [t for t in self.tasks if model is None or t.model == model]
        if not candidates:
            return []
        if metafeatures is None:
            metafeatures = metafeature_vector(X, y, include_landmarks=False,
                                              random_state=random_state)
        matrix = np.stack([task.metafeatures for task in candidates])
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std == 0] = 1.0
        normalised = (matrix - mean) / std
        query = (np.asarray(metafeatures, dtype=np.float64) - mean) / std
        distances = np.linalg.norm(normalised - query, axis=1)
        order = np.argsort(distances)
        return [candidates[int(i)] for i in order[:k]]

    def suggested_pipelines(self, X, y, *, model: str | None = None, k: int = 3,
                            max_pipelines: int = 10, random_state=0) -> list[Pipeline]:
        """Warm-start suggestions: best pipelines of the ``k`` nearest tasks."""
        suggestions: list[Pipeline] = []
        seen: set = set()
        for task in self.nearest_tasks(X, y, model=model, k=k, random_state=random_state):
            for pipeline in task.best_pipelines:
                if pipeline.spec() in seen:
                    continue
                seen.add(pipeline.spec())
                suggestions.append(pipeline)
                if len(suggestions) >= max_pipelines:
                    return suggestions
        return suggestions

    # ---------------------------------------------------------- persistence
    def save(self, path) -> None:
        """Serialise the store to a JSON file (atomically).

        At service scale the store is shared training data: a crash
        mid-save must leave the previous complete document, not a torn
        one that poisons every later warm start.
        """
        from repro.io.serialization import atomic_write_text

        payload = {"metafeature_names": list(METAFEATURE_NAMES),
                   "tasks": [task.to_dict() for task in self.tasks]}
        atomic_write_text(path, json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path) -> "MetaKnowledgeStore":
        """Restore a store previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        store = cls()
        store.tasks = [MetaTask.from_dict(entry) for entry in payload["tasks"]]
        return store
