"""Meta-learning for Auto-FP: warm-starting search from previously solved tasks.

Implements the paper's first research opportunity (Section 8): seed the
initial population of a search algorithm with the best pipelines of similar,
previously solved datasets, where similarity is measured on the
auto-sklearn meta-features.
"""

from repro.metalearning.store import MetaKnowledgeStore, MetaTask
from repro.metalearning.warmstart import WarmStartedSearch, record_search_outcome

__all__ = [
    "MetaKnowledgeStore",
    "MetaTask",
    "WarmStartedSearch",
    "record_search_outcome",
]
