"""Deep & Cross Network (DCN) classifier.

DCN (Wang et al., ADKDD 2017) is the second deep recommendation model the
paper's Section 8 names.  It stacks explicit *cross layers* — each layer
multiplies the original input by a learned scalar projection of the current
representation — next to a conventional deep ReLU branch, and combines both
with a final linear layer:

* cross layer ``l``: ``x_{l+1} = x_0 * (x_l . w_l) + b_l + x_l``
  (element-wise product with the per-sample scalar ``x_l . w_l``),
* deep branch: a :class:`~repro.deep._dense.DenseStack`,
* output: ``softmax([x_L, deep(x_0)] @ W_out + b_out)``.

As with :class:`~repro.deep.deepfm.DeepFMClassifier` the model consumes the
already-encoded feature matrix, which is exactly what the Auto-FP pipelines
transform, so the model exercises the preprocessing-sensitivity code path
the Section 8 experiment studies.
"""

from __future__ import annotations

import numpy as np

from repro.deep._dense import AdamOptimizer, DenseStack, iterate_minibatches
from repro.models.base import Classifier, one_hot, softmax
from repro.utils.random import check_random_state
from repro.utils.validation import check_is_fitted


class DeepCrossNetworkClassifier(Classifier):
    """Deep & Cross Network trained with Adam on the cross-entropy loss.

    Parameters
    ----------
    n_cross_layers:
        Number of explicit cross layers.
    hidden_layer_sizes:
        Widths of the deep branch's hidden layers.
    learning_rate:
        Adam step size.
    max_iter:
        Number of training epochs.
    batch_size:
        Mini-batch size; clipped to the number of training samples.
    alpha:
        L2 penalty on the cross-layer weights and output weights.
    random_state:
        Seed controlling initialisation and batch shuffling.
    """

    name = "dcn"

    def __init__(self, n_cross_layers: int = 2, hidden_layer_sizes: tuple = (32, 16),
                 learning_rate: float = 2e-2, max_iter: int = 40,
                 batch_size: int = 128, alpha: float = 1e-4,
                 random_state: int | None = 0) -> None:
        super().__init__(
            n_cross_layers=int(n_cross_layers),
            hidden_layer_sizes=tuple(hidden_layer_sizes),
            learning_rate=learning_rate,
            max_iter=int(max_iter),
            batch_size=int(batch_size),
            alpha=alpha,
            random_state=random_state,
        )

    # ------------------------------------------------------------- training
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        n_classes = int(y.max()) + 1
        targets = one_hot(y, n_classes)

        scale = 1.0 / np.sqrt(n_features)
        self.cross_weights_ = [
            rng.normal(scale=scale, size=n_features) for _ in range(self.n_cross_layers)
        ]
        self.cross_biases_ = [np.zeros(n_features) for _ in range(self.n_cross_layers)]
        deep_output = self.hidden_layer_sizes[-1] if self.hidden_layer_sizes else n_features
        self.deep_ = DenseStack([n_features, *self.hidden_layer_sizes], rng) \
            if self.hidden_layer_sizes else None
        combined_dim = n_features + (deep_output if self.deep_ is not None else 0)
        limit = np.sqrt(6.0 / (combined_dim + n_classes))
        self.output_weights_ = rng.uniform(-limit, limit, size=(combined_dim, n_classes))
        self.output_bias_ = np.zeros(n_classes)

        parameters = [
            *self.cross_weights_,
            *self.cross_biases_,
            self.output_weights_,
            self.output_bias_,
        ]
        if self.deep_ is not None:
            parameters.extend(self.deep_.parameters())
        optimizer = AdamOptimizer(parameters, learning_rate=self.learning_rate)
        batch_size = int(min(self.batch_size, n_samples))

        for _ in range(self.max_iter):
            for batch in iterate_minibatches(n_samples, batch_size, rng):
                gradients = self._gradients(X[batch], targets[batch])
                optimizer.update(gradients)

    def _cross_forward(self, X: np.ndarray):
        """Return the list of cross-layer representations, ``x_0`` first."""
        representations = [X]
        for weights, biases in zip(self.cross_weights_, self.cross_biases_):
            current = representations[-1]
            scalar = current @ weights                      # (batch,)
            representations.append(X * scalar[:, None] + biases + current)
        return representations

    def _gradients(self, X: np.ndarray, targets: np.ndarray) -> list[np.ndarray]:
        batch = X.shape[0]
        cross_states = self._cross_forward(X)
        cross_out = cross_states[-1]

        if self.deep_ is not None:
            deep_activations = self.deep_.forward(X)
            deep_out = np.maximum(deep_activations[-1], 0.0)
            combined = np.hstack([cross_out, deep_out])
        else:
            deep_activations = None
            deep_out = None
            combined = cross_out

        logits = combined @ self.output_weights_ + self.output_bias_
        probabilities = softmax(logits)
        delta = (probabilities - targets) / batch

        grad_output_weights = combined.T @ delta + self.alpha * self.output_weights_
        grad_output_bias = delta.sum(axis=0)
        grad_combined = delta @ self.output_weights_.T

        n_features = X.shape[1]
        grad_cross_out = grad_combined[:, :n_features]

        # Back-propagate through the cross layers (deepest first).
        grad_cross_weights = [np.zeros_like(w) for w in self.cross_weights_]
        grad_cross_biases = [np.zeros_like(b) for b in self.cross_biases_]
        grad_state = grad_cross_out
        for layer in range(self.n_cross_layers - 1, -1, -1):
            current = cross_states[layer]
            weights = self.cross_weights_[layer]
            # x_{l+1} = x_0 * (x_l . w_l) + b_l + x_l
            per_sample_scalar = (grad_state * X).sum(axis=1)        # dL/d(x_l . w_l)
            grad_cross_weights[layer] = current.T @ per_sample_scalar \
                + self.alpha * weights
            grad_cross_biases[layer] = grad_state.sum(axis=0)
            grad_state = grad_state + per_sample_scalar[:, None] * weights[None, :]

        gradients: list[np.ndarray] = [
            *grad_cross_weights,
            *grad_cross_biases,
            grad_output_weights,
            grad_output_bias,
        ]

        if self.deep_ is not None:
            grad_deep_out = grad_combined[:, n_features:] * (deep_out > 0.0)
            grads_w, grads_b, _ = self.deep_.backward(deep_activations, grad_deep_out)
            for grad_w, grad_b in zip(grads_w, grads_b):
                gradients.append(grad_w)
                gradients.append(grad_b)
        return gradients

    # ------------------------------------------------------------ inference
    def _logits(self, X: np.ndarray) -> np.ndarray:
        cross_out = self._cross_forward(X)[-1]
        if self.deep_ is not None:
            deep_out = np.maximum(self.deep_.forward(X)[-1], 0.0)
            combined = np.hstack([cross_out, deep_out])
        else:
            combined = cross_out
        return combined @ self.output_weights_ + self.output_bias_

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "output_weights_")
        return softmax(self._logits(X))

    def decision_function(self, X) -> np.ndarray:
        """Raw per-class logits of the combined cross + deep representation."""
        check_is_fitted(self, "output_weights_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return self._logits(X)
