"""DeepFM classifier — factorization machine plus a deep ReLU branch.

DeepFM (Guo et al., IJCAI 2017) is one of the two "mainstream deep models
dealing with recommendation tasks" the paper's Section 8 uses to argue that
Auto-FP also applies to deep models.  The model sums two branches that share
the same input features:

* a *wide* branch — the second-order factorization-machine score, which
  captures pairwise feature interactions, and
* a *deep* branch — a small ReLU feed-forward network, which captures
  higher-order, non-multiplicative structure.

Per-class logits are ``fm_score_c(x) + deep_logit_c(x)`` and probabilities
are their softmax, so binary and multi-class targets are handled uniformly.
The original DeepFM consumes sparse categorical fields through a shared
embedding table; this reproduction consumes the already-encoded (one-hot /
numeric) matrix produced by :mod:`repro.deep.datasets`, which exercises the
same preprocessing-sensitivity code path the Section 8 experiment needs.
"""

from __future__ import annotations

import numpy as np

from repro.deep._dense import AdamOptimizer, DenseStack, iterate_minibatches
from repro.models.base import Classifier, one_hot, softmax
from repro.utils.random import check_random_state
from repro.utils.validation import check_is_fitted


class DeepFMClassifier(Classifier):
    """DeepFM: joint training of an FM branch and a dense ReLU branch.

    Parameters
    ----------
    n_factors:
        Rank of the FM pairwise-interaction factors.
    hidden_layer_sizes:
        Widths of the deep branch's hidden layers.
    learning_rate:
        Adam step size shared by both branches.
    max_iter:
        Number of training epochs.
    batch_size:
        Mini-batch size; clipped to the number of training samples.
    alpha:
        L2 penalty on the FM linear weights and factor matrices.
    init_scale:
        Standard deviation of the FM factor initialisation.
    random_state:
        Seed controlling initialisation and batch shuffling.
    """

    name = "deepfm"

    def __init__(self, n_factors: int = 8, hidden_layer_sizes: tuple = (32, 16),
                 learning_rate: float = 2e-2, max_iter: int = 40,
                 batch_size: int = 128, alpha: float = 1e-4,
                 init_scale: float = 0.05, random_state: int | None = 0) -> None:
        super().__init__(
            n_factors=int(n_factors),
            hidden_layer_sizes=tuple(hidden_layer_sizes),
            learning_rate=learning_rate,
            max_iter=int(max_iter),
            batch_size=int(batch_size),
            alpha=alpha,
            init_scale=init_scale,
            random_state=random_state,
        )

    # ------------------------------------------------------------- training
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        n_classes = int(y.max()) + 1
        targets = one_hot(y, n_classes)

        self.bias_ = np.zeros(n_classes)
        self.linear_ = np.zeros((n_features, n_classes))
        self.factors_ = rng.normal(
            scale=self.init_scale, size=(n_classes, n_features, self.n_factors)
        )
        self.deep_ = DenseStack(
            [n_features, *self.hidden_layer_sizes, n_classes], rng
        )

        parameters = [self.bias_, self.linear_, self.factors_, *self.deep_.parameters()]
        optimizer = AdamOptimizer(parameters, learning_rate=self.learning_rate)
        batch_size = int(min(self.batch_size, n_samples))

        for _ in range(self.max_iter):
            for batch in iterate_minibatches(n_samples, batch_size, rng):
                gradients = self._gradients(X[batch], targets[batch])
                optimizer.update(gradients)

    def _gradients(self, X: np.ndarray, targets: np.ndarray) -> list[np.ndarray]:
        batch = X.shape[0]
        fm_scores, interactions = self._fm_scores(X, return_interactions=True)
        activations = self.deep_.forward(X)
        logits = fm_scores + activations[-1]
        probabilities = softmax(logits)
        delta = (probabilities - targets) / batch

        # FM branch gradients.
        grad_bias = delta.sum(axis=0)
        grad_linear = X.T @ delta + self.alpha * self.linear_
        X_squared = X ** 2
        grad_factors = np.empty_like(self.factors_)
        for c in range(self.factors_.shape[0]):
            weighted = delta[:, c][:, None]
            grad_factors[c] = (
                X.T @ (weighted * interactions[c])
                - self.factors_[c] * (weighted * X_squared).sum(axis=0)[:, None]
            )
        grad_factors += self.alpha * self.factors_

        # Deep branch gradients (the deep output receives the same delta).
        grads_w, grads_b, _ = self.deep_.backward(activations, delta)
        deep_grads: list[np.ndarray] = []
        for grad_w, grad_b in zip(grads_w, grads_b):
            deep_grads.append(grad_w)
            deep_grads.append(grad_b)

        return [grad_bias, grad_linear, grad_factors, *deep_grads]

    # ------------------------------------------------------------ inference
    def _fm_scores(self, X: np.ndarray, *, return_interactions: bool = False):
        linear_part = self.bias_ + X @ self.linear_
        X_squared = X ** 2
        n_classes = self.factors_.shape[0]
        pairwise = np.empty((X.shape[0], n_classes))
        interactions = []
        for c in range(n_classes):
            product = X @ self.factors_[c]
            squared_product = X_squared @ self.factors_[c] ** 2
            pairwise[:, c] = 0.5 * (product ** 2 - squared_product).sum(axis=1)
            if return_interactions:
                interactions.append(product)
        scores = linear_part + pairwise
        if return_interactions:
            return scores, interactions
        return scores

    def _logits(self, X: np.ndarray) -> np.ndarray:
        return self._fm_scores(X) + self.deep_.forward(X)[-1]

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "factors_")
        return softmax(self._logits(X))

    def decision_function(self, X) -> np.ndarray:
        """Raw per-class logits (FM score + deep output)."""
        check_is_fitted(self, "factors_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return self._logits(X)
