"""Synthetic recommendation / click-through-rate datasets for Section 8.

The paper's Section 8 motivates "Benchmark Auto-FP for Deep Models for
Specific Tasks" with two recommendation datasets — Tmall and Instacart —
evaluated with DeepFM, reporting that 200 random FP pipelines *improve* the
validation AUC on Tmall (0.50 -> 0.5875) but *hurt* it on Instacart
(0.7085 -> 0.4756).  Neither dataset is available offline, so this module
generates two synthetic stand-ins that reproduce the mechanism behind that
asymmetry:

* ``tmall`` — the numeric behavioural features carry the label signal but
  arrive badly scaled and heavily skewed (raw counts, monetary amounts),
  so feature preprocessing recovers signal the deep model otherwise
  struggles to use;
* ``instacart`` — the signal lives in the precise one-hot / binary
  co-occurrence structure of the basket features, which row-normalising or
  re-thresholding preprocessors destroy, so feature preprocessing tends to
  hurt.

Both generators produce a dense, already-encoded matrix (one-hot categorical
fields next to numeric features) because the Auto-FP preprocessors — and the
reproduction's DeepFM / DCN models — operate on dense matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import UnknownComponentError, ValidationError
from repro.utils.random import check_random_state


@dataclass(frozen=True)
class CTRDatasetInfo:
    """Registry metadata for one recommendation-style dataset."""

    name: str
    n_samples: int
    n_categorical_fields: int
    n_numeric_features: int
    description: str
    fp_expected_to_help: bool


def make_ctr_dataset(n_samples: int = 2000, *, field_cardinalities=(8, 6, 4),
                     n_numeric: int = 4, interaction_strength: float = 2.0,
                     numeric_strength: float = 1.0, distort_numeric: bool = True,
                     label_noise: float = 0.05, positive_rate: float = 0.35,
                     random_state=None):
    """Generate a dense click-through-rate style binary classification dataset.

    Each sample has one active category per categorical field (one-hot
    encoded) plus ``n_numeric`` behavioural features.  The log-odds of a
    click combine pairwise field interactions (the structure factorization
    machines exploit) and a monotone contribution of the numeric features.

    Parameters
    ----------
    n_samples:
        Number of impressions to generate.
    field_cardinalities:
        Number of categories in each categorical field.
    n_numeric:
        Number of numeric behavioural features.
    interaction_strength:
        Scale of the pairwise (field x field) interaction effects.
    numeric_strength:
        Scale of the numeric features' contribution to the log-odds.
    distort_numeric:
        When True the numeric columns are exponentiated / rescaled onto
        wildly different ranges so that feature preprocessing matters.
    label_noise:
        Fraction of labels flipped uniformly at random.
    positive_rate:
        Approximate marginal click rate (controls the intercept).
    random_state:
        Seed for all randomness.

    Returns
    -------
    X : ndarray of shape (n_samples, sum(field_cardinalities) + n_numeric)
    y : ndarray of shape (n_samples,) with binary labels
    """
    if n_samples < 10:
        raise ValidationError("n_samples must be at least 10")
    if not field_cardinalities:
        raise ValidationError("at least one categorical field is required")
    rng = check_random_state(random_state)
    cardinalities = [int(c) for c in field_cardinalities]
    if any(c < 2 for c in cardinalities):
        raise ValidationError("every field cardinality must be at least 2")

    # Draw one active category per field and per sample.
    categories = [rng.integers(0, c, size=n_samples) for c in cardinalities]

    # Pairwise interaction effects between consecutive fields.
    logits = np.zeros(n_samples)
    for first, second in zip(range(len(cardinalities) - 1), range(1, len(cardinalities))):
        table = rng.normal(
            scale=interaction_strength,
            size=(cardinalities[first], cardinalities[second]),
        )
        logits += table[categories[first], categories[second]]

    # Numeric behavioural features (latent, well-behaved) and their effect.
    latent_numeric = rng.normal(size=(n_samples, max(0, int(n_numeric))))
    if latent_numeric.shape[1]:
        weights = rng.normal(scale=numeric_strength, size=latent_numeric.shape[1])
        logits += latent_numeric @ weights

    # Centre the logits so the intercept controls the positive rate.
    logits -= np.quantile(logits, 1.0 - positive_rate)
    probabilities = 1.0 / (1.0 + np.exp(-logits))
    y = (rng.uniform(size=n_samples) < probabilities).astype(int)
    if label_noise > 0:
        flip = rng.uniform(size=n_samples) < label_noise
        y[flip] = 1 - y[flip]

    # Assemble the observed matrix: one-hot fields + (possibly distorted) numerics.
    blocks = []
    for values, cardinality in zip(categories, cardinalities):
        block = np.zeros((n_samples, cardinality))
        block[np.arange(n_samples), values] = 1.0
        blocks.append(block)
    if latent_numeric.shape[1]:
        observed_numeric = latent_numeric.copy()
        if distort_numeric:
            for j in range(observed_numeric.shape[1]):
                column = observed_numeric[:, j]
                if j % 2 == 0:
                    column = np.exp(column * 2.0)            # heavy right skew
                scale = 10.0 ** rng.uniform(-2.0, 3.0)
                observed_numeric[:, j] = column * scale + rng.uniform(-5.0, 5.0)
        blocks.append(observed_numeric)
    X = np.hstack(blocks)
    return X, y


def make_basket_dataset(n_samples: int = 2000, *, n_products: int = 30,
                        n_patterns: int = 6, basket_size: int = 6,
                        label_noise: float = 0.05, random_state=None):
    """Generate a basket / co-purchase binary dataset with binary features.

    Each sample is a binary basket vector over ``n_products`` products.  A
    handful of latent purchase *patterns* (small product sets) drive the
    label: baskets containing a complete positive pattern are labelled 1.
    Because the informative signal is the exact binary co-occurrence
    structure, preprocessors that rescale rows (Normalizer) or re-threshold
    values (Binarizer after scaling) typically destroy it — the mechanism
    behind the paper's observation that FP hurt the Instacart AUC.

    Returns
    -------
    X : ndarray of shape (n_samples, n_products) with 0/1 entries
    y : ndarray of shape (n_samples,) with binary labels
    """
    if n_products < 4:
        raise ValidationError("n_products must be at least 4")
    if n_patterns < 1:
        raise ValidationError("n_patterns must be at least 1")
    rng = check_random_state(random_state)

    patterns = [
        rng.choice(n_products, size=min(3, n_products), replace=False)
        for _ in range(int(n_patterns))
    ]
    positive_patterns = patterns[: max(1, n_patterns // 2)]

    X = np.zeros((n_samples, n_products))
    y = np.zeros(n_samples, dtype=int)
    for i in range(n_samples):
        basket = set(rng.choice(n_products, size=min(basket_size, n_products),
                                replace=False).tolist())
        use_pattern = rng.uniform() < 0.6
        if use_pattern:
            pattern = patterns[int(rng.integers(0, len(patterns)))]
            basket.update(pattern.tolist())
        X[i, list(basket)] = 1.0
        y[i] = int(any(set(p.tolist()) <= basket for p in positive_patterns))
    if label_noise > 0:
        flip = rng.uniform(size=n_samples) < label_noise
        y[flip] = 1 - y[flip]
    return X, y


#: registry of the two Section 8 recommendation stand-ins
CTR_DATASET_REGISTRY: dict[str, CTRDatasetInfo] = {
    "tmall": CTRDatasetInfo(
        name="tmall",
        n_samples=2000,
        n_categorical_fields=3,
        n_numeric_features=4,
        description="CTR stand-in with badly scaled numeric behaviour features; "
                    "feature preprocessing is expected to improve the AUC.",
        fp_expected_to_help=True,
    ),
    "instacart": CTRDatasetInfo(
        name="instacart",
        n_samples=2000,
        n_categorical_fields=0,
        n_numeric_features=30,
        description="Basket co-purchase stand-in with purely binary features; "
                    "feature preprocessing is expected to hurt the AUC.",
        fp_expected_to_help=False,
    ),
}


def list_ctr_datasets() -> list[str]:
    """Names of the available recommendation-style datasets."""
    return sorted(CTR_DATASET_REGISTRY)


def get_ctr_dataset_info(name: str) -> CTRDatasetInfo:
    """Registry metadata for ``name``; raises ``UnknownComponentError`` if missing."""
    try:
        return CTR_DATASET_REGISTRY[name]
    except KeyError as exc:
        raise UnknownComponentError(
            f"Unknown recommendation dataset {name!r}. "
            f"Known names: {list_ctr_datasets()}"
        ) from exc


def load_ctr_dataset(name: str, *, scale: float = 1.0, random_state=0):
    """Load one of the registered recommendation-style datasets.

    Parameters
    ----------
    name:
        ``"tmall"`` or ``"instacart"``.
    scale:
        Multiplier on the default sample count (``0.5`` halves it).
    random_state:
        Seed for the generator.
    """
    info = get_ctr_dataset_info(name)
    if scale <= 0:
        raise ValidationError("scale must be positive")
    n_samples = max(50, int(round(info.n_samples * scale)))
    if name == "tmall":
        return make_ctr_dataset(
            n_samples,
            field_cardinalities=(8, 6, 4),
            n_numeric=info.n_numeric_features,
            distort_numeric=True,
            random_state=random_state,
        )
    return make_basket_dataset(
        n_samples,
        n_products=info.n_numeric_features,
        random_state=random_state,
    )
