"""Shared dense-network building blocks for the deep recommendation models.

The Section 8 experiment ("Benchmark Auto-FP for Deep Models for Specific
Tasks") uses DeepFM and DCN as downstream models.  Both combine a structured
component (factorization-machine interactions, cross layers) with a plain
feed-forward branch; this module factors out that feed-forward branch — a
ReLU stack with manual backpropagation — plus a small Adam optimiser so each
model only implements its structured part.
"""

from __future__ import annotations

import numpy as np


class DenseStack:
    """A ReLU feed-forward stack ``input -> hidden... -> output`` with backprop.

    Parameters
    ----------
    layer_sizes:
        Sizes of every layer including input and output, e.g.
        ``[n_features, 32, 16, n_classes]``.
    rng:
        Generator used for Glorot-uniform weight initialisation.
    """

    def __init__(self, layer_sizes: list[int], rng: np.random.Generator) -> None:
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # ------------------------------------------------------------------ API
    def forward(self, X: np.ndarray) -> list[np.ndarray]:
        """Return all layer activations (input first, final linear output last)."""
        activations = [X]
        last = len(self.weights) - 1
        for i, (weights, biases) in enumerate(zip(self.weights, self.biases)):
            pre_activation = activations[-1] @ weights + biases
            if i < last:
                activations.append(np.maximum(pre_activation, 0.0))
            else:
                activations.append(pre_activation)
        return activations

    def backward(self, activations: list[np.ndarray], output_grad: np.ndarray):
        """Backpropagate ``output_grad`` (dLoss/dOutput) through the stack.

        Returns ``(weight_grads, bias_grads, input_grad)`` so callers can keep
        propagating into the structured component that feeds the stack.
        """
        grads_w = [np.zeros_like(w) for w in self.weights]
        grads_b = [np.zeros_like(b) for b in self.biases]
        delta = output_grad
        for i in range(len(self.weights) - 1, -1, -1):
            grads_w[i] = activations[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            delta = delta @ self.weights[i].T
            if i > 0:
                delta = delta * (activations[i] > 0.0)
        return grads_w, grads_b, delta

    def parameters(self) -> list[np.ndarray]:
        """All trainable arrays, weights interleaved with biases."""
        params: list[np.ndarray] = []
        for weights, biases in zip(self.weights, self.biases):
            params.append(weights)
            params.append(biases)
        return params


class AdamOptimizer:
    """Minimal Adam optimiser updating a flat list of parameter arrays in place."""

    def __init__(self, parameters: list[np.ndarray], learning_rate: float = 1e-2,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._step = 0

    def update(self, gradients: list[np.ndarray]) -> None:
        """Apply one Adam step given gradients aligned with ``parameters``."""
        self._step += 1
        for i, (param, grad) in enumerate(zip(self.parameters, gradients)):
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[i] / (1 - self.beta1 ** self._step)
            v_hat = self._v[i] / (1 - self.beta2 ** self._step)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


def iterate_minibatches(n_samples: int, batch_size: int, rng: np.random.Generator):
    """Yield index arrays covering a random permutation of ``n_samples`` rows."""
    permutation = rng.permutation(n_samples)
    step = max(1, int(batch_size))
    for start in range(0, n_samples, step):
        yield permutation[start:start + step]
