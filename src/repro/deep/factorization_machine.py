"""Factorization-machine classifier.

Factorization machines (Rendle, 2010) model pairwise feature interactions
through low-rank factor vectors, which makes them the classical workhorse
for click-through-rate / recommendation data where the informative signal
lives in feature *combinations* (user x item, item x hour, ...).  DeepFM —
one of the two deep recommendation models the paper's Section 8 points at —
uses exactly this component as its "wide" half, so the classifier here is
both a standalone baseline and the building block reused by
:class:`~repro.deep.deepfm.DeepFMClassifier`.

The per-class score of a sample ``x`` is::

    score_c(x) = b_c + w_c . x + 1/2 * sum_k [ (x . V_c[:, k])^2 - (x^2 . V_c[:, k]^2) ]

and class probabilities are the softmax over the per-class scores, so the
model supports binary and multi-class targets uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.deep._dense import AdamOptimizer, iterate_minibatches
from repro.models.base import Classifier, one_hot, softmax
from repro.utils.random import check_random_state
from repro.utils.validation import check_is_fitted


class FactorizationMachineClassifier(Classifier):
    """Second-order factorization machine trained with Adam on cross-entropy.

    Parameters
    ----------
    n_factors:
        Rank of the pairwise-interaction factor matrices.
    learning_rate:
        Adam step size.
    max_iter:
        Number of training epochs.
    batch_size:
        Mini-batch size; clipped to the number of training samples.
    alpha:
        L2 penalty applied to the linear weights and factor matrices.
    init_scale:
        Standard deviation of the factor-matrix initialisation.
    random_state:
        Seed controlling initialisation and batch shuffling.
    """

    name = "fm"

    def __init__(self, n_factors: int = 8, learning_rate: float = 5e-2,
                 max_iter: int = 40, batch_size: int = 128, alpha: float = 1e-4,
                 init_scale: float = 0.05, random_state: int | None = 0) -> None:
        super().__init__(
            n_factors=int(n_factors),
            learning_rate=learning_rate,
            max_iter=int(max_iter),
            batch_size=int(batch_size),
            alpha=alpha,
            init_scale=init_scale,
            random_state=random_state,
        )

    # ------------------------------------------------------------- training
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        n_classes = int(y.max()) + 1
        targets = one_hot(y, n_classes)

        self.bias_ = np.zeros(n_classes)
        self.linear_ = np.zeros((n_features, n_classes))
        self.factors_ = rng.normal(
            scale=self.init_scale, size=(n_classes, n_features, self.n_factors)
        )

        parameters = [self.bias_, self.linear_, self.factors_]
        optimizer = AdamOptimizer(parameters, learning_rate=self.learning_rate)
        batch_size = int(min(self.batch_size, n_samples))

        for _ in range(self.max_iter):
            for batch in iterate_minibatches(n_samples, batch_size, rng):
                gradients = self._gradients(X[batch], targets[batch])
                optimizer.update(gradients)

    def _gradients(self, X: np.ndarray, targets: np.ndarray) -> list[np.ndarray]:
        """Cross-entropy gradients for the bias, linear and factor parameters."""
        batch = X.shape[0]
        scores, interactions = self._scores(X, return_interactions=True)
        probabilities = softmax(scores)
        delta = (probabilities - targets) / batch  # (batch, n_classes)

        grad_bias = delta.sum(axis=0)
        grad_linear = X.T @ delta + self.alpha * self.linear_

        X_squared = X ** 2
        grad_factors = np.empty_like(self.factors_)
        for c in range(self.factors_.shape[0]):
            weighted = delta[:, c][:, None]
            # d score_c / d V[i, k] = x_i * (x . V[:, k]) - V[i, k] * x_i^2
            grad_factors[c] = (
                X.T @ (weighted * interactions[c])
                - self.factors_[c] * (weighted * X_squared).sum(axis=0)[:, None]
            )
        grad_factors += self.alpha * self.factors_
        return [grad_bias, grad_linear, grad_factors]

    # ------------------------------------------------------------ inference
    def _scores(self, X: np.ndarray, *, return_interactions: bool = False):
        """Per-class FM scores; optionally also the per-class ``X @ V`` products."""
        linear_part = self.bias_ + X @ self.linear_
        X_squared = X ** 2
        n_classes = self.factors_.shape[0]
        pairwise = np.empty((X.shape[0], n_classes))
        interactions = []
        for c in range(n_classes):
            product = X @ self.factors_[c]              # (batch, n_factors)
            squared_product = X_squared @ self.factors_[c] ** 2
            pairwise[:, c] = 0.5 * (product ** 2 - squared_product).sum(axis=1)
            if return_interactions:
                interactions.append(product)
        scores = linear_part + pairwise
        if return_interactions:
            return scores, interactions
        return scores

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "factors_")
        return softmax(self._scores(X))

    def decision_function(self, X) -> np.ndarray:
        """Raw per-class FM scores (useful for AUC on binary problems)."""
        check_is_fitted(self, "factors_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return self._scores(X)
