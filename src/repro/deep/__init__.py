"""Deep recommendation models and datasets for the Section 8 extension.

The paper's Section 8 ("Benchmark Auto-FP for Deep Models for Specific
Tasks") argues that Auto-FP also applies to deep models such as DeepFM and
DCN on recommendation data.  This subpackage provides that extension:

* :class:`FactorizationMachineClassifier` — the classical FM baseline,
* :class:`DeepFMClassifier` — FM branch + deep ReLU branch,
* :class:`DeepCrossNetworkClassifier` — explicit cross layers + deep branch,
* synthetic recommendation datasets (``tmall`` / ``instacart`` stand-ins)
  whose response to feature preprocessing mirrors the paper's observation
  that FP improved the Tmall AUC but hurt the Instacart AUC.

Importing this subpackage also registers the three models with
:data:`repro.models.registry.CLASSIFIER_CLASSES` under the names ``"fm"``,
``"deepfm"`` and ``"dcn"`` so they can be used as downstream models of an
:class:`~repro.core.problem.AutoFPProblem` like the paper's LR / XGB / MLP.
"""

from repro.deep.datasets import (
    CTR_DATASET_REGISTRY,
    CTRDatasetInfo,
    get_ctr_dataset_info,
    list_ctr_datasets,
    load_ctr_dataset,
    make_basket_dataset,
    make_ctr_dataset,
)
from repro.deep.dcn import DeepCrossNetworkClassifier
from repro.deep.deepfm import DeepFMClassifier
from repro.deep.factorization_machine import FactorizationMachineClassifier
from repro.models.registry import CLASSIFIER_CLASSES, FAST_MODEL_PARAMS

#: deep downstream models added by this extension, keyed by registry name
DEEP_MODEL_CLASSES = {
    "fm": FactorizationMachineClassifier,
    "deepfm": DeepFMClassifier,
    "dcn": DeepCrossNetworkClassifier,
}

# Register the deep models with the central classifier registry (idempotent).
for _name, _cls in DEEP_MODEL_CLASSES.items():
    CLASSIFIER_CLASSES.setdefault(_name, _cls)
FAST_MODEL_PARAMS.setdefault("fm", {"max_iter": 15, "n_factors": 4})
FAST_MODEL_PARAMS.setdefault("deepfm", {"max_iter": 15, "n_factors": 4,
                                        "hidden_layer_sizes": (16,)})
FAST_MODEL_PARAMS.setdefault("dcn", {"max_iter": 15, "n_cross_layers": 2,
                                     "hidden_layer_sizes": (16,)})

__all__ = [
    "FactorizationMachineClassifier",
    "DeepFMClassifier",
    "DeepCrossNetworkClassifier",
    "DEEP_MODEL_CLASSES",
    "CTRDatasetInfo",
    "CTR_DATASET_REGISTRY",
    "make_ctr_dataset",
    "make_basket_dataset",
    "list_ctr_datasets",
    "get_ctr_dataset_info",
    "load_ctr_dataset",
]
