"""Scaling preprocessors: StandardScaler, MinMaxScaler and MaxAbsScaler.

The mathematical definitions follow Section 2.1 of the Auto-FP paper (which
in turn follows scikit-learn).  Degenerate features (zero variance, zero
range, zero maximum absolute value) are mapped with a unit denominator so
the output stays finite — the same convention scikit-learn uses.
"""

from __future__ import annotations

import numpy as np

from repro.preprocessing.base import Preprocessor


def _guard_zeros(scale: np.ndarray) -> np.ndarray:
    """Replace zero (or non-finite) scale entries with 1 to avoid division by zero."""
    scale = scale.astype(np.float64, copy=True)
    bad = ~np.isfinite(scale) | (scale == 0.0)
    scale[bad] = 1.0
    return scale


class StandardScaler(Preprocessor):
    """Standardise features by removing the mean and dividing by the std.

    For every value ``x`` of a feature with mean ``mu`` and standard
    deviation ``sigma`` the transformed value is ``(x - mu) / sigma``.

    Parameters
    ----------
    with_mean:
        If False only divide by the standard deviation (used by the extended
        low-cardinality search space of the paper, Table 6).
    with_std:
        If False only centre the data.
    """

    name = "standard_scaler"

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        super().__init__(with_mean=with_mean, with_std=with_std)

    def _fit(self, X: np.ndarray, y=None) -> None:
        self.mean_ = X.mean(axis=0)
        self.scale_ = _guard_zeros(X.std(axis=0))

    def _transform(self, X: np.ndarray) -> np.ndarray:
        out = X.astype(np.float64, copy=True)
        if self.with_mean:
            out -= self.mean_
        if self.with_std:
            out /= self.scale_
        return out


class MinMaxScaler(Preprocessor):
    """Scale each feature to the ``[range_min, range_max]`` interval.

    The transformed value of ``x`` is
    ``(x - min) / (max - min) * (range_max - range_min) + range_min``.
    Constant features map to ``range_min``.
    """

    name = "minmax_scaler"

    def __init__(self, range_min: float = 0.0, range_max: float = 1.0) -> None:
        if range_max <= range_min:
            from repro.exceptions import ValidationError

            raise ValidationError(
                f"range_max ({range_max}) must be greater than range_min ({range_min})"
            )
        super().__init__(range_min=range_min, range_max=range_max)

    def _fit(self, X: np.ndarray, y=None) -> None:
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        self.data_range_ = _guard_zeros(self.data_max_ - self.data_min_)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        unit = (X - self.data_min_) / self.data_range_
        span = self.range_max - self.range_min
        return unit * span + self.range_min


class MaxAbsScaler(Preprocessor):
    """Scale each feature by its maximum absolute value.

    Every value ``v`` of a feature with maximum absolute value ``m`` becomes
    ``v / m``, so the transformed feature lies in ``[-1, 1]``.  This scaler
    has no parameters (see Table 6 of the paper).
    """

    name = "maxabs_scaler"

    def __init__(self) -> None:
        super().__init__()

    def _fit(self, X: np.ndarray, y=None) -> None:
        self.max_abs_ = _guard_zeros(np.abs(X).max(axis=0))

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return X / self.max_abs_
