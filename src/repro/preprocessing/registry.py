"""Registry of the seven Auto-FP preprocessors and their parameterised variants.

The default registry exposes the seven preprocessors of Section 2.1 of the
paper with their default parameters.  For the parameter-extended search of
Section 6 the registry can expand a *parameter grid* into a flat list of
concrete preprocessor instances (the "One-step" view, where
``Binarizer(threshold=0)`` and ``Binarizer(threshold=1)`` are treated as
different preprocessors).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

from repro.exceptions import UnknownComponentError
from repro.preprocessing.base import Preprocessor
from repro.preprocessing.binarizer import Binarizer
from repro.preprocessing.normalizer import Normalizer
from repro.preprocessing.power import PowerTransformer
from repro.preprocessing.quantile import QuantileTransformer
from repro.preprocessing.scalers import MaxAbsScaler, MinMaxScaler, StandardScaler

#: the seven preprocessor classes of the paper, keyed by canonical name
PREPROCESSOR_CLASSES: dict[str, type[Preprocessor]] = {
    StandardScaler.name: StandardScaler,
    MaxAbsScaler.name: MaxAbsScaler,
    MinMaxScaler.name: MinMaxScaler,
    Normalizer.name: Normalizer,
    PowerTransformer.name: PowerTransformer,
    QuantileTransformer.name: QuantileTransformer,
    Binarizer.name: Binarizer,
}

#: canonical ordering used throughout the library (matches Figure 1)
DEFAULT_PREPROCESSOR_NAMES: tuple[str, ...] = tuple(PREPROCESSOR_CLASSES)


def get_preprocessor_class(name: str) -> type[Preprocessor]:
    """Return the preprocessor class registered under ``name``."""
    try:
        return PREPROCESSOR_CLASSES[name]
    except KeyError as exc:
        raise UnknownComponentError(
            f"Unknown preprocessor {name!r}. Known names: "
            f"{sorted(PREPROCESSOR_CLASSES)}"
        ) from exc


def make_preprocessor(name: str, **params) -> Preprocessor:
    """Instantiate a preprocessor by name with keyword parameters."""
    return get_preprocessor_class(name)(**params)


def default_preprocessors(names: Sequence[str] | None = None) -> list[Preprocessor]:
    """Return fresh instances of the default (unparameterised) preprocessors.

    Parameters
    ----------
    names:
        Optional subset / ordering of preprocessor names.  Defaults to all
        seven preprocessors in canonical order.
    """
    names = DEFAULT_PREPROCESSOR_NAMES if names is None else tuple(names)
    return [make_preprocessor(name) for name in names]


def expand_parameter_grid(
    grid: Mapping[str, Mapping[str, Iterable]],
) -> list[Preprocessor]:
    """Expand a per-preprocessor parameter grid into concrete instances.

    ``grid`` maps a preprocessor name to a mapping of parameter name to the
    iterable of candidate values, e.g.::

        {"binarizer": {"threshold": [0, 0.2, 0.4]},
         "maxabs_scaler": {}}

    Every combination of parameter values yields one instance.  A
    preprocessor with an empty parameter mapping yields one default
    instance.  This implements the "One-step" expansion of Section 6.2 where
    the low-cardinality space grows the preprocessor count from 7 to 31.
    """
    instances: list[Preprocessor] = []
    for name, params in grid.items():
        cls = get_preprocessor_class(name)
        if not params:
            instances.append(cls())
            continue
        keys = sorted(params)
        for combo in itertools.product(*(tuple(params[key]) for key in keys)):
            instances.append(cls(**dict(zip(keys, combo))))
    return instances
