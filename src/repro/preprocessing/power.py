"""PowerTransformer: Yeo-Johnson power transformation with automatic lambda.

The Yeo-Johnson transform (Equation 1 of the paper) maps each feature through
an exponential, monotonic transformation whose parameter ``lambda`` is chosen
per feature by maximising the profile log-likelihood of a normal model of the
transformed data — the same criterion scikit-learn uses.  The optimisation is
done with a bounded Brent search from scipy.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.preprocessing.base import Preprocessor


def yeo_johnson_transform(x: np.ndarray, lmbda: float) -> np.ndarray:
    """Apply the Yeo-Johnson transformation with parameter ``lmbda`` to ``x``.

    Implements Equation 1 of the paper:

    * ``x >= 0, lambda != 0``:  ``((x + 1) ** lambda - 1) / lambda``
    * ``x >= 0, lambda == 0``:  ``log(x + 1)``
    * ``x <  0, lambda != 2``:  ``-((1 - x) ** (2 - lambda) - 1) / (2 - lambda)``
    * ``x <  0, lambda == 2``:  ``-log(1 - x)``
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    eps = np.finfo(np.float64).eps

    if abs(lmbda) < eps:
        out[pos] = np.log1p(x[pos])
    else:
        out[pos] = (np.power(x[pos] + 1.0, lmbda) - 1.0) / lmbda

    if abs(lmbda - 2.0) < eps:
        out[~pos] = -np.log1p(-x[~pos])
    else:
        out[~pos] = -(np.power(1.0 - x[~pos], 2.0 - lmbda) - 1.0) / (2.0 - lmbda)
    return out


def yeo_johnson_log_likelihood(x: np.ndarray, lmbda: float) -> float:
    """Profile log-likelihood of the Yeo-Johnson transform for one feature."""
    n = x.shape[0]
    transformed = yeo_johnson_transform(x, lmbda)
    var = transformed.var()
    if not np.isfinite(var) or var <= 0:
        return -np.inf
    loglike = -0.5 * n * np.log(var)
    loglike += (lmbda - 1.0) * np.sum(np.sign(x) * np.log1p(np.abs(x)))
    return float(loglike)


def optimal_lambda(x: np.ndarray, bounds: tuple[float, float] = (-4.0, 4.0)) -> float:
    """Find the lambda maximising the Yeo-Johnson profile log-likelihood."""
    result = optimize.minimize_scalar(
        lambda lmbda: -yeo_johnson_log_likelihood(x, lmbda),
        bounds=bounds,
        method="bounded",
    )
    return float(result.x)


class PowerTransformer(Preprocessor):
    """Make feature distributions more normal-like via Yeo-Johnson.

    Each feature gets its own automatically-estimated ``lambda``.  When
    ``standardize`` is True (the scikit-learn default, and the parameter
    exposed in the paper's extended search space) the transformed features
    are additionally scaled to zero mean and unit variance.

    Parameters
    ----------
    standardize:
        Whether to apply zero-mean / unit-variance scaling after the power
        transformation.
    """

    name = "power_transformer"

    def __init__(self, standardize: bool = True) -> None:
        super().__init__(standardize=standardize)

    def _fit(self, X: np.ndarray, y=None) -> None:
        n_features = X.shape[1]
        self.lambdas_ = np.empty(n_features)
        means = np.empty(n_features)
        stds = np.empty(n_features)
        for j in range(n_features):
            col = X[:, j]
            if np.all(col == col[0]):
                # Constant feature: identity lambda and no scaling.
                self.lambdas_[j] = 1.0
                means[j] = yeo_johnson_transform(col, 1.0).mean()
                stds[j] = 1.0
                continue
            self.lambdas_[j] = optimal_lambda(col)
            transformed = yeo_johnson_transform(col, self.lambdas_[j])
            means[j] = transformed.mean()
            std = transformed.std()
            stds[j] = std if std > 0 else 1.0
        self.means_ = means
        self.stds_ = stds

    def _transform(self, X: np.ndarray) -> np.ndarray:
        out = np.empty_like(X, dtype=np.float64)
        for j in range(X.shape[1]):
            out[:, j] = yeo_johnson_transform(X[:, j], self.lambdas_[j])
        if self.standardize:
            out = (out - self.means_) / self.stds_
        return out
