"""QuantileTransformer: map features to a uniform or normal distribution."""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError
from repro.preprocessing.base import Preprocessor

_VALID_OUTPUTS = ("uniform", "normal")


class QuantileTransformer(Preprocessor):
    """Transform features independently to a target distribution.

    Each transformed value is the (interpolated) quantile position of the
    original value within the training distribution of the feature.  With
    ``output_distribution="uniform"`` (the paper's choice) values land in
    ``[0, 1]``; with ``"normal"`` the uniform quantiles are additionally
    passed through the standard normal inverse CDF.

    Parameters
    ----------
    n_quantiles:
        Number of quantile landmarks used to summarise the training
        distribution.  It is clipped to the number of training samples.
    output_distribution:
        Either ``"uniform"`` or ``"normal"``.
    """

    name = "quantile_transformer"

    #: clip range for the normal output to avoid infinities at the extremes
    _NORMAL_CLIP = 1e-7

    def __init__(self, n_quantiles: int = 1000,
                 output_distribution: str = "uniform") -> None:
        if output_distribution not in _VALID_OUTPUTS:
            raise ValidationError(
                f"output_distribution must be one of {_VALID_OUTPUTS}, "
                f"got {output_distribution!r}"
            )
        if n_quantiles < 2:
            raise ValidationError("n_quantiles must be at least 2")
        super().__init__(
            n_quantiles=int(n_quantiles),
            output_distribution=output_distribution,
        )

    def _fit(self, X: np.ndarray, y=None) -> None:
        n_samples = X.shape[0]
        self.n_quantiles_ = int(min(self.n_quantiles, n_samples))
        references = np.linspace(0.0, 1.0, self.n_quantiles_)
        self.references_ = references
        # One quantile-landmark column per feature, shape (n_quantiles_, n_features).
        self.quantiles_ = np.quantile(X, references, axis=0)
        # Ensure monotonicity for interpolation even with numerical noise.
        self.quantiles_ = np.maximum.accumulate(self.quantiles_, axis=0)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        out = np.empty_like(X, dtype=np.float64)
        for j in range(X.shape[1]):
            landmarks = self.quantiles_[:, j]
            out[:, j] = np.interp(X[:, j], landmarks, self.references_)
        if self.output_distribution == "normal":
            clipped = np.clip(out, self._NORMAL_CLIP, 1.0 - self._NORMAL_CLIP)
            out = stats.norm.ppf(clipped)
        return out
