"""Extension preprocessors beyond the paper's default seven.

Section 2.1 of the paper notes that "for situations when more preprocessors
are needed, one can easily extend our benchmark to derive additional
insights".  This module provides that extension point: four additional
preprocessors that are common in practice (robust scaling, equal-width /
quantile discretisation, signed log transforms and winsorising clippers)
together with helpers that build an *extended* search space containing the
default seven plus any subset of these.

The extended preprocessors never enter :data:`DEFAULT_PREPROCESSOR_NAMES`,
so every experiment that reproduces a paper table keeps the original
7-preprocessor space; the extensions are opt-in via
:func:`extended_preprocessors` or :func:`extended_search_space`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import UnknownComponentError, ValidationError
from repro.preprocessing.base import Preprocessor
from repro.preprocessing.registry import default_preprocessors


class RobustScaler(Preprocessor):
    """Scale features using statistics that are robust to outliers.

    Each feature is centred on its median and divided by its inter-quartile
    range (the difference between the ``q_max`` and ``q_min`` percentiles).
    Outliers therefore influence neither the centre nor the scale, unlike
    :class:`~repro.preprocessing.scalers.StandardScaler`.

    Parameters
    ----------
    with_centering:
        If False, do not subtract the median.
    with_scaling:
        If False, do not divide by the inter-quartile range.
    q_min, q_max:
        Percentiles (in ``[0, 100]``) that bound the quantile range.
    """

    name = "robust_scaler"

    def __init__(self, with_centering: bool = True, with_scaling: bool = True,
                 q_min: float = 25.0, q_max: float = 75.0) -> None:
        if not 0.0 <= q_min < q_max <= 100.0:
            raise ValidationError(
                f"quantile range must satisfy 0 <= q_min < q_max <= 100, "
                f"got ({q_min}, {q_max})"
            )
        super().__init__(with_centering=with_centering, with_scaling=with_scaling,
                         q_min=float(q_min), q_max=float(q_max))

    def _fit(self, X: np.ndarray, y=None) -> None:
        self.center_ = np.median(X, axis=0)
        low = np.percentile(X, self.q_min, axis=0)
        high = np.percentile(X, self.q_max, axis=0)
        scale = (high - low).astype(np.float64)
        # A denormal quantile range (< tiny) overflows the division in
        # _transform just like an exact zero would; both mean the feature
        # is constant at float precision, so leave it unscaled.
        tiny = np.finfo(np.float64).tiny
        scale[~np.isfinite(scale) | (scale < tiny)] = 1.0
        self.scale_ = scale

    def _transform(self, X: np.ndarray) -> np.ndarray:
        out = X.astype(np.float64, copy=True)
        if self.with_centering:
            out -= self.center_
        if self.with_scaling:
            with np.errstate(over="ignore"):
                out /= self.scale_
            # Extreme outliers over a near-zero quantile range can still
            # overflow; keep finite input mapping to finite output.
            out = np.nan_to_num(out, posinf=np.finfo(np.float64).max,
                                neginf=-np.finfo(np.float64).max)
        return out


class KBinsDiscretizer(Preprocessor):
    """Discretise each feature into ``n_bins`` ordinal bins.

    The output keeps the input shape: every value is replaced by the index
    of its bin (0-based), rescaled to ``[0, 1]`` so discretised features
    remain on a comparable scale to the other preprocessors' outputs.

    Parameters
    ----------
    n_bins:
        Number of bins per feature (at least 2).
    strategy:
        ``"uniform"`` for equal-width bins over the observed range or
        ``"quantile"`` for (approximately) equal-population bins.
    """

    name = "kbins_discretizer"

    _STRATEGIES = ("uniform", "quantile")

    def __init__(self, n_bins: int = 5, strategy: str = "uniform") -> None:
        if int(n_bins) < 2:
            raise ValidationError(f"n_bins must be at least 2, got {n_bins}")
        if strategy not in self._STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {self._STRATEGIES}, got {strategy!r}"
            )
        super().__init__(n_bins=int(n_bins), strategy=strategy)

    def _fit(self, X: np.ndarray, y=None) -> None:
        edges: list[np.ndarray] = []
        for column in X.T:
            if self.strategy == "uniform":
                low, high = float(column.min()), float(column.max())
                if high <= low:
                    high = low + 1.0
                cuts = np.linspace(low, high, self.n_bins + 1)[1:-1]
            else:
                percentiles = np.linspace(0.0, 100.0, self.n_bins + 1)[1:-1]
                cuts = np.percentile(column, percentiles)
            edges.append(np.asarray(cuts, dtype=np.float64))
        self.bin_edges_ = edges

    def _transform(self, X: np.ndarray) -> np.ndarray:
        out = np.empty_like(X, dtype=np.float64)
        denominator = max(self.n_bins - 1, 1)
        for j, cuts in enumerate(self.bin_edges_):
            bins = np.searchsorted(cuts, X[:, j], side="right")
            out[:, j] = bins / denominator
        return out


class LogTransformer(Preprocessor):
    """Signed logarithmic transform ``sign(x) * log(1 + |x|)``.

    A monotone transform that compresses heavy tails while remaining defined
    for negative values, offering a cheaper alternative to the Yeo-Johnson
    :class:`~repro.preprocessing.power.PowerTransformer`.

    Parameters
    ----------
    base:
        Logarithm base (default ``e``).
    """

    name = "log_transformer"

    def __init__(self, base: float = float(np.e)) -> None:
        if base <= 1.0:
            raise ValidationError(f"base must be greater than 1, got {base}")
        super().__init__(base=float(base))

    def _fit(self, X: np.ndarray, y=None) -> None:
        # Stateless: the transform depends only on the constructor parameter.
        return None

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return np.sign(X) * np.log1p(np.abs(X)) / np.log(self.base)


class ClippingTransformer(Preprocessor):
    """Winsorise each feature at the given lower/upper percentiles.

    Values below the ``q_min`` percentile (computed on the training data)
    are raised to it and values above the ``q_max`` percentile are lowered
    to it, which bounds the influence of extreme outliers on downstream
    scalers and models.

    Parameters
    ----------
    q_min, q_max:
        Percentiles (in ``[0, 100]``) at which to clip.
    """

    name = "clipping_transformer"

    def __init__(self, q_min: float = 1.0, q_max: float = 99.0) -> None:
        if not 0.0 <= q_min < q_max <= 100.0:
            raise ValidationError(
                f"clipping range must satisfy 0 <= q_min < q_max <= 100, "
                f"got ({q_min}, {q_max})"
            )
        super().__init__(q_min=float(q_min), q_max=float(q_max))

    def _fit(self, X: np.ndarray, y=None) -> None:
        self.lower_ = np.percentile(X, self.q_min, axis=0)
        self.upper_ = np.percentile(X, self.q_max, axis=0)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return np.clip(X, self.lower_, self.upper_)


#: extension preprocessors, keyed by canonical name (never part of the
#: default 7-preprocessor space)
EXTENDED_PREPROCESSOR_CLASSES: dict[str, type[Preprocessor]] = {
    RobustScaler.name: RobustScaler,
    KBinsDiscretizer.name: KBinsDiscretizer,
    LogTransformer.name: LogTransformer,
    ClippingTransformer.name: ClippingTransformer,
}

#: canonical ordering of the extension preprocessors
EXTENDED_PREPROCESSOR_NAMES: tuple[str, ...] = tuple(EXTENDED_PREPROCESSOR_CLASSES)


def get_extended_preprocessor_class(name: str) -> type[Preprocessor]:
    """Return the extension preprocessor class registered under ``name``."""
    try:
        return EXTENDED_PREPROCESSOR_CLASSES[name]
    except KeyError as exc:
        raise UnknownComponentError(
            f"Unknown extension preprocessor {name!r}. Known names: "
            f"{sorted(EXTENDED_PREPROCESSOR_CLASSES)}"
        ) from exc


def extended_preprocessors(names: Sequence[str] | None = None) -> list[Preprocessor]:
    """Fresh instances of the extension preprocessors (all four by default)."""
    names = EXTENDED_PREPROCESSOR_NAMES if names is None else tuple(names)
    return [get_extended_preprocessor_class(name)() for name in names]


def extended_search_space(*, include_defaults: bool = True,
                          extension_names: Sequence[str] | None = None,
                          max_length: int | None = None):
    """Build a search space that includes the extension preprocessors.

    Parameters
    ----------
    include_defaults:
        When True (default) the space contains the paper's seven default
        preprocessors followed by the requested extensions.
    extension_names:
        Subset of extension names to include; defaults to all four.
    max_length:
        Maximum pipeline length.  Defaults to the number of candidates, the
        same convention the paper uses for its default space.
    """
    # Imported lazily: repro.core.pipeline imports repro.preprocessing.base,
    # so a module-level import here would be circular.
    from repro.core.search_space import SearchSpace

    candidates: list[Preprocessor] = []
    if include_defaults:
        candidates.extend(default_preprocessors())
    candidates.extend(extended_preprocessors(extension_names))
    if max_length is None:
        max_length = len(candidates)
    return SearchSpace(candidates, max_length=max_length)
