"""Row-wise Normalizer preprocessor."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.preprocessing.base import Preprocessor

_VALID_NORMS = ("l1", "l2", "max")


class Normalizer(Preprocessor):
    """Normalise samples (rows) individually to unit norm.

    Given a row vector ``x`` each value ``x_i`` is scaled to
    ``x_i / ||x||`` where the norm is the L1, L2 or max norm.  Rows with zero
    norm are left unchanged.  Unlike the column-wise scalers this
    preprocessor is stateless: ``fit`` only records the number of features.

    Parameters
    ----------
    norm:
        One of ``"l1"``, ``"l2"`` (default, matching scikit-learn) or
        ``"max"``.
    """

    name = "normalizer"

    def __init__(self, norm: str = "l2") -> None:
        if norm not in _VALID_NORMS:
            raise ValidationError(f"norm must be one of {_VALID_NORMS}, got {norm!r}")
        super().__init__(norm=norm)

    def _fit(self, X: np.ndarray, y=None) -> None:
        # Stateless by design: row norms are computed at transform time.
        return None

    def _transform(self, X: np.ndarray) -> np.ndarray:
        if self.norm == "l1":
            norms = np.abs(X).sum(axis=1)
        elif self.norm == "l2":
            # Rescale each row by its max magnitude before squaring: tiny
            # rows would otherwise underflow to denormals in X*X and lose
            # the precision of the resulting norm (and huge rows overflow).
            # Divide the *scaled* row by the *scaled* norm — multiplying the
            # peak back in first would round the norm in the denormal range
            # and destroy the precision the rescaling just bought.
            peak = np.abs(X).max(axis=1, keepdims=True)
            safe_peak = np.where(peak == 0.0, 1.0, peak)
            scaled = X / safe_peak
            norms = np.sqrt((scaled * scaled).sum(axis=1)).copy()
            norms[norms == 0.0] = 1.0
            return scaled / norms[:, np.newaxis]
        else:  # max
            norms = np.abs(X).max(axis=1)
        norms = norms.copy()
        norms[norms == 0.0] = 1.0
        return X / norms[:, np.newaxis]
