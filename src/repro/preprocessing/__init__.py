"""Feature preprocessors (Section 2.1 of the Auto-FP paper).

The seven preprocessors are re-implemented from their mathematical
definitions on top of numpy so the library has no scikit-learn dependency.
"""

from repro.preprocessing.base import Preprocessor
from repro.preprocessing.binarizer import Binarizer
from repro.preprocessing.extended import (
    EXTENDED_PREPROCESSOR_CLASSES,
    EXTENDED_PREPROCESSOR_NAMES,
    ClippingTransformer,
    KBinsDiscretizer,
    LogTransformer,
    RobustScaler,
    extended_preprocessors,
    extended_search_space,
    get_extended_preprocessor_class,
)
from repro.preprocessing.normalizer import Normalizer
from repro.preprocessing.power import PowerTransformer, yeo_johnson_transform
from repro.preprocessing.quantile import QuantileTransformer
from repro.preprocessing.registry import (
    DEFAULT_PREPROCESSOR_NAMES,
    PREPROCESSOR_CLASSES,
    default_preprocessors,
    expand_parameter_grid,
    get_preprocessor_class,
    make_preprocessor,
)
from repro.preprocessing.scalers import MaxAbsScaler, MinMaxScaler, StandardScaler

__all__ = [
    "Preprocessor",
    "StandardScaler",
    "MinMaxScaler",
    "MaxAbsScaler",
    "Normalizer",
    "PowerTransformer",
    "QuantileTransformer",
    "Binarizer",
    "RobustScaler",
    "KBinsDiscretizer",
    "LogTransformer",
    "ClippingTransformer",
    "EXTENDED_PREPROCESSOR_CLASSES",
    "EXTENDED_PREPROCESSOR_NAMES",
    "extended_preprocessors",
    "extended_search_space",
    "get_extended_preprocessor_class",
    "yeo_johnson_transform",
    "PREPROCESSOR_CLASSES",
    "DEFAULT_PREPROCESSOR_NAMES",
    "default_preprocessors",
    "get_preprocessor_class",
    "make_preprocessor",
    "expand_parameter_grid",
]
