"""Threshold Binarizer preprocessor."""

from __future__ import annotations

import numpy as np

from repro.preprocessing.base import Preprocessor


class Binarizer(Preprocessor):
    """Binarise features according to a threshold.

    Values strictly greater than ``threshold`` map to 1, all others map to 0.
    With the default threshold of 0 this matches the paper's description that
    "negative values are mapped to 0, and non-negative values are mapped
    to 1" up to the boundary convention of scikit-learn (``x > threshold``);
    we follow the paper and use ``x >= threshold`` so that 0 maps to 1.

    Parameters
    ----------
    threshold:
        The binarisation threshold (default 0.0).
    """

    name = "binarizer"

    def __init__(self, threshold: float = 0.0) -> None:
        super().__init__(threshold=float(threshold))

    def _fit(self, X: np.ndarray, y=None) -> None:
        # Stateless: the threshold is a constructor parameter.
        return None

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return (X >= self.threshold).astype(np.float64)
