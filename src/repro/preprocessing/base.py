"""Base class and protocol for feature preprocessors.

A *feature preprocessor* (Definition 1 of the paper) is a mapping that takes
a dataset ``D`` of shape ``(n_samples, n_features)`` and produces a dataset
``D'`` of the same shape (or, for Binarizer-like preprocessors, the same
shape with discretised values).  All preprocessors follow the familiar
``fit`` / ``transform`` / ``fit_transform`` protocol so they compose into
pipelines.
"""

from __future__ import annotations

import copy
from typing import Any

import numpy as np

from repro.utils.validation import check_array


class Preprocessor:
    """Abstract base class for all feature preprocessors.

    Subclasses implement :meth:`_fit` and :meth:`_transform`; the public
    methods handle validation so subclasses only deal with clean float
    arrays.

    Attributes set by ``fit`` use a trailing underscore, mirroring the usual
    Python ML convention; :meth:`is_fitted` checks for their presence.
    """

    #: name used in pipeline string representations and registries
    name: str = "preprocessor"

    def __init__(self, **params: Any) -> None:
        for key, value in params.items():
            setattr(self, key, value)

    # ------------------------------------------------------------------ API
    def fit(self, X, y=None) -> "Preprocessor":
        """Learn the per-feature statistics needed to transform data."""
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self._fit(X, y)
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the learned transformation to ``X`` and return a new array."""
        X = check_array(X)
        if not self.is_fitted():
            raise_not_fitted(self)
        if X.shape[1] != self.n_features_in_:
            from repro.exceptions import ValidationError

            raise ValidationError(
                f"{type(self).__name__} was fitted with {self.n_features_in_} "
                f"features but transform received {X.shape[1]}"
            )
        return self._transform(X)

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Equivalent to ``fit(X, y).transform(X)``."""
        return self.fit(X, y).transform(X)

    def is_fitted(self) -> bool:
        """Return whether :meth:`fit` has been called."""
        return hasattr(self, "n_features_in_")

    # ----------------------------------------------------------- parameters
    def get_params(self) -> dict:
        """Return the constructor parameters of this preprocessor."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.endswith("_") and not key.startswith("_")
        }

    def set_params(self, **params: Any) -> "Preprocessor":
        """Set constructor parameters; returns ``self`` for chaining."""
        for key, value in params.items():
            if key not in self.get_params():
                from repro.exceptions import ValidationError

                raise ValidationError(
                    f"{type(self).__name__} has no parameter {key!r}"
                )
            setattr(self, key, value)
        return self

    def clone(self) -> "Preprocessor":
        """Return an unfitted copy of this preprocessor with the same parameters."""
        return type(self)(**copy.deepcopy(self.get_params()))

    # ------------------------------------------------------------ internals
    def _fit(self, X: np.ndarray, y=None) -> None:
        raise NotImplementedError

    def _transform(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -------------------------------------------------------------- dunders
    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Preprocessor):
            return NotImplemented
        return type(self) is type(other) and self.get_params() == other.get_params()

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.get_params().items()))))


def raise_not_fitted(obj) -> None:
    """Raise a :class:`repro.exceptions.NotFittedError` for ``obj``."""
    from repro.exceptions import NotFittedError

    raise NotFittedError(
        f"{type(obj).__name__} is not fitted yet. Call fit() before transform()."
    )
