"""Training-data reduction to mitigate the Train/Prep bottleneck (Section 8)."""

from repro.reduction.reduced_evaluator import ReducedEvaluator, reduced_problem
from repro.reduction.samplers import (
    KMeansSampler,
    RandomSampler,
    SAMPLER_CLASSES,
    Sampler,
    StratifiedSampler,
    make_sampler,
)

__all__ = [
    "Sampler",
    "RandomSampler",
    "StratifiedSampler",
    "KMeansSampler",
    "SAMPLER_CLASSES",
    "make_sampler",
    "ReducedEvaluator",
    "reduced_problem",
]
