"""Evaluate pipelines on a reduced training set, re-scoring finalists in full.

``ReducedEvaluator`` wraps a :class:`~repro.core.evaluation.PipelineEvaluator`
and exposes the same ``evaluate`` interface, but trains the downstream model
on a reduced training subset chosen by a
:class:`~repro.reduction.samplers.Sampler`.  The reduction is computed once
(not per pipeline), so search algorithms can be pointed at the reduced
evaluator unchanged; after the search, the best pipelines can be re-scored
on the full data with :meth:`rescore`.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import PipelineEvaluator
from repro.core.pipeline import Pipeline
from repro.core.result import SearchResult, TrialRecord
from repro.exceptions import ValidationError
from repro.models.base import Classifier
from repro.reduction.samplers import Sampler, StratifiedSampler


class ReducedEvaluator(PipelineEvaluator):
    """A PipelineEvaluator whose training split is a reduced subset.

    Parameters
    ----------
    full_evaluator:
        The evaluator holding the full training and validation splits.
    sampler:
        Row-selection strategy (default: stratified sampling).
    reduction:
        Fraction of the training rows to keep, in ``(0, 1]``.
    random_state:
        Seed for the sampler.
    """

    def __init__(self, full_evaluator: PipelineEvaluator, *,
                 sampler: Sampler | None = None, reduction: float = 0.5,
                 random_state=0) -> None:
        if not 0.0 < reduction <= 1.0:
            raise ValidationError("reduction must be in (0, 1]")
        sampler = sampler or StratifiedSampler()
        n_target = max(10, int(round(reduction * full_evaluator.X_train.shape[0])))
        indices = sampler.select(
            full_evaluator.X_train, full_evaluator.y_train, n_target,
            random_state=random_state,
        )
        super().__init__(
            full_evaluator.X_train[indices],
            full_evaluator.y_train[indices],
            full_evaluator.X_valid,
            full_evaluator.y_valid,
            full_evaluator.model,
            cache=full_evaluator.cache_enabled,
            random_state=random_state,
        )
        self.full_evaluator = full_evaluator
        self.sampler_name = sampler.name
        self.reduction = float(reduction)
        self.selected_indices_ = indices

    def rescore(self, pipelines, *, top_k: int | None = None) -> list[TrialRecord]:
        """Re-evaluate pipelines on the full training data.

        Parameters
        ----------
        pipelines:
            Iterable of pipelines (typically the best ones from a reduced
            search).
        top_k:
            Optional cap on the number of pipelines re-scored.
        """
        pipelines = list(pipelines)
        if top_k is not None:
            pipelines = pipelines[: int(top_k)]
        return [self.full_evaluator.evaluate(p) for p in pipelines]

    def rescore_result(self, result: SearchResult, *, top_k: int = 3) -> TrialRecord:
        """Re-score the top-``top_k`` distinct pipelines of ``result`` and return the best."""
        full = [t for t in result.trials if t.fidelity >= 1.0]
        ranked = sorted(full, key=lambda t: t.accuracy, reverse=True)
        unique: list[Pipeline] = []
        seen = set()
        for trial in ranked:
            if trial.pipeline.spec() in seen:
                continue
            seen.add(trial.pipeline.spec())
            unique.append(trial.pipeline)
            if len(unique) >= top_k:
                break
        records = self.rescore(unique)
        if not records:
            raise ValidationError("result contains no full-fidelity trials to rescore")
        return max(records, key=lambda r: r.accuracy)


def reduced_problem(problem, *, sampler: Sampler | None = None,
                    reduction: float = 0.5, random_state=0):
    """Return a copy of an :class:`AutoFPProblem` that evaluates on reduced data."""
    from repro.core.problem import AutoFPProblem

    evaluator = ReducedEvaluator(problem.evaluator, sampler=sampler,
                                 reduction=reduction, random_state=random_state)
    return AutoFPProblem(evaluator=evaluator, space=problem.space,
                         name=f"{problem.name}/reduced-{evaluator.sampler_name}")
