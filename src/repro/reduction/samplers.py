"""Training-data reduction strategies (Section 8, opportunity 2).

The bottleneck analysis shows that model training ("Train") and
preprocessing ("Prep") dominate the search time and both scale with the
training-set size, so reducing the data used *during the search* lets the
same budget cover many more pipelines.  This module provides three
reduction strategies of increasing sophistication:

* :class:`RandomSampler` — uniform row subsampling (the simple
  approximation the paper cites from Zogaj et al.),
* :class:`StratifiedSampler` — per-class proportional subsampling, which
  protects small classes,
* :class:`KMeansSampler` — cluster the rows (per class) with a small
  k-means and keep the points closest to each centroid, a cheap form of
  "intelligent" data selection that preserves the feature-space coverage.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import check_random_state
from repro.utils.validation import check_X_y


class Sampler:
    """Protocol: ``select(X, y, n_target)`` returns row indices to keep."""

    name = "sampler"

    def select(self, X, y, n_target: int, random_state=None) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _validate(X, y, n_target: int):
        X, y = check_X_y(X, y)
        if n_target < 1:
            raise ValidationError("n_target must be at least 1")
        return X, y, min(int(n_target), X.shape[0])


class RandomSampler(Sampler):
    """Uniform random row subsampling without replacement."""

    name = "random"

    def select(self, X, y, n_target: int, random_state=None) -> np.ndarray:
        X, y, n_target = self._validate(X, y, n_target)
        rng = check_random_state(random_state)
        return np.sort(rng.choice(X.shape[0], size=n_target, replace=False))


class StratifiedSampler(Sampler):
    """Per-class proportional subsampling; every class keeps at least one row."""

    name = "stratified"

    def select(self, X, y, n_target: int, random_state=None) -> np.ndarray:
        X, y, n_target = self._validate(X, y, n_target)
        rng = check_random_state(random_state)
        classes, counts = np.unique(y, return_counts=True)
        proportions = counts / counts.sum()
        allocation = np.maximum(1, np.floor(proportions * n_target).astype(int))
        # Trim the largest classes if rounding overshoots the target.
        while allocation.sum() > n_target:
            allocation[np.argmax(allocation)] -= 1
        selected: list[int] = []
        for label, quota in zip(classes, allocation):
            members = np.flatnonzero(y == label)
            quota = min(quota, members.shape[0])
            selected.extend(rng.choice(members, size=quota, replace=False).tolist())
        return np.sort(np.asarray(selected))


def _kmeans(X: np.ndarray, n_clusters: int, rng: np.random.Generator,
            n_iter: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Tiny Lloyd's k-means; returns (centroids, assignment)."""
    n_samples = X.shape[0]
    n_clusters = min(n_clusters, n_samples)
    centroids = X[rng.choice(n_samples, size=n_clusters, replace=False)]
    assignment = np.zeros(n_samples, dtype=int)
    for _ in range(n_iter):
        distances = ((X[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assignment = distances.argmin(axis=1)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for cluster in range(n_clusters):
            members = X[assignment == cluster]
            if members.shape[0]:
                centroids[cluster] = members.mean(axis=0)
    return centroids, assignment


class KMeansSampler(Sampler):
    """Keep the rows closest to per-class k-means centroids.

    Within each class the rows are clustered into as many clusters as that
    class's share of ``n_target``; the single row nearest each centroid is
    kept.  Features are standardised internally so clustering is not
    dominated by large-scale features.
    """

    name = "kmeans"

    def select(self, X, y, n_target: int, random_state=None) -> np.ndarray:
        X, y, n_target = self._validate(X, y, n_target)
        rng = check_random_state(random_state)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        standardized = (X - X.mean(axis=0)) / scale

        classes, counts = np.unique(y, return_counts=True)
        proportions = counts / counts.sum()
        allocation = np.maximum(1, np.floor(proportions * n_target).astype(int))
        while allocation.sum() > n_target:
            allocation[np.argmax(allocation)] -= 1

        selected: list[int] = []
        for label, quota in zip(classes, allocation):
            members = np.flatnonzero(y == label)
            quota = min(quota, members.shape[0])
            if quota == members.shape[0]:
                selected.extend(members.tolist())
                continue
            centroids, assignment = _kmeans(standardized[members], quota, rng)
            for cluster in range(centroids.shape[0]):
                cluster_members = members[assignment == cluster]
                if cluster_members.shape[0] == 0:
                    continue
                distances = np.linalg.norm(
                    standardized[cluster_members] - centroids[cluster], axis=1
                )
                selected.append(int(cluster_members[int(np.argmin(distances))]))
        return np.sort(np.unique(np.asarray(selected)))


SAMPLER_CLASSES = {
    RandomSampler.name: RandomSampler,
    StratifiedSampler.name: StratifiedSampler,
    KMeansSampler.name: KMeansSampler,
}


def make_sampler(name: str) -> Sampler:
    """Instantiate a sampler by name ("random", "stratified", "kmeans")."""
    from repro.exceptions import UnknownComponentError

    try:
        return SAMPLER_CLASSES[name]()
    except KeyError as exc:
        raise UnknownComponentError(
            f"Unknown sampler {name!r}; known: {sorted(SAMPLER_CLASSES)}"
        ) from exc
