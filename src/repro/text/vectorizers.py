"""Text vectorizers: bag-of-words, TF-IDF and feature hashing.

These are the *text-specific feature preprocessors* the paper's Section 8
names when discussing how Auto-FP could extend beyond tabular data.  Each
vectorizer maps a list of raw documents to a dense numeric matrix, which is
exactly the input the tabular Auto-FP preprocessors and search algorithms
consume — so a text task becomes ``vectorizer -> Auto-FP pipeline ->
classifier`` (see ``examples/text_pipeline.py``).

The matrices are dense because the reproduction's datasets are small; a
production system would use sparse storage, but density keeps the vectorizers
compatible with every preprocessor and model in the library.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.text.tokenize import DEFAULT_STOP_WORDS, analyze


def _check_documents(documents: Sequence[str]) -> list[str]:
    documents = list(documents)
    if not documents:
        raise ValidationError("at least one document is required")
    for document in documents:
        if not isinstance(document, str):
            raise ValidationError(
                f"documents must be strings, got {type(document).__name__}"
            )
    return documents


class CountVectorizer:
    """Bag-of-words vectorizer producing dense term-count matrices.

    Parameters
    ----------
    lowercase:
        Lower-case documents before tokenising.
    remove_stop_words:
        Drop a small built-in English stop-word list.
    ngram_range:
        Inclusive ``(min_n, max_n)`` range of n-gram sizes.
    max_features:
        Keep only the ``max_features`` most frequent terms (None keeps all).
    min_df:
        Drop terms that appear in fewer than ``min_df`` documents.
    binary:
        When True record term presence (0/1) instead of counts.
    """

    name = "count_vectorizer"

    def __init__(self, lowercase: bool = True, remove_stop_words: bool = True,
                 ngram_range: tuple[int, int] = (1, 1),
                 max_features: int | None = None, min_df: int = 1,
                 binary: bool = False) -> None:
        if min_df < 1:
            raise ValidationError(f"min_df must be at least 1, got {min_df}")
        if max_features is not None and max_features < 1:
            raise ValidationError("max_features must be at least 1 when given")
        self.lowercase = lowercase
        self.remove_stop_words = remove_stop_words
        self.ngram_range = (int(ngram_range[0]), int(ngram_range[1]))
        self.max_features = max_features
        self.min_df = int(min_df)
        self.binary = binary

    # ------------------------------------------------------------------ API
    def fit(self, documents: Sequence[str]) -> "CountVectorizer":
        """Learn the vocabulary from ``documents``."""
        documents = _check_documents(documents)
        document_frequency: dict[str, int] = {}
        total_frequency: dict[str, int] = {}
        for document in documents:
            terms = self._analyze(document)
            for term in set(terms):
                document_frequency[term] = document_frequency.get(term, 0) + 1
            for term in terms:
                total_frequency[term] = total_frequency.get(term, 0) + 1

        kept = [term for term, df in document_frequency.items() if df >= self.min_df]
        # Order by descending corpus frequency, ties broken alphabetically, so
        # max_features keeps the most informative columns deterministically.
        kept.sort(key=lambda term: (-total_frequency[term], term))
        if self.max_features is not None:
            kept = kept[: self.max_features]
        self.vocabulary_ = {term: index for index, term in enumerate(sorted(kept))}
        self.document_frequency_ = {
            term: document_frequency[term] for term in self.vocabulary_
        }
        self.n_documents_ = len(documents)
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Map documents onto the learned vocabulary (unknown terms are ignored)."""
        if not hasattr(self, "vocabulary_"):
            raise NotFittedError(
                "CountVectorizer is not fitted yet. Call fit() before transform()."
            )
        documents = _check_documents(documents)
        matrix = np.zeros((len(documents), len(self.vocabulary_)), dtype=np.float64)
        for row, document in enumerate(documents):
            for term in self._analyze(document):
                column = self.vocabulary_.get(term)
                if column is not None:
                    matrix[row, column] += 1.0
        if self.binary:
            matrix = (matrix > 0).astype(np.float64)
        return matrix

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Equivalent to ``fit(documents).transform(documents)``."""
        return self.fit(documents).transform(documents)

    def get_feature_names(self) -> list[str]:
        """Vocabulary terms in column order."""
        if not hasattr(self, "vocabulary_"):
            raise NotFittedError("CountVectorizer is not fitted yet.")
        return sorted(self.vocabulary_, key=self.vocabulary_.get)

    # ------------------------------------------------------------ internals
    def _analyze(self, document: str) -> list[str]:
        stop_words = DEFAULT_STOP_WORDS if self.remove_stop_words else None
        return analyze(document, lowercase=self.lowercase, stop_words=stop_words,
                       ngram_range=self.ngram_range)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(ngram_range={self.ngram_range}, "
                f"max_features={self.max_features}, min_df={self.min_df})")


class TfidfVectorizer(CountVectorizer):
    """TF-IDF vectorizer: term counts reweighted by inverse document frequency.

    The inverse document frequency uses the smoothed formulation
    ``idf(t) = ln((1 + n) / (1 + df(t))) + 1`` and rows are L2-normalised by
    default, matching the conventions of scikit-learn's TfidfVectorizer.

    Parameters
    ----------
    norm:
        ``"l2"`` (default), ``"l1"`` or ``None`` row normalisation.
    """

    name = "tfidf_vectorizer"

    def __init__(self, lowercase: bool = True, remove_stop_words: bool = True,
                 ngram_range: tuple[int, int] = (1, 1),
                 max_features: int | None = None, min_df: int = 1,
                 norm: str | None = "l2") -> None:
        if norm not in ("l1", "l2", None):
            raise ValidationError(f"norm must be 'l1', 'l2' or None, got {norm!r}")
        super().__init__(lowercase=lowercase, remove_stop_words=remove_stop_words,
                         ngram_range=ngram_range, max_features=max_features,
                         min_df=min_df, binary=False)
        self.norm = norm

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        super().fit(documents)
        n_documents = self.n_documents_
        idf = np.empty(len(self.vocabulary_), dtype=np.float64)
        for term, column in self.vocabulary_.items():
            document_frequency = self.document_frequency_[term]
            idf[column] = np.log((1.0 + n_documents) / (1.0 + document_frequency)) + 1.0
        self.idf_ = idf
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        counts = super().transform(documents)
        weighted = counts * self.idf_
        if self.norm == "l2":
            norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        elif self.norm == "l1":
            norms = np.abs(weighted).sum(axis=1, keepdims=True)
        else:
            return weighted
        norms[norms == 0.0] = 1.0
        return weighted / norms


class HashingVectorizer:
    """Stateless vectorizer that hashes terms into a fixed number of columns.

    Feature hashing avoids building a vocabulary, so ``transform`` works
    without ``fit`` — useful for streaming settings or very large
    vocabularies.  Collisions are mitigated with a signed hash.

    Parameters
    ----------
    n_features:
        Number of output columns.
    lowercase, remove_stop_words, ngram_range:
        Same meaning as for :class:`CountVectorizer`.
    """

    name = "hashing_vectorizer"

    def __init__(self, n_features: int = 128, lowercase: bool = True,
                 remove_stop_words: bool = True,
                 ngram_range: tuple[int, int] = (1, 1)) -> None:
        if n_features < 1:
            raise ValidationError(f"n_features must be at least 1, got {n_features}")
        self.n_features = int(n_features)
        self.lowercase = lowercase
        self.remove_stop_words = remove_stop_words
        self.ngram_range = (int(ngram_range[0]), int(ngram_range[1]))

    def fit(self, documents: Iterable[str]) -> "HashingVectorizer":
        """No-op: the hashing transform is stateless."""
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Hash every term of every document into the fixed column space."""
        documents = _check_documents(documents)
        matrix = np.zeros((len(documents), self.n_features), dtype=np.float64)
        stop_words = DEFAULT_STOP_WORDS if self.remove_stop_words else None
        for row, document in enumerate(documents):
            terms = analyze(document, lowercase=self.lowercase,
                            stop_words=stop_words, ngram_range=self.ngram_range)
            for term in terms:
                column, sign = self._hash(term)
                matrix[row, column] += sign
        return matrix

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Equivalent to ``transform(documents)`` (hashing needs no fit)."""
        return self.transform(documents)

    def _hash(self, term: str) -> tuple[int, float]:
        digest = hashlib.md5(term.encode("utf-8")).digest()
        value = int.from_bytes(digest[:8], "little")
        column = value % self.n_features
        sign = 1.0 if digest[8] % 2 == 0 else -1.0
        return column, sign

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_features={self.n_features})"
