"""Text-data extension (Section 8, "Benchmark Auto-FP on Other Types of Data").

Text data needs its own feature preprocessors before the tabular Auto-FP
machinery applies.  This subpackage provides the three classic vectorizers
(bag-of-words counts, TF-IDF, feature hashing), a tokenisation layer and
synthetic labelled corpora, so a text task becomes::

    documents --TfidfVectorizer--> numeric matrix --Auto-FP pipeline--> classifier

See ``examples/text_pipeline.py`` for the end-to-end flow.
"""

from repro.text.datasets import (
    TEXT_DATASET_REGISTRY,
    TextDatasetInfo,
    list_text_datasets,
    load_text_dataset,
    make_text_classification,
)
from repro.text.tokenize import DEFAULT_STOP_WORDS, analyze, ngrams, tokenize
from repro.text.vectorizers import CountVectorizer, HashingVectorizer, TfidfVectorizer

__all__ = [
    "tokenize",
    "ngrams",
    "analyze",
    "DEFAULT_STOP_WORDS",
    "CountVectorizer",
    "TfidfVectorizer",
    "HashingVectorizer",
    "TextDatasetInfo",
    "TEXT_DATASET_REGISTRY",
    "make_text_classification",
    "list_text_datasets",
    "load_text_dataset",
]
