"""Tokenisation helpers for the text-data extension.

The paper's Section 8 ("Benchmark Auto-FP on Other Types of Data") points
out that text data needs its own feature preprocessors — TF-IDF, word
embeddings and the like — before the tabular Auto-FP machinery applies.
This module provides the tokenisation layer those vectorizers build on:
lower-casing, a word-level regular-expression tokenizer, optional stop-word
removal and n-gram expansion.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.exceptions import ValidationError

#: a small English stop-word list; enough to demonstrate the behaviour
#: without pulling in a language resource
DEFAULT_STOP_WORDS: frozenset[str] = frozenset(
    """a an and are as at be but by for from has have if in is it its of on or
    that the this to was were will with""".split()
)

_TOKEN_PATTERN = re.compile(r"[a-zA-Z0-9]+(?:'[a-zA-Z]+)?")


def tokenize(document: str, *, lowercase: bool = True,
             stop_words: Iterable[str] | None = None) -> list[str]:
    """Split one document into word tokens.

    Parameters
    ----------
    document:
        The raw text.
    lowercase:
        Lower-case the text before tokenising (default True).
    stop_words:
        Optional collection of tokens to drop after tokenisation.
    """
    if not isinstance(document, str):
        raise ValidationError(
            f"documents must be strings, got {type(document).__name__}"
        )
    text = document.lower() if lowercase else document
    tokens = _TOKEN_PATTERN.findall(text)
    if stop_words:
        stop_set = set(stop_words)
        tokens = [token for token in tokens if token not in stop_set]
    return tokens


def ngrams(tokens: Sequence[str], ngram_range: tuple[int, int]) -> list[str]:
    """Expand a token sequence into space-joined n-grams.

    ``ngram_range=(1, 2)`` returns all unigrams followed by all bigrams; the
    range is inclusive on both ends, mirroring scikit-learn's convention.
    """
    low, high = int(ngram_range[0]), int(ngram_range[1])
    if low < 1 or high < low:
        raise ValidationError(
            f"ngram_range must satisfy 1 <= low <= high, got {ngram_range}"
        )
    result: list[str] = []
    for size in range(low, high + 1):
        for start in range(len(tokens) - size + 1):
            result.append(" ".join(tokens[start:start + size]))
    return result


def analyze(document: str, *, lowercase: bool = True,
            stop_words: Iterable[str] | None = None,
            ngram_range: tuple[int, int] = (1, 1)) -> list[str]:
    """Tokenise one document and expand the tokens into n-grams."""
    return ngrams(tokenize(document, lowercase=lowercase, stop_words=stop_words),
                  ngram_range)
