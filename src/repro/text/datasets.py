"""Synthetic text-classification corpora for the Section 8 text extension.

No real text corpora are available offline, so this module generates small
topic-model style corpora: each class has its own vocabulary of *signal*
words, all classes share a pool of background words, and a document is a
bag of words drawn mostly from the background with a class-dependent sprinkle
of signal words.  That structure gives vectorized features the properties
the extension needs to demonstrate — informative columns of very different
frequencies, many irrelevant columns, and accuracy that responds to how the
vectorized counts are scaled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import UnknownComponentError, ValidationError
from repro.utils.random import check_random_state

_SYLLABLES = ("ba", "co", "di", "fu", "ga", "hi", "jo", "ka", "lu", "me",
              "no", "pa", "qui", "ra", "su", "ta", "vo", "wi", "xe", "zo")


def _make_word(rng: np.random.Generator, n_syllables: int = 3) -> str:
    parts = rng.choice(len(_SYLLABLES), size=n_syllables)
    return "".join(_SYLLABLES[int(index)] for index in parts)


@dataclass(frozen=True)
class TextDatasetInfo:
    """Registry metadata for one synthetic text corpus."""

    name: str
    n_documents: int
    n_classes: int
    description: str


def make_text_classification(n_documents: int = 300, *, n_classes: int = 2,
                             vocabulary_size: int = 150,
                             signal_words_per_class: int = 10,
                             document_length: tuple[int, int] = (20, 60),
                             signal_strength: float = 0.25,
                             label_noise: float = 0.02,
                             random_state=None) -> tuple[list[str], np.ndarray]:
    """Generate a synthetic labelled corpus.

    Parameters
    ----------
    n_documents:
        Number of documents to generate.
    n_classes:
        Number of target classes.
    vocabulary_size:
        Size of the shared background vocabulary.
    signal_words_per_class:
        Number of class-specific signal words.
    document_length:
        Inclusive ``(min, max)`` document length in tokens.
    signal_strength:
        Probability that a token is drawn from the class's signal words
        rather than the shared background vocabulary.
    label_noise:
        Fraction of labels flipped to a random other class.
    random_state:
        Seed for all randomness.

    Returns
    -------
    documents : list of str
    labels : ndarray of shape (n_documents,)
    """
    if n_documents < n_classes:
        raise ValidationError("n_documents must be at least n_classes")
    if n_classes < 2:
        raise ValidationError("n_classes must be at least 2")
    if not 0.0 < signal_strength <= 1.0:
        raise ValidationError("signal_strength must be in (0, 1]")
    low, high = int(document_length[0]), int(document_length[1])
    if low < 1 or high < low:
        raise ValidationError("document_length must satisfy 1 <= min <= max")
    rng = check_random_state(random_state)

    background = [_make_word(rng) for _ in range(int(vocabulary_size))]
    signal = [
        [_make_word(rng, n_syllables=4) for _ in range(int(signal_words_per_class))]
        for _ in range(n_classes)
    ]
    # Zipf-like background frequencies so term counts span a wide range.
    ranks = np.arange(1, len(background) + 1, dtype=np.float64)
    background_probabilities = (1.0 / ranks) / (1.0 / ranks).sum()

    documents: list[str] = []
    labels = np.empty(n_documents, dtype=int)
    for i in range(n_documents):
        label = i % n_classes
        labels[i] = label
        length = int(rng.integers(low, high + 1))
        tokens: list[str] = []
        for _ in range(length):
            if rng.uniform() < signal_strength:
                word_list = signal[label]
                tokens.append(word_list[int(rng.integers(0, len(word_list)))])
            else:
                index = int(rng.choice(len(background), p=background_probabilities))
                tokens.append(background[index])
        documents.append(" ".join(tokens))

    if label_noise > 0:
        flip = rng.uniform(size=n_documents) < label_noise
        for i in np.flatnonzero(flip):
            other = int(rng.integers(0, n_classes - 1))
            labels[i] = other if other < labels[i] else other + 1

    order = rng.permutation(n_documents)
    documents = [documents[int(i)] for i in order]
    labels = labels[order]
    return documents, labels


#: registry of the synthetic corpora used by tests and the text example
TEXT_DATASET_REGISTRY: dict[str, TextDatasetInfo] = {
    "reviews": TextDatasetInfo(
        name="reviews",
        n_documents=300,
        n_classes=2,
        description="Binary sentiment-style corpus with short documents.",
    ),
    "newsgroups": TextDatasetInfo(
        name="newsgroups",
        n_documents=400,
        n_classes=4,
        description="Multi-class topic-style corpus with longer documents.",
    ),
}


def list_text_datasets() -> list[str]:
    """Names of the available synthetic corpora."""
    return sorted(TEXT_DATASET_REGISTRY)


def load_text_dataset(name: str, *, scale: float = 1.0,
                      random_state=0) -> tuple[list[str], np.ndarray]:
    """Load one of the registered corpora, optionally scaled."""
    try:
        info = TEXT_DATASET_REGISTRY[name]
    except KeyError as exc:
        raise UnknownComponentError(
            f"Unknown text dataset {name!r}. Known names: {list_text_datasets()}"
        ) from exc
    if scale <= 0:
        raise ValidationError("scale must be positive")
    n_documents = max(4 * info.n_classes, int(round(info.n_documents * scale)))
    if name == "reviews":
        return make_text_classification(
            n_documents, n_classes=2, vocabulary_size=120,
            document_length=(10, 40), signal_strength=0.2,
            random_state=random_state,
        )
    return make_text_classification(
        n_documents, n_classes=info.n_classes, vocabulary_size=200,
        document_length=(30, 80), signal_strength=0.15,
        random_state=random_state,
    )
