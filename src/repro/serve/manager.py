"""The multi-tenant session manager behind ``repro serve``.

:class:`SessionManager` is the piece that turns the search substrate into
a *service*: it owns the shared execution resources (one engine, one
persistent eval-cache root, one state directory) and runs many concurrent
:class:`~repro.search.session.SearchSession` runs over them, each on its
own worker thread.  Everything the HTTP layer (:mod:`repro.serve.http`)
exposes is a thin JSON view over this class, so the manager is fully
usable — and testable — without a socket.

Responsibilities:

* **admission** — per-tenant :class:`~repro.core.budget.TrialBudget`
  quotas checked through the budget protocol's ``admits()`` at submit
  time (a tenant over quota is refused with
  :class:`AdmissionError`), plus a ``max_sessions`` cap on concurrently
  *running* sessions: excess submissions queue and start as slots free
  up under weighted fair scheduling (:class:`_FairScheduler`) — each
  tenant's queue drains in submission order, but *which* tenant gets the
  next free slot is the one with the smallest virtual finish time, so a
  tenant flooding the queue cannot starve the others.  Cancelling a
  session refunds its unused trial remainder to the tenant's quota,
  mirroring the engine's budget-refund semantics.
* **lifecycle** — submit / pause / resume / cancel / checkpoint, all at
  trial boundaries via the session's own machinery.  Trial, batch and
  checkpoint callbacks append to a per-session event log that
  :meth:`events` serves with long-poll semantics.
* **durability** — every session periodically checkpoints into its own
  directory under ``state_dir`` and records a small ``session.json``
  manifest.  A new manager pointed at the same ``state_dir``
  (:meth:`recover`, called on construction) resumes every in-flight
  session from its checkpoint — bit-for-bit identical to a run that was
  never interrupted — while sessions a user explicitly paused stay
  paused.
* **observability** — :meth:`metrics` merges the process registry with
  each live session's per-session heartbeat (the PR 6 telemetry feeds);
  :meth:`healthz` is the liveness summary a load balancer polls.

Sessions share one engine: each problem is built *without* a private
engine (the per-session context's ``backend``/``n_jobs`` are owned by the
server) and the manager attaches its shared engine to every evaluator.
The substrate fixes that make this safe — per-session heartbeat files,
session-labelled registry series, fingerprint-keyed evaluation pools —
live in :mod:`repro.search.session`, :mod:`repro.telemetry.metrics` and
:mod:`repro.engine.backends`.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import uuid
from pathlib import Path

from repro.core.budget import TrialBudget
from repro.core.context import ExecutionContext
from repro.exceptions import ReproError, ValidationError
from repro.io.serialization import atomic_write_text
from repro.telemetry import heartbeat_file_name
from repro.telemetry.metrics import get_registry
from repro.utils.log import get_logger

log = get_logger("serve.manager")


class AdmissionError(ReproError):
    """Raised when a submission exceeds its tenant's trial quota."""


class UnknownSessionError(ReproError, KeyError):
    """Raised when a session id is not known to this manager."""

    def __str__(self) -> str:  # KeyError quotes its message otherwise
        return self.args[0] if self.args else ""


#: session states.  queued -> running -> {done, paused, cancelled, failed};
#: "interrupted" is what a server shutdown leaves behind in the manifest —
#: recovery treats it (and "running"/"queued") as in-flight and resumes it,
#: while an explicit user "paused" stays paused until asked.
SESSION_STATES: tuple[str, ...] = (
    "queued", "running", "paused", "interrupted", "done", "failed",
    "cancelled",
)

#: states with no further work to do
TERMINAL_STATES: frozenset = frozenset({"done", "failed", "cancelled"})

#: the ExecutionContext fields a *submission* may override.  Execution
#: resources (backend, n_jobs, cache_dir, telemetry_dir) belong to the
#: server: one shared engine and one shared cache root is the whole point.
SUBMIT_CONTEXT_FIELDS: tuple[str, ...] = (
    "prefix_cache_bytes", "async_mode", "telemetry_mode", "default_budget",
    "seed",
)

#: manifest file name inside each session's state directory
MANIFEST_FILE_NAME = "session.json"

#: checkpoint file name inside each session's state directory
CHECKPOINT_FILE_NAME = "checkpoint.json"


def normalize_spec(payload, *, default_max_trials: int = 20) -> dict:
    """Validate and default a submission payload into a canonical spec.

    Required: ``dataset`` (registry name).  Optional: ``model`` (default
    ``"lr"``), ``algorithm`` (default ``"rs"``), ``max_trials``,
    ``seed``, ``scale``, ``tenant`` and a partial ``context`` dict of
    :data:`SUBMIT_CONTEXT_FIELDS`.  Unknown keys are refused — a typo'd
    field must not silently run with defaults.
    """
    if not isinstance(payload, dict):
        raise ValidationError(
            f"a submission must be a JSON object, got {type(payload).__name__}"
        )
    known = {"dataset", "model", "algorithm", "max_trials", "seed", "scale",
             "tenant", "context"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValidationError(
            f"unknown submission field(s) {unknown}; known fields: "
            f"{sorted(known)}"
        )
    dataset = payload.get("dataset")
    if not dataset or not isinstance(dataset, str):
        raise ValidationError("a submission needs a registry dataset name "
                              "under 'dataset'")
    max_trials = int(payload.get("max_trials", default_max_trials))
    if max_trials < 1:
        raise ValidationError(f"max_trials must be at least 1, got {max_trials}")
    context = payload.get("context") or {}
    if not isinstance(context, dict):
        raise ValidationError("'context' must be an object of "
                              "ExecutionContext fields")
    refused = sorted(set(context) - set(SUBMIT_CONTEXT_FIELDS))
    if refused:
        raise ValidationError(
            f"submission context may not set {refused}: execution resources "
            f"(backend, workers, cache and telemetry roots) are owned by "
            f"the server; settable fields: {sorted(SUBMIT_CONTEXT_FIELDS)}"
        )
    return {
        "dataset": dataset,
        "model": str(payload.get("model", "lr")),
        "algorithm": str(payload.get("algorithm", "rs")),
        "max_trials": max_trials,
        "seed": int(payload.get("seed", 0)),
        "scale": float(payload.get("scale", 1.0)),
        "tenant": str(payload.get("tenant", "default")),
        "context": dict(context),
    }


class ManagedSession:
    """One submitted search and everything the manager knows about it."""

    def __init__(self, session_id: str, spec: dict, *, directory: Path) -> None:
        self.session_id = session_id
        self.spec = spec
        self.directory = directory
        self.status = "queued"
        self.session = None        # the SearchSession, once built
        self.thread = None
        self.error: str | None = None
        self.events: list = []     # event dicts with monotonically rising seq
        self.result_summary: dict | None = None
        self.created = time.time()
        self.updated = self.created
        #: True when the next start must restore from the checkpoint file
        self.resume_from_checkpoint = False

    @property
    def checkpoint_path(self) -> Path:
        return self.directory / CHECKPOINT_FILE_NAME

    @property
    def telemetry_dir(self) -> Path:
        return self.directory / "telemetry"

    def describe(self) -> dict:
        """The JSON-shaped status view served by the HTTP layer."""
        trials = None
        best = None
        if self.session is not None:
            trials = len(self.session.result)
            best = (self.session.result.best_accuracy if trials else None)
        elif self.result_summary is not None:
            trials = self.result_summary.get("trials")
            best = self.result_summary.get("best_accuracy")
        return {
            "session_id": self.session_id,
            "status": self.status,
            "spec": dict(self.spec),
            "trials": trials,
            "best_accuracy": best,
            "events": len(self.events),
            "error": self.error,
            "created": self.created,
            "updated": self.updated,
            "result": self.result_summary,
        }


class _FairScheduler:
    """Weighted fair queueing over tenants for free session slots.

    Fair queueing on a virtual clock: tenant ``t`` with weight ``w``
    starting a session of cost ``c`` (its ``max_trials``) is stamped
    with a virtual start tag ``max(V, vft(t))`` and finish tag
    ``start + c / w``, and whenever a slot frees up the earliest-queued
    session of the tenant with the *smallest* finish tag starts.  Finish
    ties go to the smaller start tag — the tenant that has effectively
    waited longer — and only then to the earlier submission; without the
    start-tag tie-break, equal-cost backlogged tenants tie on every pick
    and insertion order alone would starve the later one.  ``V``
    advances to the start tag of each started session, so an idle tenant
    cannot bank unbounded credit.  Heavier weights mean proportionally
    more of the slots; a tenant that floods the queue only raises its
    own finish tags and cannot starve a light tenant, whose single
    queued session keeps the smallest stamp.

    Purely deterministic — no wall clock, no randomness — so a given
    submission sequence always starts in the same order.  Not
    thread-safe: the manager calls it with its lock held.
    """

    __slots__ = ("weights", "virtual_time", "finish_times")

    def __init__(self, weights=None) -> None:
        validated: dict = {}
        for tenant, weight in dict(weights or {}).items():
            weight = float(weight)
            if weight <= 0:
                raise ValidationError(
                    f"tenant weights must be > 0, got {weight:g} for "
                    f"tenant {str(tenant)!r}"
                )
            validated[str(tenant)] = weight
        self.weights = validated
        self.virtual_time = 0.0
        self.finish_times: dict = {}  # tenant -> last virtual finish time

    def weight(self, tenant: str) -> float:
        return self.weights.get(tenant, 1.0)

    def take(self, queued) -> "ManagedSession | None":
        """Pick (and charge for) the next session to start.

        ``queued`` is the queued sessions in submission order; only the
        first session of each tenant is eligible, so a tenant's own queue
        stays FIFO.
        """
        heads: dict = {}
        for record in queued:
            heads.setdefault(record.spec["tenant"], record)
        choice = None
        choice_start = choice_finish = 0.0
        for tenant, record in heads.items():
            start = max(self.virtual_time, self.finish_times.get(tenant, 0.0))
            finish = start + record.spec["max_trials"] / self.weight(tenant)
            # strict <: insertion order of `heads` is submission order, so
            # full ties keep the earliest-submitted head.  Finish ties
            # break on the smaller start tag first (the longer-waiting
            # tenant), or equal-cost floods would win every tie forever.
            if choice is None or (finish, start) < (choice_finish,
                                                    choice_start):
                choice, choice_start, choice_finish = record, start, finish
        if choice is not None:
            self.finish_times[choice.spec["tenant"]] = choice_finish
            self.virtual_time = choice_start
        return choice


class SessionManager:
    """Run many concurrent search sessions over shared execution resources.

    Parameters
    ----------
    base_context:
        The server's :class:`~repro.core.context.ExecutionContext`: its
        ``backend``/``n_jobs`` build the one shared engine, its
        ``cache_dir`` is the shared persistent eval-cache root.  Tenant
        submissions may only layer :data:`SUBMIT_CONTEXT_FIELDS` on top.
    state_dir:
        Root directory for per-session state (checkpoints, manifests,
        telemetry).  A new manager pointed at an existing state dir
        recovers every in-flight session.  Defaults to a fresh temp dir
        (no cross-restart durability).
    max_sessions:
        Concurrently *running* sessions; excess submissions queue and
        start under weighted fair scheduling (see :class:`_FairScheduler`).
    tenant_quota:
        Per-tenant trial quota enforced through ``TrialBudget.admits()``
        at submission time; ``None`` disables per-tenant admission.
    checkpoint_every:
        Trials between automatic checkpoints for every managed session —
        the restart-resume granularity.
    tenant_weights:
        Fair-share weights for queued-session scheduling, e.g.
        ``{"paid": 4.0}``; unlisted tenants weigh 1.  ``None`` means
        every tenant weighs the same (which is still fair scheduling,
        not FIFO: one tenant's backlog cannot starve another's).
    """

    def __init__(self, *, base_context: ExecutionContext | None = None,
                 state_dir=None, max_sessions: int = 2,
                 tenant_quota: int | None = None,
                 checkpoint_every: int = 5,
                 tenant_weights: dict | None = None) -> None:
        max_sessions = int(max_sessions)
        if max_sessions < 1:
            raise ValidationError(
                f"max_sessions must be at least 1, got {max_sessions}"
            )
        checkpoint_every = int(checkpoint_every)
        if checkpoint_every < 1:
            raise ValidationError(
                f"checkpoint_every must be at least 1, got {checkpoint_every}"
            )
        if tenant_quota is not None:
            tenant_quota = int(tenant_quota)
            if tenant_quota < 1:
                raise ValidationError(
                    f"tenant_quota must be at least 1, got {tenant_quota}"
                )
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self.base_context = base_context if base_context is not None \
            else ExecutionContext()
        self.state_dir = Path(state_dir) if state_dir is not None \
            else Path(tempfile.mkdtemp(prefix="repro-serve-"))
        self.max_sessions = max_sessions
        self.tenant_quota = tenant_quota
        self.checkpoint_every = checkpoint_every
        self._scheduler = _FairScheduler(tenant_weights)
        self.tenant_weights = dict(self._scheduler.weights)
        #: the one engine every session's evaluator shares (None = serial)
        self.engine = self.base_context.build_engine()
        self.started = time.time()
        self._sessions: "dict[str, ManagedSession]" = {}
        self._tenant_budgets: "dict[str, TrialBudget]" = {}
        self._closed = False
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.recover()

    # ------------------------------------------------------------ admission
    def submit(self, payload) -> str:
        """Admit one search submission; returns its session id.

        Raises :class:`~repro.exceptions.ValidationError` on a malformed
        spec and :class:`AdmissionError` when the tenant's quota cannot
        admit ``max_trials`` more trials.
        """
        default_budget = self.base_context.default_budget or 20
        spec = normalize_spec(payload, default_max_trials=default_budget)
        # Validate names eagerly so a bad submission fails at submit time,
        # not minutes later on a worker thread.
        from repro.datasets import get_dataset_info
        from repro.search import make_search_algorithm

        get_dataset_info(spec["dataset"])
        make_search_algorithm(spec["algorithm"], random_state=spec["seed"])
        self.base_context.layer(spec["context"])  # field validation only
        with self._lock:
            if self._closed:
                raise ValidationError("this SessionManager is shut down")
            budget = self._tenant_budget_locked(spec["tenant"])
            if budget is not None and not budget.admits(spec["max_trials"]):
                raise AdmissionError(
                    f"tenant {spec['tenant']!r} quota exhausted: "
                    f"{budget.remaining():g} of {self.tenant_quota} trial(s) "
                    f"left, submission asks for {spec['max_trials']}"
                )
            if budget is not None:
                budget.consume(spec["max_trials"])
            session_id = f"{spec['dataset']}-{spec['algorithm']}-" \
                         f"{uuid.uuid4().hex[:8]}"
            record = ManagedSession(session_id, spec,
                                    directory=self.state_dir / session_id)
            record.directory.mkdir(parents=True, exist_ok=True)
            self._sessions[session_id] = record
            self._save_manifest(record)
            self._maybe_start_locked()
        log.info("submitted %s (tenant=%s, %d trials)",
                 session_id, spec["tenant"], spec["max_trials"])
        return session_id

    def _tenant_budget_locked(self, tenant: str) -> TrialBudget | None:
        if self.tenant_quota is None:
            return None
        budget = self._tenant_budgets.get(tenant)
        if budget is None:
            budget = self._tenant_budgets.setdefault(
                tenant, TrialBudget(self.tenant_quota)
            )
        return budget

    def _refund_tenant_locked(self, record: ManagedSession) -> None:
        """Return a cancelled session's unused trial remainder to its tenant."""
        budget = self._tenant_budgets.get(record.spec["tenant"])
        if budget is None:
            return
        used = len(record.session.result) if record.session is not None else 0
        remainder = max(0, record.spec["max_trials"] - used)
        if remainder:
            budget.consume(-float(remainder))

    # ------------------------------------------------------------ lifecycle
    def _maybe_start_locked(self) -> None:
        """Start queued sessions while running slots are free (lock held).

        Slot assignment is weighted-fair across tenants, not FIFO: the
        scheduler picks the tenant with the smallest virtual finish time
        and starts that tenant's earliest-queued session.
        """
        if self._closed:
            return
        running = sum(1 for r in self._sessions.values()
                      if r.status == "running")
        while running < self.max_sessions:
            queued = [r for r in self._sessions.values()
                      if r.status == "queued"]
            record = self._scheduler.take(queued)
            if record is None:
                break
            record.status = "running"
            record.updated = time.time()
            self._save_manifest(record)
            record.thread = threading.Thread(
                target=self._run_session, args=(record,),
                name=f"repro-serve-{record.session_id}", daemon=True,
            )
            record.thread.start()
            running += 1

    def _session_context(self, record: ManagedSession) -> ExecutionContext:
        """The per-session context: server base + tenant overrides.

        Execution resources stay with the server: the context the session
        runs (and checkpoints) under never builds a private engine
        (``backend``/``n_jobs`` cleared), telemetry always lands in the
        session's own directory, and the shared ``cache_dir`` rides along
        so every session warms the same persistent eval cache.
        """
        context = self.base_context.layer(record.spec["context"])
        overrides = {
            "backend": None,
            "n_jobs": None,
            "telemetry_dir": str(record.telemetry_dir),
        }
        if context.telemetry_mode == "off":
            # Heartbeats and metrics snapshots are the service's
            # observability contract; "counters" is the cheapest mode that
            # provides them.
            overrides["telemetry_mode"] = "counters"
        return context.replace(**overrides)

    def _build_session(self, record: ManagedSession):
        from repro.core.problem import AutoFPProblem
        from repro.search import make_search_algorithm
        from repro.search.session import SearchSession

        spec = record.spec
        callbacks = {
            "on_trial": lambda session, trial: self._on_trial(record, session,
                                                              trial),
            "on_checkpoint": lambda session, path: self._on_checkpoint(
                record, path),
        }
        record.telemetry_dir.mkdir(parents=True, exist_ok=True)
        if record.resume_from_checkpoint and record.checkpoint_path.exists():
            session = SearchSession.resume(
                record.checkpoint_path,
                checkpoint_path=record.checkpoint_path,
                checkpoint_every=self.checkpoint_every,
                **callbacks,
            )
        else:
            context = self._session_context(record)
            problem = AutoFPProblem.from_registry(
                spec["dataset"], spec["model"], scale=spec["scale"],
                random_state=spec["seed"], context=context,
            )
            algorithm = make_search_algorithm(spec["algorithm"],
                                              random_state=spec["seed"])
            session = SearchSession(
                problem, algorithm, context=context,
                session_id=record.session_id,
                checkpoint_path=record.checkpoint_path,
                checkpoint_every=self.checkpoint_every,
                **callbacks,
            )
        record.resume_from_checkpoint = False
        if self.engine is not None:
            # The shared engine: fingerprint-keyed evaluation pools keep
            # sessions from thrashing each other's warm workers.
            session.problem.evaluator.set_engine(self.engine)
        return session

    def _run_session(self, record: ManagedSession) -> None:
        """Worker-thread body: build (or restore) the session and drive it."""
        session = None
        try:
            with self._lock:
                session = record.session
            if session is None:
                session = self._build_session(record)
                with self._lock:
                    record.session = session
            with self._lock:
                # pause/cancel/shutdown may have landed while the session
                # was being built; honor it instead of starting the run.
                proceed = record.status == "running"
            if proceed:
                result = session.run(max_trials=record.spec["max_trials"])
            else:
                result = session.result
            summary = {
                "trials": len(result),
                "best_accuracy": result.best_accuracy if len(result) else None,
                "best_pipeline": (result.best_pipeline.describe()
                                  if len(result) else None),
                "accuracies": [trial.accuracy for trial in result.trials],
            }
            with self._lock:
                record.result_summary = summary
                if record.status == "cancelled":
                    self._refund_tenant_locked(record)
                elif record.status in ("paused", "interrupted"):
                    # explicit pause / server shutdown: keep that status
                    pass
                elif session.stopped:
                    record.status = "paused"
                else:
                    record.status = "done"
        except Exception as error:
            # A tenant's search must never take the server down; the
            # failure is recorded on the session and served back.
            log.warning("session %s failed: %s", record.session_id, error)
            with self._lock:
                record.error = f"{type(error).__name__}: {error}"
                record.status = "failed"
                self._refund_tenant_locked(record)
        finally:
            with self._lock:
                record.updated = time.time()
                self._save_manifest(record)
                self._emit_locked(record, {"kind": "status",
                                           "status": record.status})
                self._maybe_start_locked()
        if record.status == "paused" and session is not None:
            # At rest now: persist the paused state so a server restart (or
            # an explicit resume on another manager) continues from here.
            try:
                session.checkpoint(record.checkpoint_path)
            except ReproError as error:
                log.warning("post-pause checkpoint of %s failed: %s",
                            record.session_id, error)

    # -------------------------------------------------------------- control
    def pause(self, session_id: str) -> dict:
        """Stop a session after its current trial, keeping it resumable."""
        with self._lock:
            record = self._get_locked(session_id)
            if record.status == "queued":
                record.status = "paused"
                record.updated = time.time()
                self._save_manifest(record)
                self._emit_locked(record, {"kind": "status",
                                           "status": "paused"})
            elif record.status == "running":
                record.status = "paused"
                record.updated = time.time()
                if record.session is not None:
                    record.session.stop()
                self._save_manifest(record)
            elif record.status not in ("paused", "interrupted"):
                raise ValidationError(
                    f"session {session_id} is {record.status} and cannot "
                    f"be paused"
                )
            return record.describe()

    def resume(self, session_id: str) -> dict:
        """Queue a paused/interrupted session to continue running."""
        with self._lock:
            record = self._get_locked(session_id)
            if record.status in ("running", "queued"):
                return record.describe()
            if record.status not in ("paused", "interrupted"):
                raise ValidationError(
                    f"session {session_id} is {record.status} and cannot "
                    f"be resumed"
                )
            if record.session is None and record.checkpoint_path.exists():
                record.resume_from_checkpoint = True
            record.status = "queued"
            record.updated = time.time()
            self._save_manifest(record)
            self._maybe_start_locked()
            return record.describe()

    def cancel(self, session_id: str) -> dict:
        """Cancel a session; its unused trial quota returns to the tenant."""
        with self._lock:
            record = self._get_locked(session_id)
            if record.status in TERMINAL_STATES:
                return record.describe()
            was_running = record.status == "running"
            record.status = "cancelled"
            record.updated = time.time()
            if was_running:
                # The worker thread observes the status when run() returns
                # and refunds the remainder then, at a trial boundary (if
                # the session is still being built, the worker sees the
                # cancel before starting the run).
                if record.session is not None:
                    record.session.stop()
            else:
                self._refund_tenant_locked(record)
                self._save_manifest(record)
                self._emit_locked(record, {"kind": "status",
                                           "status": "cancelled"})
                self._maybe_start_locked()
            return record.describe()

    def checkpoint(self, session_id: str) -> dict:
        """Request a checkpoint of a session (written at a trial boundary)."""
        with self._lock:
            record = self._get_locked(session_id)
            session = record.session
            if session is None:
                raise ValidationError(
                    f"session {session_id} has not started; nothing to "
                    f"checkpoint"
                )
        # Outside the lock: a checkpoint of an idle session writes (and
        # fires on_checkpoint, which needs the lock) right here.
        path = session.checkpoint(record.checkpoint_path)
        return {"session_id": session_id, "checkpoint": str(path)}

    # ---------------------------------------------------------------- views
    def _get_locked(self, session_id: str) -> ManagedSession:
        record = self._sessions.get(session_id)
        if record is None:
            raise UnknownSessionError(f"unknown session {session_id!r}")
        return record

    def sessions(self) -> list:
        """Status summaries of every known session, oldest first."""
        with self._lock:
            return [record.describe() for record in self._sessions.values()]

    def status(self, session_id: str) -> dict:
        with self._lock:
            return self._get_locked(session_id).describe()

    def events(self, session_id: str, *, after: int = 0,
               timeout: float | None = None) -> dict:
        """Events past sequence number ``after`` (long-poll).

        Returns ``{"events": [...], "next": n, "status": ...}``; with a
        ``timeout`` the call blocks until new events arrive, the session
        reaches a terminal state, or the timeout elapses — the primitive
        the HTTP layer turns into chunked live streaming.
        """
        after = max(0, int(after))
        deadline = None if timeout is None else time.time() + float(timeout)
        with self._wakeup:
            while True:
                record = self._get_locked(session_id)
                fresh = record.events[after:]
                done = record.status in TERMINAL_STATES \
                    or record.status in ("paused", "interrupted")
                if fresh or deadline is None or done:
                    return {
                        "session_id": session_id,
                        "events": [dict(event) for event in fresh],
                        "next": after + len(fresh),
                        "status": record.status,
                    }
                remaining = deadline - time.time()
                if remaining <= 0:
                    return {"session_id": session_id, "events": [],
                            "next": after, "status": record.status}
                self._wakeup.wait(remaining)

    def engine_view(self) -> dict:
        """The shared engine's capacity: backend, workers, in-flight depth.

        ``workers`` is *live* membership where the backend has such a
        notion (the remote backend's registered worker count — it moves
        as machines join and die); ``n_workers`` is the dispatch
        parallelism the engine plans around.  ``inflight`` is the
        process-wide ``engine.inflight`` gauge: evaluation groups
        currently running or queued on the backend.
        """
        if self.engine is None:
            view = {"backend": "serial", "n_workers": 1}
        else:
            backend = self.engine.backend
            inner = getattr(backend, "inner", backend)  # unwrap chaos
            view = {"backend": inner.name, "n_workers": inner.n_workers}
            workers = getattr(inner, "worker_count", None)
            if workers is not None:
                view["workers"] = workers
        view["inflight"] = get_registry().gauge("engine.inflight").value
        return view

    def metrics(self) -> dict:
        """The process metrics registry plus every session's heartbeat."""
        per_session = {}
        with self._lock:
            records = list(self._sessions.values())
        for record in records:
            entry = {"status": record.status}
            heartbeat = self._read_heartbeat(record)
            if heartbeat is not None:
                entry["heartbeat"] = heartbeat
            per_session[record.session_id] = entry
        return {
            "registry": get_registry().snapshot().to_dict(),
            "engine": self.engine_view(),
            "sessions": per_session,
        }

    def _read_heartbeat(self, record: ManagedSession) -> dict | None:
        path = record.telemetry_dir / heartbeat_file_name(record.session_id)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # not written yet, or mid-rotation

    def healthz(self) -> dict:
        """Liveness summary: per-state session counts and capacity.

        ``status`` is ``"degraded"`` (with ``last_crash`` details) once
        the shared engine's backend has lost a worker pool to a crash or
        a blown evaluation deadline — deliberately sticky, so a scrape
        between crash and recovery still reports that recovery happened;
        sessions keep being served while degraded (the pool was rebuilt).
        """
        last_crash = (getattr(self.engine.backend, "last_crash", None)
                      if self.engine is not None else None)
        engine_view = self.engine_view()
        with self._lock:
            counts: dict = {}
            for record in self._sessions.values():
                counts[record.status] = counts.get(record.status, 0) + 1
            if self._closed:
                status = "shutdown"
            elif last_crash is not None:
                status = "degraded"
            else:
                status = "ok"
            payload = {
                "status": status,
                "uptime": time.time() - self.started,
                "sessions": counts,
                "max_sessions": self.max_sessions,
                "tenant_quota": self.tenant_quota,
                "state_dir": str(self.state_dir),
                "engine": engine_view,
            }
            if last_crash is not None:
                payload["last_crash"] = dict(last_crash)
            return payload

    # ------------------------------------------------------------ durability
    def _save_manifest(self, record: ManagedSession) -> None:
        manifest = {
            "session_id": record.session_id,
            "spec": record.spec,
            "status": record.status,
            "error": record.error,
            "created": record.created,
            "updated": record.updated,
            "result": record.result_summary,
        }
        try:
            atomic_write_text(record.directory / MANIFEST_FILE_NAME,
                              json.dumps(manifest, indent=2))
        except OSError as error:
            # Durability must not take a live session down mid-run; the
            # manifest refreshes again at the next state change.
            log.warning("manifest write for %s failed: %s",
                        record.session_id, error)

    def recover(self) -> list:
        """Load sessions recorded under ``state_dir`` by an earlier manager.

        In-flight sessions (``running``/``queued``/``interrupted``) are
        re-queued and — once a slot frees up — restored from their last
        checkpoint, continuing bit-for-bit identically to a run that was
        never interrupted; sessions without a checkpoint yet simply start
        over from trial zero, which is the same thing.  Explicitly
        ``paused`` sessions are restored as paused.  Returns the ids of
        every recovered session.
        """
        recovered = []
        for manifest_path in sorted(
                self.state_dir.glob(f"*/{MANIFEST_FILE_NAME}")):
            try:
                manifest = json.loads(
                    manifest_path.read_text(encoding="utf-8"))
                spec = normalize_spec(manifest["spec"])
                session_id = str(manifest["session_id"])
            except (OSError, ValueError, KeyError, ReproError) as error:
                log.warning("skipping unreadable session manifest %s: %s",
                            manifest_path, error)
                continue
            with self._lock:
                if session_id in self._sessions:
                    continue
                record = ManagedSession(session_id, spec,
                                        directory=manifest_path.parent)
                record.created = float(manifest.get("created") or
                                       record.created)
                record.error = manifest.get("error")
                record.result_summary = manifest.get("result")
                status = manifest.get("status")
                if status in TERMINAL_STATES:
                    record.status = status
                elif status == "paused":
                    record.status = "paused"
                    record.resume_from_checkpoint = True
                else:  # queued / running / interrupted: in-flight
                    record.status = "queued"
                    record.resume_from_checkpoint = \
                        record.checkpoint_path.exists()
                self._sessions[session_id] = record
                if self.tenant_quota is not None \
                        and record.status not in TERMINAL_STATES:
                    budget = self._tenant_budget_locked(spec["tenant"])
                    trials_done = (record.result_summary or {}).get("trials", 0)
                    budget.consume(
                        max(0, spec["max_trials"] - int(trials_done or 0))
                    )
                recovered.append(session_id)
        with self._lock:
            self._maybe_start_locked()
        if recovered:
            log.info("recovered %d session(s) from %s",
                     len(recovered), self.state_dir)
        return recovered

    def shutdown(self, *, timeout: float = 30.0) -> None:
        """Stop every running session at a trial boundary and close up.

        Running sessions are marked ``interrupted`` in their manifests —
        the state :meth:`recover` auto-resumes — and their final
        checkpoints are written by the worker threads on the way out.
        Safe to call twice.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = []
            for record in self._sessions.values():
                if record.status == "running":
                    record.status = "interrupted"
                    if record.session is not None:
                        record.session.stop()
                    threads.append(record.thread)
                elif record.status == "queued":
                    record.status = "interrupted"
                    self._save_manifest(record)
            self._wakeup.notify_all()
        deadline = time.time() + timeout
        for thread in threads:
            if thread is not None:
                thread.join(max(0.1, deadline - time.time()))
        # The worker threads saved "interrupted" manifests as they left;
        # write a final checkpoint for each so restart-resume never loses
        # more than the current trial.
        with self._lock:
            interrupted = [record for record in self._sessions.values()
                           if record.status == "interrupted"
                           and record.session is not None]
        for record in interrupted:
            try:
                record.session.checkpoint(record.checkpoint_path)
            except ReproError as error:
                log.warning("shutdown checkpoint of %s failed: %s",
                            record.session_id, error)
        if self.engine is not None:
            self.engine.close()
        log.info("session manager shut down (%d session(s) interrupted)",
                 len(interrupted))

    # ------------------------------------------------------------ callbacks
    def _on_trial(self, record: ManagedSession, session, trial) -> None:
        with self._lock:
            self._emit_locked(record, {
                "kind": "trial",
                "trials_done": len(session.result),
                "iteration": trial.iteration,
                "accuracy": trial.accuracy,
                "fidelity": trial.fidelity,
                "pipeline": trial.pipeline.describe(),
                "best_accuracy": session.result.best_accuracy,
            })

    def _on_checkpoint(self, record: ManagedSession, path) -> None:
        with self._lock:
            self._emit_locked(record, {"kind": "checkpoint",
                                       "path": str(path)})

    def _emit_locked(self, record: ManagedSession, event: dict) -> None:
        event = dict(event)
        event["seq"] = len(record.events)
        event["time"] = time.time()
        record.events.append(event)
        self._wakeup.notify_all()

    def __repr__(self) -> str:
        with self._lock:
            return (f"SessionManager(sessions={len(self._sessions)}, "
                    f"max_sessions={self.max_sessions}, "
                    f"state_dir={str(self.state_dir)!r})")
