"""The stdlib HTTP front of :class:`~repro.serve.manager.SessionManager`.

``build_server`` wires a :class:`ThreadingHTTPServer` (one thread per
request, daemon threads so a hung long-poll never blocks shutdown) to a
manager; every route is a thin JSON translation of a manager method, so
all behaviour — admission, lifecycle, durability — is tested against the
manager directly and the handler stays dumb on purpose.

Routes::

    GET  /healthz                       liveness + per-state session counts
    GET  /metrics                       registry snapshot + session heartbeats
    GET  /sessions                      all session summaries
    POST /sessions                      submit {dataset, ...} -> {session_id}
    GET  /sessions/<id>                 one session's status
    GET  /sessions/<id>/events          ?after=N&timeout=S long-poll stream
    POST /sessions/<id>/pause           stop after the current trial
    POST /sessions/<id>/resume          continue a paused session
    POST /sessions/<id>/cancel          cancel and refund the tenant quota
    POST /sessions/<id>/checkpoint      snapshot at the next trial boundary

Errors map onto status codes the obvious way: a malformed request is 400
(:class:`~repro.exceptions.ValidationError`), an unknown session id 404,
an exhausted tenant quota 429 (:class:`~repro.serve.manager.AdmissionError`).
Every response body — errors included — is a JSON object.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ValidationError
from repro.serve.manager import AdmissionError, UnknownSessionError
from repro.utils.log import get_logger

log = get_logger("serve.http")

#: cap on request bodies; a submission spec is a few hundred bytes
MAX_BODY_BYTES = 1 << 20

#: cap on a single long-poll wait so handler threads always cycle
MAX_POLL_SECONDS = 60.0


class ServeHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning server's ``manager``."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing
    @property
    def manager(self):
        return self.server.manager

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # BaseHTTPRequestHandler writes to stderr by default; route through
        # the package logger so server noise obeys the repro log level.
        log.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, payload, *, status: int = 200) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > MAX_BODY_BYTES:
            raise ValidationError(
                f"request body must be 0..{MAX_BODY_BYTES} bytes, "
                f"got {length}"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise ValidationError(f"request body is not JSON: {error}") \
                from error

    def _query(self) -> dict:
        from urllib.parse import parse_qs, urlparse

        parsed = urlparse(self.path)
        return {key: values[-1]
                for key, values in parse_qs(parsed.query).items()}

    def _route(self) -> list:
        from urllib.parse import urlparse

        return [part for part in urlparse(self.path).path.split("/") if part]

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except UnknownSessionError as error:
            self._send_json({"error": str(error)}, status=404)
        except AdmissionError as error:
            self._send_json({"error": str(error)}, status=429)
        except ValidationError as error:
            self._send_json({"error": str(error)}, status=400)

    # --------------------------------------------------------------- verbs
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler protocol
        self._dispatch(self._get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._post)

    def _get(self) -> None:
        route = self._route()
        if route == ["healthz"]:
            self._send_json(self.manager.healthz())
        elif route == ["metrics"]:
            self._send_json(self.manager.metrics())
        elif route == ["sessions"]:
            self._send_json({"sessions": self.manager.sessions()})
        elif len(route) == 2 and route[0] == "sessions":
            self._send_json(self.manager.status(route[1]))
        elif len(route) == 3 and route[0] == "sessions" \
                and route[2] == "events":
            query = self._query()
            try:
                after = int(query.get("after", 0))
                timeout = query.get("timeout")
                timeout = None if timeout is None \
                    else min(float(timeout), MAX_POLL_SECONDS)
            except ValueError as error:
                raise ValidationError(
                    f"after/timeout must be numbers: {error}"
                ) from error
            self._send_json(self.manager.events(route[1], after=after,
                                                timeout=timeout))
        else:
            self._send_json({"error": f"no such route GET {self.path}"},
                            status=404)

    def _post(self) -> None:
        route = self._route()
        if route == ["sessions"]:
            payload = self._read_json()
            session_id = self.manager.submit(payload)
            self._send_json({"session_id": session_id,
                             **self.manager.status(session_id)},
                            status=201)
        elif len(route) == 3 and route[0] == "sessions":
            session_id, action = route[1], route[2]
            if action == "pause":
                self._send_json(self.manager.pause(session_id))
            elif action == "resume":
                self._send_json(self.manager.resume(session_id))
            elif action == "cancel":
                self._send_json(self.manager.cancel(session_id))
            elif action == "checkpoint":
                self._send_json(self.manager.checkpoint(session_id))
            else:
                self._send_json(
                    {"error": f"no such action {action!r}; expected "
                              f"pause, resume, cancel or checkpoint"},
                    status=404)
        else:
            self._send_json({"error": f"no such route POST {self.path}"},
                            status=404)


class ServeServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to one :class:`SessionManager`."""

    #: long-polls must not keep the process alive past shutdown
    daemon_threads = True

    def __init__(self, address, manager) -> None:
        super().__init__(address, ServeHandler)
        self.manager = manager


def build_server(manager, *, host: str = "127.0.0.1",
                 port: int = 0) -> ServeServer:
    """Bind a server for ``manager``; ``port=0`` picks an ephemeral port.

    The caller owns the loop: ``server.serve_forever()`` to serve,
    ``server.shutdown()`` + ``manager.shutdown()`` to stop.  The bound
    port is ``server.server_address[1]``.
    """
    return ServeServer((host, int(port)), manager)
