"""A thin stdlib client for the ``repro serve`` HTTP API.

:class:`ServeClient` mirrors the server routes one method per endpoint
and returns parsed JSON; it exists so the ``repro submit|status|events``
CLI subcommands — and tests — never hand-roll ``urllib`` plumbing.
Error responses raise :class:`ServeAPIError` carrying the HTTP status
and the server's ``error`` message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request

from repro.exceptions import ReproError


class ServeAPIError(ReproError):
    """An HTTP error response from a ``repro serve`` server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"server returned {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """JSON-over-HTTP client bound to one server base URL.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8642"``; a bare ``host:port`` gets the
        scheme prepended.
    timeout:
        Socket timeout for plain calls; long-poll :meth:`events` calls
        add their poll window on top.
    """

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    def _call(self, method: str, path: str, *, payload=None,
              query: dict | None = None, timeout: float | None = None):
        url = f"{self.base_url}{path}"
        if query:
            url = f"{url}?{urllib.parse.urlencode(query)}"
        body = None if payload is None \
            else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url, data=body, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except ValueError:
                message = raw
            raise ServeAPIError(error.code, message) from error
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach serve endpoint {self.base_url}: "
                f"{error.reason}"
            ) from error

    # ------------------------------------------------------------ endpoints
    def healthz(self) -> dict:
        return self._call("GET", "/healthz")

    def metrics(self) -> dict:
        return self._call("GET", "/metrics")

    def sessions(self) -> list:
        return self._call("GET", "/sessions")["sessions"]

    def submit(self, spec: dict) -> dict:
        """Submit a search; returns the created session's status view."""
        return self._call("POST", "/sessions", payload=spec)

    def status(self, session_id: str) -> dict:
        return self._call("GET", f"/sessions/{session_id}")

    def events(self, session_id: str, *, after: int = 0,
               timeout: float | None = None) -> dict:
        query: dict = {"after": int(after)}
        if timeout is not None:
            query["timeout"] = float(timeout)
        call_timeout = self.timeout + (timeout or 0.0)
        return self._call("GET", f"/sessions/{session_id}/events",
                          query=query, timeout=call_timeout)

    def pause(self, session_id: str) -> dict:
        return self._call("POST", f"/sessions/{session_id}/pause")

    def resume(self, session_id: str) -> dict:
        return self._call("POST", f"/sessions/{session_id}/resume")

    def cancel(self, session_id: str) -> dict:
        return self._call("POST", f"/sessions/{session_id}/cancel")

    def checkpoint(self, session_id: str) -> dict:
        return self._call("POST", f"/sessions/{session_id}/checkpoint")

    def wait(self, session_id: str, *, poll: float = 5.0,
             max_polls: int | None = None) -> dict:
        """Long-poll events until the session leaves its in-flight states.

        Returns the final status view.  ``max_polls`` bounds the wait for
        tests; ``None`` waits until the session is done/paused/failed/
        cancelled.
        """
        after = 0
        polls = 0
        while True:
            chunk = self.events(session_id, after=after, timeout=poll)
            after = chunk["next"]
            if chunk["status"] not in ("queued", "running"):
                return self.status(session_id)
            polls += 1
            if max_polls is not None and polls >= max_polls:
                return self.status(session_id)
