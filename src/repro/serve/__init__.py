"""Search-as-a-service: run Auto-FP searches behind a JSON/HTTP API.

The serving stack is three thin layers, each usable on its own:

* :mod:`repro.serve.manager` — :class:`SessionManager`, the multi-tenant
  core: shared execution engine and cache roots, one worker thread per
  session, per-tenant trial-quota admission, durable per-session state
  directories, restart recovery that resumes every in-flight session
  bit-for-bit from its checkpoint.
* :mod:`repro.serve.http` — a stdlib ``ThreadingHTTPServer`` translating
  routes to manager calls (submit, status, long-poll events, pause /
  resume / cancel / checkpoint, ``/metrics``, ``/healthz``).
* :mod:`repro.serve.client` — :class:`ServeClient`, the ``urllib`` client
  the ``repro submit|status|events`` CLI subcommands use.

Everything is stdlib-only; the heavy lifting (checkpoints, telemetry,
engines) is the substrate the earlier PRs built, reused unchanged.
"""

from repro.serve.client import ServeAPIError, ServeClient
from repro.serve.http import ServeServer, build_server
from repro.serve.manager import (
    AdmissionError,
    ManagedSession,
    SessionManager,
    UnknownSessionError,
    normalize_spec,
)

__all__ = [
    "AdmissionError",
    "ManagedSession",
    "ServeAPIError",
    "ServeClient",
    "ServeServer",
    "SessionManager",
    "UnknownSessionError",
    "build_server",
    "normalize_spec",
]
