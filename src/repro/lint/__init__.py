"""repro.lint — AST static analysis enforcing the reproduction's contracts.

A zero-dependency lint pass with project-specific rules (``RPR001`` …
``RPR008``) covering the invariants the runtime test matrices enforce
the expensive way: determinism, copy-on-write transform inputs,
centralized telemetry counters, no silent excepts, lock discipline,
atomic writes, explicit text encodings and bounded retry loops.  See
:mod:`repro.lint.rules` for the rule catalogue and
:mod:`repro.lint.core` for the framework (registry, single-parse
dispatch, ``# repro: lint-ignore[...]`` pragmas, per-path profiles).

Programmatic use::

    from repro.lint import lint_paths

    report = lint_paths(["src/repro", "tests"])
    assert report.clean, [f.message for f in report.findings]

Command line::

    python -m repro lint src tests --json
"""

from repro.lint.core import (
    DEFAULT_PROFILES,
    PARSE_ERROR_RULE,
    FileContext,
    LintFinding,
    LintReport,
    Rule,
    RuleProfile,
    all_rule_ids,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    make_rules,
    register_rule,
    rule_class,
)
from repro.lint import rules as _rules  # noqa: F401  (registers RPR001-007)
from repro.lint.reporting import (
    JSON_SCHEMA_VERSION,
    describe_rules,
    render_json,
    render_text,
)

__all__ = [
    "DEFAULT_PROFILES",
    "JSON_SCHEMA_VERSION",
    "PARSE_ERROR_RULE",
    "FileContext",
    "LintFinding",
    "LintReport",
    "Rule",
    "RuleProfile",
    "all_rule_ids",
    "describe_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "make_rules",
    "register_rule",
    "render_json",
    "render_text",
    "rule_class",
]
