"""Reporters: render a :class:`~repro.lint.core.LintReport` for humans or CI.

The text reporter prints one ``path:line:col RPRxxx message`` line per
finding (clickable in editors and CI logs) plus a per-rule tally; the
JSON reporter emits a stable, version-stamped document that CI uploads
as an artifact and that tooling can diff across runs.
"""

from __future__ import annotations

import json

#: bump when the ``--json`` document shape changes incompatibly
JSON_SCHEMA_VERSION = 1


def render_text(report, out) -> None:
    """Write the human-readable report to the ``out`` stream."""
    for finding in report.findings:
        out.write(f"{finding.path}:{finding.line}:{finding.col} "
                  f"{finding.rule} {finding.message}\n")
        if finding.snippet:
            out.write(f"    {finding.snippet}\n")
    if report.clean:
        out.write(f"clean: {report.files_checked} file(s), 0 findings\n")
        return
    tally = ", ".join(f"{rule} x{count}"
                      for rule, count in report.counts().items())
    out.write(f"\n{len(report.findings)} finding(s) in "
              f"{report.files_checked} file(s) checked ({tally})\n")


def render_json(report) -> str:
    """The ``--json`` document (text, trailing newline included)."""
    return json.dumps(report.to_dict(), indent=2) + "\n"


def describe_rules(rules) -> str:
    """A ``--list-rules`` table of id, title and rationale."""
    lines = []
    for rule in rules:
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines) + "\n"
