"""The lint framework: findings, rules, suppressions, profiles, the runner.

``repro lint`` is a *contract* checker, not a style checker.  The
reproduction's headline guarantees — bit-for-bit determinism across
backends and resume, read-only copy-on-write prefix-cache arrays,
torn-line-tolerant atomic IO, centralized telemetry counters — are all
*conventions*: nothing in Python stops a new module from calling
``np.random.seed``, mutating a cached array in place, or writing a result
file non-atomically.  The runtime test matrices catch such regressions
eventually, but as flaky nondeterminism at service scale.  This package
catches them at commit time, from the AST.

Design:

* each file is parsed **once**; every active rule receives the nodes it
  registered for (``Rule.node_types``) in document order, so a sweep over
  the whole tree costs one parse + one walk per file regardless of how
  many rules run;
* rules are registered by class (``@register_rule``) under stable
  ``RPRxxx`` identifiers, so callers (tests, CI, the CLI ``--rules``
  filter) can select them individually;
* inline suppressions — ``# repro: lint-ignore[RPR001]`` on the offending
  line (or alone on the line above), ``# repro: lint-ignore-file[RPR006]``
  anywhere for the whole file — let intentional violations stay, visibly,
  with their justification next to them;
* per-path :class:`RuleProfile` entries relax rule sets for trees with
  different contracts (tests may mutate arrays and write files freely;
  the telemetry package is *allowed* to implement counter storage; the
  lint test fixtures are intentionally violating and are skipped).

A file that fails to parse yields a single ``RPR000`` finding rather than
crashing the sweep: a syntax error in the tree is itself a violation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ValidationError

#: the pseudo-rule reported when a file cannot be parsed at all
PARSE_ERROR_RULE = "RPR000"

#: inline pragma grammar; the optional ``-file`` suffix widens the scope
#: to the whole file, the optional bracket list narrows it to named rules
#: (no list = every rule).  Text after the bracket is the justification.
_PRAGMA = re.compile(
    r"#\s*repro:\s*lint-ignore(?P<whole_file>-file)?"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form (the ``--json`` reporter's element schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


class FileContext:
    """Everything a rule may consult about the file under analysis.

    Also the findings sink: rules call :meth:`report`, which applies the
    file's inline suppressions before recording anything.
    """

    def __init__(self, path: Path, source: str, tree: ast.AST,
                 display_path: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.findings: list[LintFinding] = []
        self._line_ignores: dict[int, frozenset | None] = {}
        self._file_ignores: frozenset | None = frozenset()
        self._scan_pragmas()

    # ------------------------------------------------------------ pragmas
    def _scan_pragmas(self) -> None:
        file_wide: set | None = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            scope = (frozenset(part.strip() for part in rules.split(",")
                               if part.strip())
                     if rules else None)  # None = every rule
            if match.group("whole_file"):
                if scope is None or file_wide is None:
                    file_wide = None
                else:
                    file_wide |= scope
                continue
            code_before = text[: match.start()].strip()
            # A standalone pragma line shields the line below it; a
            # trailing pragma shields its own line.
            target = lineno + 1 if not code_before else lineno
            existing = self._line_ignores.get(target, frozenset())
            if scope is None or existing is None:
                self._line_ignores[target] = None
            else:
                self._line_ignores[target] = frozenset(existing) | scope
        self._file_ignores = (None if file_wide is None
                              else frozenset(file_wide))

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if self._file_ignores is None or rule_id in self._file_ignores:
            return True
        scope = self._line_ignores.get(line, frozenset())
        return scope is None or rule_id in scope

    # ------------------------------------------------------------ helpers
    def matches(self, fragments: Iterable[str]) -> bool:
        """Whether this file's path contains any of ``fragments``."""
        posix = self.path.as_posix()
        return any(fragment in posix for fragment in fragments)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        """Record a finding at ``node`` unless a pragma suppresses it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.is_suppressed(rule.rule_id, line):
            return
        self.findings.append(LintFinding(
            rule=rule.rule_id, path=self.display_path, line=line, col=col,
            message=message, snippet=self.snippet(line),
        ))


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`rule_id` / :attr:`title` / :attr:`rationale`,
    declare the AST node classes they want in :attr:`node_types`, and
    implement :meth:`visit`.  Per-file state goes in :meth:`start_file`
    (a fresh rule instance is *not* created per file).  A rule that only
    applies to part of the tree narrows itself with
    :attr:`path_fragments`.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    node_types: tuple = ()
    #: posix path fragments the rule is limited to (``None`` = every file)
    path_fragments: tuple | None = None

    def start_file(self, ctx: FileContext) -> None:
        """Reset per-file state before the walk."""

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Inspect one node of a type listed in :attr:`node_types`."""

    def finish_file(self, ctx: FileContext) -> None:
        """Hook after the walk (for rules that accumulate)."""


#: registry of rule classes by id, populated via :func:`register_rule`
_RULE_CLASSES: dict[str, type] = {}


def register_rule(cls):
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not cls.rule_id:
        raise ValidationError(f"{cls.__name__} declares no rule_id")
    if cls.rule_id in _RULE_CLASSES:
        raise ValidationError(f"duplicate lint rule id {cls.rule_id!r}")
    _RULE_CLASSES[cls.rule_id] = cls
    return cls


def all_rule_ids() -> tuple:
    """Every registered rule id, sorted."""
    return tuple(sorted(_RULE_CLASSES))


def rule_class(rule_id: str):
    """The registered class for ``rule_id`` (raises on unknown ids)."""
    try:
        return _RULE_CLASSES[rule_id]
    except KeyError:
        raise ValidationError(
            f"unknown lint rule {rule_id!r}; known rules: "
            + ", ".join(all_rule_ids())
        ) from None


def make_rules(rule_ids: Sequence | None = None) -> list:
    """Instantiate the requested rules (default: every registered rule).

    Accepts rule ids or ready-made instances interchangeably, so callers
    holding instances can pass them straight back through the runners.
    """
    if rule_ids is None:
        rule_ids = all_rule_ids()
    return [rule if isinstance(rule, Rule) else rule_class(rule)()
            for rule in rule_ids]


# ------------------------------------------------------------------ profiles
@dataclass(frozen=True)
class RuleProfile:
    """Per-path rule adjustments, matched by posix path fragment."""

    name: str
    fragment: str
    disable: frozenset = frozenset()
    skip: bool = False  # skip matched files entirely (e.g. bad fixtures)

    def matches(self, path: Path) -> bool:
        return self.fragment in path.as_posix()


#: the repository's shipped profile set.  Order is irrelevant: matching
#: profiles compose (disabled sets union; any ``skip`` wins).
DEFAULT_PROFILES: tuple = (
    # The lint test fixtures violate the rules on purpose.
    RuleProfile("lint-fixtures", "tests/lint/fixtures/", skip=True),
    # The telemetry package is the one place allowed to *implement*
    # counter storage (RPR003 exists to funnel everyone else into it).
    RuleProfile("telemetry", "repro/telemetry/",
                disable=frozenset({"RPR003"})),
    # Tests, benchmarks and examples run outside the library's COW,
    # lock-discipline and atomic-write contracts: they may mutate arrays
    # they own, hold no shared caches, and write scratch files freely.
    # Determinism (RPR001), silent excepts (RPR004) and explicit
    # encodings (RPR007) still apply — flaky tests are still flaky.
    RuleProfile("tests-relaxed", "tests/",
                disable=frozenset({"RPR002", "RPR005", "RPR006"})),
    RuleProfile("benchmarks-relaxed", "benchmarks/",
                disable=frozenset({"RPR002", "RPR005", "RPR006"})),
    RuleProfile("examples-relaxed", "examples/",
                disable=frozenset({"RPR002", "RPR005", "RPR006"})),
)


def _profile_decision(path: Path, profiles: Iterable[RuleProfile]):
    """Compose every matching profile into ``(skip, disabled_rule_ids)``."""
    skip = False
    disabled: set = set()
    for profile in profiles:
        if profile.matches(path):
            skip = skip or profile.skip
            disabled |= set(profile.disable)
    return skip, disabled


# -------------------------------------------------------------------- runner
@dataclass
class LintReport:
    """The outcome of one lint sweep."""

    findings: list = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict:
        """Findings per rule id, sorted by id."""
        tally: dict = {}
        for finding in self.findings:
            tally[finding.rule] = tally.get(finding.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_dict(self) -> dict:
        """The ``--json`` reporter schema (stable; version-stamped)."""
        from repro.lint.reporting import JSON_SCHEMA_VERSION

        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro-lint",
            "files_checked": self.files_checked,
            "clean": self.clean,
            "counts": self.counts(),
            "findings": [finding.to_dict()
                         for finding in sorted(self.findings,
                                               key=LintFinding.sort_key)],
        }


def _walk_document_order(tree: ast.AST):
    """Depth-first pre-order walk, children in source order.

    Unlike :func:`ast.walk` (breadth-first), this guarantees that a
    module's imports are seen before any later call that uses them, which
    the determinism rule relies on to resolve module aliases.
    """
    stack = [tree]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def lint_source(source: str, *, path="<string>", rules=None,
                profiles: Iterable[RuleProfile] = DEFAULT_PROFILES,
                ) -> list:
    """Lint one source string; the unit the per-file sweep is built on."""
    rules = make_rules(rules)
    path = Path(path)
    display = path.as_posix()
    skip, disabled = _profile_decision(path, profiles)
    if skip:
        return []
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as error:
        return [LintFinding(
            rule=PARSE_ERROR_RULE, path=display,
            line=error.lineno or 1, col=error.offset or 0,
            message=f"file does not parse: {error.msg}",
        )]
    ctx = FileContext(path, source, tree, display)
    active = []
    dispatch: dict = {}
    for rule in rules:
        if rule.rule_id in disabled:
            continue
        if rule.path_fragments is not None \
                and not ctx.matches(rule.path_fragments):
            continue
        active.append(rule)
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    for rule in active:
        rule.start_file(ctx)
    for node in _walk_document_order(tree):
        for rule in dispatch.get(type(node), ()):
            rule.visit(node, ctx)
    for rule in active:
        rule.finish_file(ctx)
    return ctx.findings


def lint_file(path, *, rules=None,
              profiles: Iterable[RuleProfile] = DEFAULT_PROFILES) -> list:
    """Lint one ``.py`` file and return its findings."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=path, rules=rules, profiles=profiles)


def iter_python_files(paths: Iterable) -> list:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set = set()
    ordered: list = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        elif root.suffix == ".py":
            candidates = [root]
        else:
            raise ValidationError(
                f"lint target {root} is neither a directory nor a .py file"
            )
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                ordered.append(candidate)
    return ordered


def lint_paths(paths: Iterable, *, rules=None,
               profiles: Iterable[RuleProfile] = DEFAULT_PROFILES,
               ) -> LintReport:
    """Lint every ``.py`` file under ``paths``; the CLI's workhorse.

    Rules are instantiated once and reused across files (their
    ``start_file`` hook resets per-file state), so the sweep stays one
    parse + one walk per file.
    """
    rule_objects = make_rules(rules)
    report = LintReport()
    for path in iter_python_files(paths):
        skip, _ = _profile_decision(path, profiles)
        if skip:
            continue
        report.files_checked += 1
        report.findings.extend(
            lint_file(path, rules=rule_objects, profiles=profiles)
        )
    report.findings.sort(key=LintFinding.sort_key)
    return report
