"""The project's invariant rules (RPR001–RPR008).

Each rule encodes one of the contracts the runtime test matrices enforce
the expensive way, so violations surface at commit time instead of as
flaky nondeterminism, corrupted caches or torn result files at service
scale:

* RPR001 — determinism: randomness must flow through seeded
  ``np.random.Generator`` objects, never process-global RNG state.
* RPR002 — copy-on-write: transform paths must not mutate their input
  arrays in place (the prefix cache stores them read-only and shared
  memory will soon map them across processes).
* RPR003 — telemetry: counters live on ``MetricSet`` / the registry, not
  in private dicts (the PR 6 guard, generalized).
* RPR004 — no bare or silent broad excepts: a swallowed error is a wrong
  benchmark number nobody can explain.
* RPR005 — lock discipline: classes that own a ``_lock`` mutate shared
  ``self`` state only while holding it.
* RPR006 — atomic IO: write-mode ``open`` must route through
  ``atomic_write_text`` or an O_APPEND sink, so readers never see torn
  files.
* RPR007 — explicit text encodings: ``open()`` / ``read_text()`` /
  ``write_text()`` without ``encoding=`` depend on the host locale.
* RPR008 — bounded retries: retry/poll loops that sleep must be bounded
  by attempts or a deadline, and retry backoff routes through
  ``repro.engine.faults.RetryPolicy`` rather than ad-hoc ``time.sleep``.
"""

from __future__ import annotations

import ast

from repro.lint.core import FileContext, Rule, register_rule


# ------------------------------------------------------------------ helpers
def _dotted(node: ast.AST) -> list | None:
    """``a.b.c`` as ``["a", "b", "c"]`` when rooted at a plain name."""
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _keyword(call: ast.Call, name: str):
    for kw in call.keywords:
        if kw.arg == name:
            return kw
    return None


def _literal_str(node) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _open_mode(call: ast.Call, mode_position: int) -> str | None:
    """The literal mode string of an ``open``-style call.

    Returns ``"r"`` when no mode is given and ``None`` when the mode is a
    dynamic expression (which the rules conservatively skip).
    """
    kw = _keyword(call, "mode")
    if kw is not None:
        return _literal_str(kw.value)
    if len(call.args) > mode_position:
        return _literal_str(call.args[mode_position])
    return "r"


def _target_names(target: ast.AST):
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _subscript_base_name(node: ast.AST) -> str | None:
    """``x`` for targets like ``x[i]`` / ``x[i:j]`` / ``x[i][j]``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def _scoped_walk(root: ast.AST):
    """Walk ``root``'s body without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ------------------------------------------------------------------- RPR001
@register_rule
class DeterminismRule(Rule):
    """Process-global RNG state breaks bit-for-bit reproducibility."""

    rule_id = "RPR001"
    title = "determinism: no global RNG state"
    rationale = (
        "results must be bit-for-bit reproducible across backends, drivers "
        "and resume; randomness is threaded as seeded np.random.Generator "
        "parameters (see repro.utils.random), never drawn from the "
        "process-global stdlib or numpy RNG"
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    #: numpy.random attributes that construct explicit generator objects
    #: (everything else on the module operates on hidden global state)
    _NP_CONSTRUCTORS = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "RandomState", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    })
    #: the constructors that are nondeterministic when called with no seed
    _SEEDED_CONSTRUCTORS = frozenset({"default_rng", "RandomState"})

    def start_file(self, ctx: FileContext) -> None:
        self._stdlib_modules: set = set()   # names bound to stdlib `random`
        self._stdlib_members: dict = {}     # local name -> `random` member
        self._numpy_modules: set = set()    # names bound to `numpy`
        self._np_random_modules: set = set()  # names bound to `numpy.random`
        self._np_random_members: dict = {}  # local name -> np.random member

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Import):
            self._visit_import(node)
        elif isinstance(node, ast.ImportFrom):
            self._visit_import_from(node)
        else:
            self._visit_call(node, ctx)

    def _visit_import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.partition(".")[0]
            if alias.name == "random":
                self._stdlib_modules.add(bound)
            elif alias.name == "numpy.random" and alias.asname:
                self._np_random_modules.add(alias.asname)
            elif alias.name.partition(".")[0] == "numpy":
                self._numpy_modules.add(bound)

    def _visit_import_from(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            for alias in node.names:
                self._stdlib_members[alias.asname or alias.name] = alias.name
        elif node.module == "numpy" and node.level == 0:
            for alias in node.names:
                if alias.name == "random":
                    self._np_random_modules.add(alias.asname or "random")
        elif node.module == "numpy.random" and node.level == 0:
            for alias in node.names:
                self._np_random_members[alias.asname or alias.name] = \
                    alias.name

    def _classify(self, func: ast.AST):
        """Resolve a call target to ``("stdlib"|"numpy", member)``."""
        if isinstance(func, ast.Name):
            if func.id in self._stdlib_members:
                return "stdlib", self._stdlib_members[func.id]
            if func.id in self._np_random_members:
                return "numpy", self._np_random_members[func.id]
            return None
        parts = _dotted(func)
        if parts is None:
            return None
        if len(parts) == 2 and parts[0] in self._stdlib_modules:
            return "stdlib", parts[1]
        if len(parts) == 2 and parts[0] in self._np_random_modules:
            return "numpy", parts[1]
        if len(parts) == 3 and parts[0] in self._numpy_modules \
                and parts[1] == "random":
            return "numpy", parts[2]
        return None

    def _visit_call(self, node: ast.Call, ctx: FileContext) -> None:
        resolved = self._classify(node.func)
        if resolved is None:
            return
        origin, member = resolved
        argless = not node.args and not node.keywords
        if origin == "stdlib":
            if member == "Random":
                if argless:
                    ctx.report(self, node,
                               "random.Random() without a seed is "
                               "nondeterministic — pass a seed, or use "
                               "repro.utils.random.check_random_state")
            else:
                ctx.report(self, node,
                           f"random.{member}() draws from the process-"
                           "global stdlib RNG — thread a seeded "
                           "np.random.Generator instead (see "
                           "repro.utils.random)")
        else:
            if member in self._NP_CONSTRUCTORS:
                if member in self._SEEDED_CONSTRUCTORS and argless:
                    ctx.report(self, node,
                               f"np.random.{member}() without a seed is "
                               "nondeterministic — derive the generator "
                               "from the run's seed (check_random_state / "
                               "spawn_rng)")
            else:
                ctx.report(self, node,
                           f"np.random.{member}() uses numpy's hidden "
                           "global RNG state — use a seeded "
                           "np.random.Generator threaded as a parameter")


# ------------------------------------------------------------------- RPR002
@register_rule
class CowDisciplineRule(Rule):
    """Transform paths must not mutate their input arrays in place."""

    rule_id = "RPR002"
    title = "copy-on-write: no in-place mutation of transform inputs"
    rationale = (
        "the prefix cache hands transform paths *shared, read-only* "
        "arrays, and the shared-memory data plane will map one copy "
        "across processes; mutating a parameter in place either raises "
        "at runtime (writeable=False) or silently corrupts every later "
        "evaluation that shares the array"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)
    path_fragments = ("repro/preprocessing/", "repro/core/")

    #: ndarray methods that modify the array in place
    _MUTATORS = frozenset({
        "sort", "fill", "partition", "put", "itemset", "resize",
        "setfield", "byteswap",
    })

    def visit(self, node, ctx: FileContext) -> None:
        args = node.args
        params = {a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)}
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                params.add(vararg.arg)
        params -= {"self", "cls"}
        if not params:
            return
        body_nodes = list(_scoped_walk(node))
        rebound: set = set()
        for child in body_nodes:
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    rebound.update(_target_names(target))
            elif isinstance(child, (ast.AnnAssign, ast.NamedExpr)):
                rebound.update(_target_names(child.target))
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                rebound.update(_target_names(child.target))
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        rebound.update(_target_names(item.optional_vars))
        protected = params - rebound
        if not protected:
            return
        for child in body_nodes:
            self._check_node(child, protected, ctx)

    def _check_node(self, node, protected: set, ctx: FileContext) -> None:
        if isinstance(node, ast.AugAssign):
            name = (node.target.id if isinstance(node.target, ast.Name)
                    else _subscript_base_name(node.target))
            if name in protected:
                ctx.report(self, node,
                           f"augmented assignment mutates parameter "
                           f"{name!r} in place — operate on a copy "
                           "(COW discipline)")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                name = _subscript_base_name(target) \
                    if isinstance(target, ast.Subscript) else None
                if name in protected:
                    ctx.report(self, node,
                               f"subscript store mutates parameter "
                               f"{name!r} in place — operate on a copy "
                               "(COW discipline)")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in protected \
                    and func.attr in self._MUTATORS:
                ctx.report(self, node,
                           f"{func.value.id}.{func.attr}() mutates the "
                           "parameter in place — use the copying variant "
                           f"(e.g. np.{func.attr}) or work on a copy")
            out = _keyword(node, "out")
            if out is not None and isinstance(out.value, ast.Name) \
                    and out.value.id in protected:
                ctx.report(self, node,
                           f"out={out.value.id} writes the result into a "
                           "parameter in place — drop out= and bind the "
                           "return value")


# ------------------------------------------------------------------- RPR003
@register_rule
class PrivateCounterRule(Rule):
    """Counters belong on MetricSet / the registry, not in private dicts."""

    rule_id = "RPR003"
    title = "telemetry: no private counter dicts"
    rationale = (
        "PR 6 centralized every counter on repro.telemetry.metrics so "
        "worker deltas merge, snapshots stay consistent and heartbeats "
        "see one source of truth; a private dict counter store is "
        "invisible to all of that"
    )
    node_types = (ast.Assign, ast.AnnAssign)

    _FRAGMENTS = ("counter", "counters")

    @staticmethod
    def _is_dict_valued(node) -> bool:
        return isinstance(node, ast.Dict) or (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "dict"
        )

    def visit(self, node, ctx: FileContext) -> None:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        else:
            if node.value is None:
                return
            targets, value = [node.target], node.value
        if not self._is_dict_valued(value):
            return
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and any(fragment in target.attr.lower()
                            for fragment in self._FRAGMENTS)):
                ctx.report(self, node,
                           f"self.{target.attr} = {{...}} is an ad-hoc "
                           "counter store — use repro.telemetry.metrics."
                           "MetricSet (instance counters) or "
                           "get_registry() (process-wide series)")


# ------------------------------------------------------------------- RPR004
@register_rule
class SilentExceptRule(Rule):
    """Bare excepts and silent broad excepts swallow real failures."""

    rule_id = "RPR004"
    title = "no bare or silent broad excepts"
    rationale = (
        "a swallowed exception in a search or IO path turns into a wrong "
        "benchmark number or a half-written cache nobody can explain; "
        "catch the narrow exception you expect, and make the handler do "
        "something observable"
    )
    node_types = (ast.ExceptHandler,)

    _BROAD = frozenset({"Exception", "BaseException"})

    @classmethod
    def _broad_names(cls, node) -> bool:
        if isinstance(node, ast.Name):
            return node.id in cls._BROAD
        if isinstance(node, ast.Attribute):
            return node.attr in cls._BROAD
        if isinstance(node, ast.Tuple):
            return any(cls._broad_names(element) for element in node.elts)
        return False

    @staticmethod
    def _is_silent(body) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, ast.Constant) \
                    and stmt.value.value is Ellipsis:
                continue
            return False
        return True

    def visit(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if node.type is None:
            ctx.report(self, node,
                       "bare `except:` catches everything including "
                       "KeyboardInterrupt/SystemExit — name the "
                       "exception(s) you expect")
        elif self._broad_names(node.type) and self._is_silent(node.body):
            ctx.report(self, node,
                       "silent broad except swallows every failure — "
                       "catch the specific exception, or handle/log/"
                       "re-raise in the body")


# ------------------------------------------------------------------- RPR005
@register_rule
class LockDisciplineRule(Rule):
    """Classes owning a ``_lock`` mutate shared state only under it."""

    rule_id = "RPR005"
    title = "lock discipline: shared state mutates under self._lock"
    rationale = (
        "the caches and registries shared by thread-backend workers "
        "serialize every mutation behind self._lock; a mutation outside "
        "`with self._lock` is a data race that only shows up as torn "
        "counters or corrupted LRU order under load"
    )
    node_types = (ast.ClassDef,)

    #: construction/teardown/unpickling happen before the object is shared
    _EXEMPT_METHODS = frozenset({
        "__init__", "__new__", "__del__", "__getstate__", "__setstate__",
        "__reduce__", "__copy__", "__deepcopy__", "__init_subclass__",
    })

    @staticmethod
    def _is_self_lock(node) -> bool:
        return (isinstance(node, ast.Attribute) and node.attr == "_lock"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    def _owns_lock(self, methods) -> bool:
        for method in methods:
            for node in _scoped_walk(method):
                if isinstance(node, ast.Assign):
                    if any(self._is_self_lock(target)
                           for target in node.targets):
                        return True
                elif isinstance(node, ast.AnnAssign) \
                        and self._is_self_lock(node.target):
                    return True
        return False

    @classmethod
    def _self_attr_targets(cls, target):
        """Attribute names of ``self.attr`` / ``self.attr[...]`` targets."""
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            yield target.attr
        elif isinstance(target, ast.Subscript):
            yield from cls._self_attr_targets(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from cls._self_attr_targets(element)

    def visit(self, node: ast.ClassDef, ctx: FileContext) -> None:
        methods = [child for child in node.body
                   if isinstance(child, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))]
        if not self._owns_lock(methods):
            return
        for method in methods:
            if method.name in self._EXEMPT_METHODS:
                continue
            self._scan(method.body, False, method.name, ctx)

    def _scan(self, stmts, locked: bool, method: str,
              ctx: FileContext) -> None:
        for stmt in stmts:
            if isinstance(stmt, _SCOPE_NODES):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                now_locked = locked or any(
                    self._is_self_lock(item.context_expr)
                    for item in stmt.items
                )
                self._scan(stmt.body, now_locked, method, ctx)
                continue
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)) \
                    and not locked:
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    for attr in self._self_attr_targets(target):
                        if attr == "_lock":
                            continue
                        ctx.report(self, stmt,
                                   f"{method}() mutates self.{attr} "
                                   "outside `with self._lock` in a "
                                   "lock-owning class — acquire the lock "
                                   "(or mark a deliberately unlocked "
                                   "path with a lint-ignore pragma)")
            for block in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, block, None)
                if nested:
                    self._scan(nested, locked, method, ctx)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    self._scan(handler.body, locked, method, ctx)


# ------------------------------------------------------------------- RPR006
@register_rule
class AtomicWriteRule(Rule):
    """Write-mode opens must route through atomic_write_text / O_APPEND."""

    rule_id = "RPR006"
    title = "atomic IO: no raw write-mode open()"
    rationale = (
        "cache and result roots are read concurrently by other processes "
        "and survive crashes; a raw open(..., 'w') can leave a torn file "
        "that poisons every later load — atomic_write_text (temp file + "
        "os.replace) or an O_APPEND sink never does"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node, mode_position=1)
            label = "open"
        elif isinstance(func, ast.Attribute):
            parts = _dotted(func)
            if parts and parts[0] == "os":
                return  # os.open takes flags; os.fdopen wraps a deliberate fd
            if func.attr == "open":
                mode = _open_mode(node, mode_position=0)
                label = ".open"
            elif func.attr == "write_text":
                mode = "w"
                label = ".write_text"
            else:
                return
        else:
            return
        if mode is None:
            return  # dynamic mode expression: cannot decide statically
        if any(flag in mode for flag in "wx+"):
            ctx.report(self, node,
                       f"non-atomic write ({label} mode {mode!r}) — route "
                       "through repro.io.serialization.atomic_write_text "
                       "or an O_APPEND sink so readers never see a torn "
                       "file")


# ------------------------------------------------------------------- RPR007
@register_rule
class ExplicitEncodingRule(Rule):
    """Text-mode file APIs must pass ``encoding=`` explicitly."""

    rule_id = "RPR007"
    title = "explicit text encodings"
    rationale = (
        "open()/read_text()/write_text() without encoding= use the host "
        "locale, so caches and results written on one machine can fail "
        "to parse on another; every text file the library touches is "
        "UTF-8 by contract"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node, mode_position=1)
            label = "open"
        elif isinstance(func, ast.Attribute):
            parts = _dotted(func)
            if parts and parts[0] == "os":
                if func.attr != "fdopen":
                    return
                mode = _open_mode(node, mode_position=1)
                label = "os.fdopen"
            elif func.attr == "open":
                mode = _open_mode(node, mode_position=0)
                label = ".open"
            elif func.attr in ("read_text", "write_text"):
                # encoding is the first (read_text) / second (write_text)
                # positional parameter of these Path methods
                encoding_position = 0 if func.attr == "read_text" else 1
                if len(node.args) > encoding_position:
                    return
                mode = "r"
                label = f".{func.attr}"
            else:
                return
        else:
            return
        if mode is None or "b" in mode:
            return  # dynamic mode (skip) or binary mode (no encoding)
        if _keyword(node, "encoding") is None:
            ctx.report(self, node,
                       f"{label}() in text mode without encoding= depends "
                       "on the host locale — pass encoding=\"utf-8\"")


# ------------------------------------------------------------------- RPR008
@register_rule
class BoundedRetryRule(Rule):
    """Retry/poll loops must be bounded by attempts or a deadline."""

    rule_id = "RPR008"
    title = "bounded retries: no unbounded sleep loops"
    rationale = (
        "an unbounded retry loop turns one dead worker into a search that "
        "hangs forever with nothing to diagnose; library retry loops are "
        "bounded by attempts or a deadline, and backoff delays route "
        "through repro.engine.faults.RetryPolicy (seeded jitter, capped "
        "sleeps) instead of ad-hoc time.sleep"
    )
    node_types = (ast.Import, ast.ImportFrom, ast.While, ast.ExceptHandler)
    #: library code only: tests and benchmarks may poll at their leisure
    path_fragments = ("repro/",)

    def start_file(self, ctx: FileContext) -> None:
        self._sleep_names: set = set()   # names bound to time.sleep
        self._time_modules: set = set()  # names bound to the time module

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    self._time_modules.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name == "sleep":
                        self._sleep_names.add(alias.asname or "sleep")
        elif isinstance(node, ast.While):
            self._visit_while(node, ctx)
        else:
            self._visit_handler(node, ctx)

    def _is_sleep_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in self._sleep_names
        parts = _dotted(func)
        return (parts is not None and len(parts) == 2
                and parts[0] in self._time_modules and parts[1] == "sleep")

    def _visit_while(self, node: ast.While, ctx: FileContext) -> None:
        # Only constant-true loops (`while True:` / `while 1:`): a real
        # condition is itself the bound.
        test = node.test
        if not (isinstance(test, ast.Constant) and test.value):
            return
        sleeps = False
        exits = False
        for child in _scoped_walk(node):
            if self._is_sleep_call(child):
                sleeps = True
            elif isinstance(child, (ast.Break, ast.Return, ast.Raise)):
                exits = True
        if sleeps and not exits:
            ctx.report(self, node,
                       "`while True` sleep loop with no break/return/raise "
                       "— bound it by attempts or a deadline (see "
                       "repro.engine.faults.RetryPolicy)")

    def _visit_handler(self, node: ast.ExceptHandler,
                       ctx: FileContext) -> None:
        for child in _scoped_walk(node):
            if self._is_sleep_call(child):
                ctx.report(self, child,
                           "ad-hoc retry backoff: time.sleep inside an "
                           "except handler — route the delay through "
                           "repro.engine.faults.RetryPolicy.sleep so it "
                           "stays bounded, capped and seeded")
