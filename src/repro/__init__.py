"""repro — Auto-FP: automated feature preprocessing for tabular data.

A laptop-scale, dependency-light reproduction of "Auto-FP: An Experimental
Study of Automated Feature Preprocessing for Tabular Data" (EDBT 2024).
The package provides:

* the seven scikit-learn-style feature preprocessors (``repro.preprocessing``),
* downstream classifiers — logistic regression, gradient boosting, MLP and
  friends (``repro.models``),
* the Auto-FP problem abstraction: pipelines, search space, evaluator and
  budgets (``repro.core``),
* the 15 search algorithms of the paper (``repro.search``),
* a parallel execution engine with pluggable serial / thread / process
  backends for batch evaluation and experiment-grid fan-out
  (``repro.engine``),
* one serializable runtime-configuration object
  (:class:`~repro.core.context.ExecutionContext`) carrying every
  performance knob, and a resumable search-lifecycle facade
  (:class:`~repro.search.session.SearchSession`) with callbacks,
  interruption and bit-for-bit checkpoint/resume,
* parameter-extended search (``repro.extensions``), the AutoML-context
  comparisons (``repro.automl``), meta-features (``repro.metafeatures``),
  result analysis (``repro.analysis``) and experiment harnesses
  (``repro.experiments``).

Quickstart::

    from repro import AutoFPProblem, make_search_algorithm
    from repro.datasets import load_dataset

    X, y = load_dataset("heart")
    problem = AutoFPProblem.from_arrays(X, y, model="lr")
    result = make_search_algorithm("pbt").search(problem, max_trials=40)
    print(result.best_pipeline.describe(), result.best_accuracy)
"""

from repro.core import (
    AutoFPProblem,
    ExecutionContext,
    Pipeline,
    PipelineEvaluator,
    SearchResult,
    SearchSpace,
    TimeBudget,
    TrialBudget,
    TrialRecord,
)
from repro.engine import ExecutionEngine
from repro.search import SearchSession, make_search_algorithm

__version__ = "1.1.0"

__all__ = [
    "AutoFPProblem",
    "ExecutionContext",
    "ExecutionEngine",
    "SearchSession",
    "Pipeline",
    "PipelineEvaluator",
    "SearchSpace",
    "SearchResult",
    "TrialRecord",
    "TrialBudget",
    "TimeBudget",
    "make_search_algorithm",
    "__version__",
]
