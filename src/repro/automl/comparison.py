"""Auto-FP in an AutoML context (Section 7, Figures 10 and 11).

Three contenders get the same evaluation budget on the same train/valid
split:

* **Auto-FP** — the best-ranked pipeline searcher (PBT by default) over the
  full seven-preprocessor space (optionally the parameter-extended space),
* **TPOT-FP** — genetic programming over TPOT's five preprocessors,
* **HPO** — hyperparameter tuning of the downstream model on raw features.

The paper's finding is that Auto-FP beats TPOT-FP in most cases and is
comparable to (often better than) HPO for LR and MLP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automl.hpo import HPOSearch
from repro.automl.tpot_fp import GeneticProgrammingFP
from repro.core.problem import AutoFPProblem
from repro.core.search_space import SearchSpace
from repro.extensions.param_space import ParameterizedSpace
from repro.models.registry import make_classifier
from repro.search.registry import make_search_algorithm
from repro.utils.log import get_logger

log = get_logger("automl.comparison")

#: capability matrix of the FP modules of popular AutoML tools (Table 8)
AUTOML_FP_CAPABILITIES: dict[str, dict] = {
    "auto_weka": {"n_preprocessors": 0, "pipeline_length": "0", "search": "SMAC"},
    "auto_sklearn": {"n_preprocessors": 5, "pipeline_length": "1", "search": "SMAC"},
    "tpot": {"n_preprocessors": 5, "pipeline_length": "arbitrary", "search": "GP"},
    "auto_fp": {"n_preprocessors": 7, "pipeline_length": "arbitrary", "search": "15 algorithms"},
}


@dataclass
class AutoMLComparison:
    """Accuracies of the three contenders on one dataset/model pair."""

    dataset: str
    model: str
    baseline_accuracy: float
    auto_fp_accuracy: float
    tpot_fp_accuracy: float
    hpo_accuracy: float

    def auto_fp_beats_tpot(self) -> bool:
        return self.auto_fp_accuracy >= self.tpot_fp_accuracy

    def auto_fp_beats_hpo(self) -> bool:
        return self.auto_fp_accuracy >= self.hpo_accuracy

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "model": self.model,
            "baseline": self.baseline_accuracy,
            "auto_fp": self.auto_fp_accuracy,
            "tpot_fp": self.tpot_fp_accuracy,
            "hpo": self.hpo_accuracy,
        }


def compare_automl_context(X, y, model_name: str, *, dataset_name: str = "dataset",
                           max_trials: int = 30, algorithm: str = "pbt",
                           extended_space: ParameterizedSpace | None = None,
                           fast_model: bool = True,
                           random_state: int = 0) -> AutoMLComparison:
    """Run Auto-FP vs TPOT-FP vs HPO on one dataset/model pair.

    Parameters
    ----------
    extended_space:
        When given, Auto-FP searches the One-step expansion of this
        parameter space (Figure 11); otherwise the default seven-preprocessor
        space (Figure 10).
    """
    model = make_classifier(model_name, fast=fast_model)
    problem = AutoFPProblem.from_arrays(
        X, y, model, random_state=random_state,
        name=f"{dataset_name}/{model_name}",
    )
    baseline = problem.baseline_accuracy()
    log.debug("comparison %s: baseline=%.4f, budget=%d trials per contender",
              problem.name, baseline, max_trials)

    # Auto-FP with the leading search algorithm.
    if extended_space is not None:
        space = extended_space.one_step_space()
    else:
        space = SearchSpace()
    auto_fp_problem = AutoFPProblem(evaluator=problem.evaluator, space=space,
                                    name=problem.name)
    auto_fp_result = make_search_algorithm(
        algorithm, random_state=random_state
    ).search(auto_fp_problem, max_trials=max_trials)

    # TPOT-FP: GP over five preprocessors.
    tpot_result = GeneticProgrammingFP(random_state=random_state).search(
        problem, max_trials=max_trials
    )

    # HPO: tune the downstream model on raw features.
    evaluator = problem.evaluator
    hpo_result = HPOSearch(model_name, random_state=random_state).search(
        evaluator.X_train, evaluator.y_train, evaluator.X_valid, evaluator.y_valid,
        max_trials=max_trials,
    )

    log.debug("comparison %s: auto_fp=%.4f tpot_fp=%.4f hpo=%.4f",
              problem.name, auto_fp_result.best_accuracy,
              tpot_result.best_accuracy, hpo_result.best_accuracy)
    return AutoMLComparison(
        dataset=dataset_name,
        model=model_name,
        baseline_accuracy=baseline,
        auto_fp_accuracy=auto_fp_result.best_accuracy,
        tpot_fp_accuracy=tpot_result.best_accuracy,
        hpo_accuracy=hpo_result.best_accuracy,
    )


def summarize_comparisons(comparisons) -> dict:
    """Aggregate win counts across a collection of :class:`AutoMLComparison`."""
    comparisons = list(comparisons)
    return {
        "n": len(comparisons),
        "auto_fp_beats_tpot": sum(c.auto_fp_beats_tpot() for c in comparisons),
        "auto_fp_beats_hpo": sum(c.auto_fp_beats_hpo() for c in comparisons),
        "auto_fp_beats_baseline": sum(
            c.auto_fp_accuracy >= c.baseline_accuracy for c in comparisons
        ),
    }
