"""TPOT-FP stand-in: genetic-programming pipeline search with 5 preprocessors.

The paper compares Auto-FP against the feature-preprocessing module of TPOT,
which (a) supports only five preprocessors and (b) searches with genetic
programming.  This module reproduces both structural properties: the
candidate set excludes PowerTransformer and QuantileTransformer, and the
searcher is a generational GP with tournament selection, single-point
crossover and point mutation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.budget import Budget, TrialBudget
from repro.core.problem import AutoFPProblem
from repro.core.result import SearchResult
from repro.core.search_space import SearchSpace
from repro.preprocessing.registry import default_preprocessors
from repro.utils.log import get_logger
from repro.utils.random import check_random_state

log = get_logger("automl.tpot_fp")

#: the five preprocessors exposed by TPOT's FP module (Table 8)
TPOT_PREPROCESSOR_NAMES: tuple[str, ...] = (
    "binarizer",
    "maxabs_scaler",
    "minmax_scaler",
    "normalizer",
    "standard_scaler",
)


def tpot_search_space(max_length: int = 7) -> SearchSpace:
    """Search space restricted to TPOT's five preprocessors."""
    return SearchSpace(default_preprocessors(TPOT_PREPROCESSOR_NAMES),
                       max_length=max_length)


class GeneticProgrammingFP:
    """Generational genetic programming over preprocessing pipelines.

    Parameters
    ----------
    population_size:
        Number of pipelines per generation.
    tournament_size:
        Tournament size for parent selection.
    crossover_rate / mutation_rate:
        Probability of applying crossover / mutation when producing a child.
    restrict_to_tpot:
        When True (default) the candidate set is TPOT's five preprocessors;
        set to False to run the same GP over the full seven-preprocessor
        space.
    """

    name = "tpot_fp"

    def __init__(self, population_size: int = 8, tournament_size: int = 3,
                 crossover_rate: float = 0.7, mutation_rate: float = 0.4,
                 restrict_to_tpot: bool = True, max_length: int = 7,
                 random_state: int | None = 0) -> None:
        self.population_size = int(population_size)
        self.tournament_size = int(tournament_size)
        self.crossover_rate = float(crossover_rate)
        self.mutation_rate = float(mutation_rate)
        self.restrict_to_tpot = bool(restrict_to_tpot)
        self.max_length = int(max_length)
        self.random_state = random_state

    def search(self, problem: AutoFPProblem, budget: Budget | None = None,
               *, max_trials: int = 40) -> SearchResult:
        """Run the GP search and return a :class:`SearchResult`."""
        budget = budget or TrialBudget(max_trials)
        rng = check_random_state(self.random_state)
        space = (
            tpot_search_space(self.max_length)
            if self.restrict_to_tpot
            else SearchSpace(max_length=self.max_length)
        )
        evaluator = problem.evaluator
        result = SearchResult(algorithm=self.name)

        def evaluate(pipeline, pick_time, iteration):
            record = evaluator.evaluate(pipeline, pick_time=pick_time,
                                        iteration=iteration)
            result.add(record)
            budget.consume(1.0)
            return record.accuracy

        # Generation 0: random individuals.
        population = space.sample_pipelines(self.population_size, rng)
        fitness = []
        for pipeline in population:
            if budget.exhausted():
                break
            fitness.append(evaluate(pipeline, 0.0, 0))
        population = population[: len(fitness)]

        generation = 0
        while not budget.exhausted() and population:
            generation += 1
            pick_start = time.perf_counter()
            children = []
            while len(children) < self.population_size:
                parent_a = self._select(population, fitness, rng)
                parent_b = self._select(population, fitness, rng)
                child = parent_a
                if rng.random() < self.crossover_rate:
                    child = space.crossover(parent_a, parent_b, rng)
                if rng.random() < self.mutation_rate:
                    child = space.mutate(child, rng)
                children.append(child)
            pick_time = (time.perf_counter() - pick_start) / max(1, len(children))

            child_fitness = []
            for child in children:
                if budget.exhausted():
                    break
                child_fitness.append(evaluate(child, pick_time, generation))
            children = children[: len(child_fitness)]

            # Elitist survival: best population_size individuals overall.
            combined = list(zip(population + children, fitness + child_fitness))
            combined.sort(key=lambda pair: pair[1], reverse=True)
            combined = combined[: self.population_size]
            population = [pipeline for pipeline, _ in combined]
            fitness = [score for _, score in combined]
            log.debug("generation %d: %d trials so far, best=%.4f",
                      generation, len(result), max(fitness))

        return result

    def _select(self, population, fitness, rng: np.random.Generator):
        size = min(self.tournament_size, len(population))
        indices = rng.choice(len(population), size=size, replace=False)
        best = max(indices, key=lambda i: fitness[int(i)])
        return population[int(best)]
