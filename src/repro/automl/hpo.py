"""HPO module: hyperparameter tuning of the downstream model (no preprocessing).

Section 7.2 of the paper compares Auto-FP against the HPO module of an
AutoML system: both get the same budget, but HPO tunes the downstream
model's hyperparameters on the raw (unpreprocessed) features.  The
hyperparameter grids below mirror the knobs the original libraries expose
for LR, XGBoost and the MLP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.budget import Budget, TrialBudget
from repro.exceptions import UnknownComponentError
from repro.models.metrics import accuracy_score
from repro.models.registry import make_classifier
from repro.utils.random import check_random_state
from repro.utils.validation import check_X_y

#: hyperparameter grids per downstream model
HPO_GRIDS: dict[str, dict[str, tuple]] = {
    "lr": {
        "C": (0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0),
        "max_iter": (40, 80, 160),
        "learning_rate": (0.1, 0.5, 1.0),
    },
    "xgb": {
        "n_estimators": (5, 10, 20, 40),
        "max_depth": (2, 3, 4, 6),
        "learning_rate": (0.05, 0.1, 0.3, 0.5),
        "subsample": (0.6, 0.8, 1.0),
    },
    "mlp": {
        "hidden_layer_sizes": ((8,), (16,), (32,), (16, 16)),
        "learning_rate": (1e-3, 5e-3, 1e-2, 5e-2),
        "alpha": (1e-5, 1e-4, 1e-3),
        "max_iter": (15, 25, 50),
    },
}


@dataclass
class HPOTrial:
    """One hyperparameter configuration and its validation accuracy."""

    params: dict
    accuracy: float
    train_time: float = 0.0


@dataclass
class HPOResult:
    """All trials of one HPO run."""

    model_name: str
    trials: list[HPOTrial] = field(default_factory=list)

    @property
    def best_trial(self) -> HPOTrial:
        if not self.trials:
            from repro.exceptions import ValidationError

            raise ValidationError("HPO produced no trials")
        return max(self.trials, key=lambda t: t.accuracy)

    @property
    def best_accuracy(self) -> float:
        return self.best_trial.accuracy

    @property
    def best_params(self) -> dict:
        return self.best_trial.params

    def __len__(self) -> int:
        return len(self.trials)


class HPOSearch:
    """Random-search hyperparameter optimisation of a downstream model.

    Parameters
    ----------
    model_name:
        ``"lr"``, ``"xgb"`` or ``"mlp"``.
    grid:
        Optional custom grid; defaults to :data:`HPO_GRIDS`.
    """

    def __init__(self, model_name: str, grid: dict | None = None,
                 random_state: int | None = 0) -> None:
        if grid is None and model_name not in HPO_GRIDS:
            raise UnknownComponentError(
                f"No HPO grid for model {model_name!r}; known: {sorted(HPO_GRIDS)}"
            )
        self.model_name = model_name
        self.grid = grid if grid is not None else HPO_GRIDS[model_name]
        self.random_state = random_state

    def sample_params(self, rng: np.random.Generator) -> dict:
        """Sample one configuration uniformly from the grid."""
        params = {}
        for name, values in self.grid.items():
            values = tuple(values)
            params[name] = values[int(rng.integers(0, len(values)))]
        return params

    def search(self, X_train, y_train, X_valid, y_valid,
               budget: Budget | None = None, *, max_trials: int = 40) -> HPOResult:
        """Tune the model on the given split (raw features, no preprocessing)."""
        X_train, y_train = check_X_y(X_train, y_train)
        X_valid, y_valid = check_X_y(X_valid, y_valid)
        budget = budget or TrialBudget(max_trials)
        rng = check_random_state(self.random_state)
        result = HPOResult(model_name=self.model_name)
        seen: set[tuple] = set()

        while not budget.exhausted():
            params = self.sample_params(rng)
            key = tuple(sorted((k, str(v)) for k, v in params.items()))
            if key in seen and len(seen) < self._grid_size():
                continue
            seen.add(key)
            start = time.perf_counter()
            model = make_classifier(self.model_name, **params)
            model.fit(X_train, y_train)
            accuracy = accuracy_score(y_valid, model.predict(X_valid))
            elapsed = time.perf_counter() - start
            result.trials.append(HPOTrial(params=params, accuracy=accuracy,
                                          train_time=elapsed))
            budget.consume(1.0)
        return result

    def _grid_size(self) -> int:
        size = 1
        for values in self.grid.values():
            size *= len(tuple(values))
        return size
