"""Auto-FP in an AutoML context: TPOT-FP stand-in, HPO module, comparison."""

from repro.automl.comparison import (
    AUTOML_FP_CAPABILITIES,
    AutoMLComparison,
    compare_automl_context,
    summarize_comparisons,
)
from repro.automl.hpo import HPO_GRIDS, HPOResult, HPOSearch, HPOTrial
from repro.automl.tpot_fp import (
    TPOT_PREPROCESSOR_NAMES,
    GeneticProgrammingFP,
    tpot_search_space,
)

__all__ = [
    "GeneticProgrammingFP",
    "tpot_search_space",
    "TPOT_PREPROCESSOR_NAMES",
    "HPOSearch",
    "HPOResult",
    "HPOTrial",
    "HPO_GRIDS",
    "AutoMLComparison",
    "compare_automl_context",
    "summarize_comparisons",
    "AUTOML_FP_CAPABILITIES",
]
