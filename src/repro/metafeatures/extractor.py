"""Combine all meta-feature groups into one 40-feature vector per dataset.

The meta-features drive the paper's Table 1 analysis: is there any simple
data-characteristic rule (learnable by a shallow decision tree) that
predicts whether feature preprocessing will improve the downstream model?
"""

from __future__ import annotations

import numpy as np

from repro.metafeatures.landmarking import landmarking_metafeatures
from repro.metafeatures.simple import simple_metafeatures
from repro.metafeatures.statistical import statistical_metafeatures

#: canonical ordering of the 40 meta-features (Table 10 of the paper)
METAFEATURE_NAMES: tuple[str, ...] = (
    # Simple (18)
    "NumberOfMissingValues",
    "PercentageOfMissingValues",
    "NumberOfFeaturesWithMissingValues",
    "PercentageOfFeaturesWithMissingValues",
    "NumberOfInstancesWithMissingValues",
    "PercentageOfInstancesWithMissingValues",
    "NumberOfFeatures",
    "LogNumberOfFeatures",
    "NumberOfClasses",
    "DatasetRatio",
    "LogDatasetRatio",
    "InverseDatasetRatio",
    "LogInverseDatasetRatio",
    "SymbolsSum",
    "SymbolsSTD",
    "SymbolsMean",
    "SymbolsMax",
    "SymbolsMin",
    # Statistical (15) + information-theoretic (1)
    "SkewnessSTD",
    "SkewnessMean",
    "SkewnessMax",
    "SkewnessMin",
    "KurtosisSTD",
    "KurtosisMean",
    "KurtosisMax",
    "KurtosisMin",
    "ClassProbabilitySTD",
    "ClassProbabilityMean",
    "ClassProbabilityMax",
    "ClassProbabilityMin",
    "PCASkewnessFirstPC",
    "PCAKurtosisFirstPC",
    "PCAFractionOfComponentsFor95PercentVariance",
    "ClassEntropy",
    # Landmarking (6)
    "Landmark1NN",
    "LandmarkRandomNodeLearner",
    "LandmarkDecisionNodeLearner",
    "LandmarkDecisionTree",
    "LandmarkNaiveBayes",
    "LandmarkLDA",
)


def compute_metafeatures(X, y, *, include_landmarks: bool = True,
                         random_state=0) -> dict[str, float]:
    """Compute all meta-features of a dataset as a name -> value mapping.

    Parameters
    ----------
    include_landmarks:
        Landmarking features train small models and therefore dominate the
        runtime; callers that only need the cheap features can disable them
        (they are filled with 0.0 so the vector layout is unchanged).
    """
    features: dict[str, float] = {}
    features.update(simple_metafeatures(X, y))
    features.update(statistical_metafeatures(X, y))
    if include_landmarks:
        features.update(landmarking_metafeatures(X, y, random_state=random_state))
    else:
        for name in METAFEATURE_NAMES[-6:]:
            features[name] = 0.0
    return features


def metafeature_vector(X, y, *, include_landmarks: bool = True,
                       random_state=0) -> np.ndarray:
    """Compute meta-features and return them as a vector in canonical order."""
    features = compute_metafeatures(
        X, y, include_landmarks=include_landmarks, random_state=random_state
    )
    return np.asarray([features[name] for name in METAFEATURE_NAMES])


def metafeature_matrix(datasets, *, include_landmarks: bool = True,
                       random_state=0) -> np.ndarray:
    """Stack meta-feature vectors of ``[(X, y), ...]`` into a design matrix."""
    return np.stack([
        metafeature_vector(X, y, include_landmarks=include_landmarks,
                           random_state=random_state)
        for X, y in datasets
    ])
