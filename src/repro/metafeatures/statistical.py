"""Statistical and information-theoretic meta-features (Table 10)."""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.utils.validation import check_X_y


def _safe_stats(values: np.ndarray) -> dict[str, float]:
    if values.size == 0:
        return {"std": 0.0, "mean": 0.0, "max": 0.0, "min": 0.0}
    return {
        "std": float(np.std(values)),
        "mean": float(np.mean(values)),
        "max": float(np.max(values)),
        "min": float(np.min(values)),
    }


def statistical_metafeatures(X, y) -> dict[str, float]:
    """Skewness / kurtosis / class-probability / PCA meta-features."""
    X, y = check_X_y(X, y)
    n_samples, n_features = X.shape

    skews = np.array([stats.skew(X[:, j]) for j in range(n_features)])
    kurts = np.array([stats.kurtosis(X[:, j]) for j in range(n_features)])
    skews = np.nan_to_num(skews)
    kurts = np.nan_to_num(kurts)

    _, counts = np.unique(y, return_counts=True)
    class_probs = counts / n_samples

    skew_stats = _safe_stats(skews)
    kurt_stats = _safe_stats(kurts)
    prob_stats = _safe_stats(class_probs)

    # PCA meta-features: first principal component and 95%-variance fraction.
    centered = X - X.mean(axis=0)
    scale = centered.std(axis=0)
    scale[scale == 0] = 1.0
    standardized = centered / scale
    try:
        _, singular_values, v_transpose = np.linalg.svd(standardized, full_matrices=False)
        first_pc = standardized @ v_transpose[0]
        explained = singular_values ** 2
        explained = explained / explained.sum() if explained.sum() > 0 else explained
        cumulative = np.cumsum(explained)
        n_for_95 = int(np.searchsorted(cumulative, 0.95) + 1)
        pca_skew = float(np.nan_to_num(stats.skew(first_pc)))
        pca_kurt = float(np.nan_to_num(stats.kurtosis(first_pc)))
        pca_fraction = n_for_95 / n_features
    except np.linalg.LinAlgError:
        pca_skew, pca_kurt, pca_fraction = 0.0, 0.0, 1.0

    class_entropy = float(stats.entropy(class_probs, base=2))

    return {
        "SkewnessSTD": skew_stats["std"],
        "SkewnessMean": skew_stats["mean"],
        "SkewnessMax": skew_stats["max"],
        "SkewnessMin": skew_stats["min"],
        "KurtosisSTD": kurt_stats["std"],
        "KurtosisMean": kurt_stats["mean"],
        "KurtosisMax": kurt_stats["max"],
        "KurtosisMin": kurt_stats["min"],
        "ClassProbabilitySTD": prob_stats["std"],
        "ClassProbabilityMean": prob_stats["mean"],
        "ClassProbabilityMax": prob_stats["max"],
        "ClassProbabilityMin": prob_stats["min"],
        "PCASkewnessFirstPC": pca_skew,
        "PCAKurtosisFirstPC": pca_kurt,
        "PCAFractionOfComponentsFor95PercentVariance": float(pca_fraction),
        "ClassEntropy": class_entropy,
    }
