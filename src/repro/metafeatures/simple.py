"""Simple meta-features: counts, ratios and symbol statistics (Table 10)."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_X_y


def simple_metafeatures(X, y) -> dict[str, float]:
    """Compute the "Simple" group of auto-sklearn meta-features.

    The synthetic datasets never contain missing values, so the
    missing-value features are computed faithfully (they evaluate to zero)
    rather than omitted, keeping the 40-feature layout of the paper.
    """
    X, y = check_X_y(X, y, allow_nan=True)
    n_samples, n_features = X.shape
    missing_mask = ~np.isfinite(X)
    n_missing = int(missing_mask.sum())
    features_with_missing = int(missing_mask.any(axis=0).sum())
    instances_with_missing = int(missing_mask.any(axis=1).sum())

    unique_per_feature = np.array([
        np.unique(X[np.isfinite(X[:, j]), j]).shape[0] for j in range(n_features)
    ], dtype=np.float64)

    n_classes = np.unique(y).shape[0]
    dataset_ratio = n_features / n_samples

    return {
        "NumberOfMissingValues": float(n_missing),
        "PercentageOfMissingValues": float(n_missing / X.size),
        "NumberOfFeaturesWithMissingValues": float(features_with_missing),
        "PercentageOfFeaturesWithMissingValues": float(features_with_missing / n_features),
        "NumberOfInstancesWithMissingValues": float(instances_with_missing),
        "PercentageOfInstancesWithMissingValues": float(instances_with_missing / n_samples),
        "NumberOfFeatures": float(n_features),
        "LogNumberOfFeatures": float(np.log(n_features)),
        "NumberOfClasses": float(n_classes),
        "DatasetRatio": float(dataset_ratio),
        "LogDatasetRatio": float(np.log(dataset_ratio)),
        "InverseDatasetRatio": float(1.0 / dataset_ratio),
        "LogInverseDatasetRatio": float(np.log(1.0 / dataset_ratio)),
        "SymbolsSum": float(unique_per_feature.sum()),
        "SymbolsSTD": float(unique_per_feature.std()),
        "SymbolsMean": float(unique_per_feature.mean()),
        "SymbolsMax": float(unique_per_feature.max()),
        "SymbolsMin": float(unique_per_feature.min()),
    }
