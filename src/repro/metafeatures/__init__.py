"""Auto-sklearn-style meta-features (Table 10 of the paper)."""

from repro.metafeatures.extractor import (
    METAFEATURE_NAMES,
    compute_metafeatures,
    metafeature_matrix,
    metafeature_vector,
)
from repro.metafeatures.landmarking import landmarking_metafeatures
from repro.metafeatures.simple import simple_metafeatures
from repro.metafeatures.statistical import statistical_metafeatures

__all__ = [
    "METAFEATURE_NAMES",
    "compute_metafeatures",
    "metafeature_vector",
    "metafeature_matrix",
    "simple_metafeatures",
    "statistical_metafeatures",
    "landmarking_metafeatures",
]
