"""Landmarking meta-features: cross-validated scores of cheap reference models."""

from __future__ import annotations

import numpy as np

from repro.models.linear import LinearDiscriminantAnalysis
from repro.models.metrics import cross_val_score
from repro.models.neighbors import GaussianNB, KNeighborsClassifier
from repro.models.tree import DecisionTreeClassifier
from repro.utils.random import check_random_state
from repro.utils.validation import check_X_y


def _cv_accuracy(model, X, y, cv: int, random_state) -> float:
    try:
        scores = cross_val_score(model, X, y, cv=cv, random_state=random_state)
        return float(scores.mean())
    except Exception:
        # Degenerate folds (e.g. a class with a single member) fall back to
        # the majority-class rate, the weakest possible landmark.
        _, counts = np.unique(y, return_counts=True)
        return float(counts.max() / y.shape[0])


def landmarking_metafeatures(X, y, *, cv: int = 5, random_state=0) -> dict[str, float]:
    """The six auto-sklearn landmarking meta-features (Table 10).

    Each landmark is the cross-validated accuracy of a small reference model;
    the paper uses 5-fold CV, which is also the default here (reduced
    automatically when the smallest class has fewer members).
    """
    X, y = check_X_y(X, y)
    rng = check_random_state(random_state)
    _, counts = np.unique(y, return_counts=True)
    cv = int(min(cv, max(2, counts.min())))

    random_feature = int(rng.integers(0, X.shape[1]))

    landmarks = {
        "Landmark1NN": _cv_accuracy(KNeighborsClassifier(n_neighbors=1), X, y, cv, random_state),
        "LandmarkRandomNodeLearner": _cv_accuracy(
            DecisionTreeClassifier(max_depth=1),
            X[:, [random_feature]], y, cv, random_state,
        ),
        "LandmarkDecisionNodeLearner": _cv_accuracy(
            DecisionTreeClassifier(max_depth=1), X, y, cv, random_state
        ),
        "LandmarkDecisionTree": _cv_accuracy(
            DecisionTreeClassifier(max_depth=None), X, y, cv, random_state
        ),
        "LandmarkNaiveBayes": _cv_accuracy(GaussianNB(), X, y, cv, random_state),
        "LandmarkLDA": _cv_accuracy(LinearDiscriminantAnalysis(), X, y, cv, random_state),
    }
    return landmarks
