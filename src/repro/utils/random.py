"""Random-number-generator helpers.

Everything in the library that involves randomness accepts a ``random_state``
argument which may be ``None``, an integer seed or a ``numpy.random.Generator``.
These helpers normalise that argument so callers never have to branch on the
type themselves.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def check_random_state(random_state=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    random_state:
        ``None`` (fresh non-deterministic generator), an integer seed, or an
        existing ``numpy.random.Generator`` (returned unchanged).
    """
    if random_state is None:
        # The designated construction site for "no seed requested":
        # callers asked for fresh entropy explicitly by passing None.
        return np.random.default_rng()  # repro: lint-ignore[RPR001]
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    if isinstance(random_state, np.random.Generator):
        return random_state
    raise ValidationError(
        "random_state must be None, an int or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rng(rng: np.random.Generator, n: int = 1):
    """Spawn ``n`` statistically independent child generators from ``rng``.

    Used to give parallel components (e.g. the members of a population or
    the brackets of Hyperband) independent randomness that is still fully
    determined by the parent seed.
    """
    seeds = rng.integers(0, 2**32 - 1, size=n)
    children = [np.random.default_rng(int(seed)) for seed in seeds]
    return children if n != 1 else children[0]
