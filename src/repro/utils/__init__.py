"""Shared utilities: validation helpers, RNG handling, logging."""

from repro.utils.log import get_logger
from repro.utils.random import check_random_state, spawn_rng
from repro.utils.validation import (
    check_array,
    check_X_y,
    check_is_fitted,
    column_or_1d,
)

__all__ = [
    "check_random_state",
    "spawn_rng",
    "check_array",
    "check_X_y",
    "check_is_fitted",
    "column_or_1d",
    "get_logger",
]
