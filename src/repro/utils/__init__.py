"""Shared utilities: validation helpers, RNG handling and reproducibility."""

from repro.utils.random import check_random_state, spawn_rng
from repro.utils.validation import (
    check_array,
    check_X_y,
    check_is_fitted,
    column_or_1d,
)

__all__ = [
    "check_random_state",
    "spawn_rng",
    "check_array",
    "check_X_y",
    "check_is_fitted",
    "column_or_1d",
]
