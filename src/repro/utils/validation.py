"""Input validation helpers shared by preprocessors, models and searchers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError


def check_array(X, *, allow_nan: bool = False, min_rows: int = 1,
                dtype=np.float64, name: str = "X") -> np.ndarray:
    """Validate and convert ``X`` to a 2-D float array.

    Parameters
    ----------
    X:
        Array-like of shape ``(n_samples, n_features)``.
    allow_nan:
        Whether NaN values are permitted.
    min_rows:
        Minimum number of rows required.
    dtype:
        Target dtype for the returned array.
    name:
        Name used in error messages.
    """
    arr = np.asarray(X, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.shape[0] < min_rows:
        raise ValidationError(
            f"{name} must have at least {min_rows} row(s), got {arr.shape[0]}"
        )
    if arr.shape[1] < 1:
        raise ValidationError(f"{name} must have at least one column")
    if not allow_nan and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def column_or_1d(y, *, name: str = "y") -> np.ndarray:
    """Validate that ``y`` is a 1-D label vector and return it as an array."""
    arr = np.asarray(y)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got ndim={arr.ndim}")
    return arr


def check_X_y(X, y, *, allow_nan: bool = False):
    """Validate a feature matrix and its label vector jointly."""
    X = check_array(X, allow_nan=allow_nan)
    y = column_or_1d(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError(
            f"X and y have inconsistent lengths: {X.shape[0]} != {y.shape[0]}"
        )
    return X, y


def check_is_fitted(estimator, attributes) -> None:
    """Raise :class:`NotFittedError` unless all ``attributes`` exist on ``estimator``.

    Parameters
    ----------
    estimator:
        Any object following the fit/transform or fit/predict protocol.
    attributes:
        A single attribute name or an iterable of names that ``fit`` sets.
    """
    if isinstance(attributes, str):
        attributes = [attributes]
    missing = [a for a in attributes if not hasattr(estimator, a)]
    if missing:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; "
            f"missing attributes: {missing}. Call fit() first."
        )
