"""Structured logging baseline: library loggers without import side effects.

Library code must never call ``logging.basicConfig`` (that belongs to the
application embedding it), yet unconfigured loggers print Python's
"No handlers could be found" noise.  :func:`get_logger` threads that
needle the stdlib-recommended way: every repro logger hangs off one
``"repro"`` root carrying a :class:`logging.NullHandler`, so the library
stays silent until the consumer attaches real handlers — and the
``REPRO_LOG_LEVEL`` environment variable (``DEBUG``/``INFO``/...) sets
the root level for quick field diagnostics without touching code.
"""

from __future__ import annotations

import logging
import os

_ROOT_NAME = "repro"
_configured = False


def _configure_root() -> logging.Logger:
    """Attach the NullHandler and the env-var level to the repro root once."""
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if not _configured:
        if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
            root.addHandler(logging.NullHandler())
        level = os.environ.get("REPRO_LOG_LEVEL", "").strip().upper()
        if level:
            try:
                root.setLevel(level)
            except ValueError:
                pass  # a bad env value must not break library import paths
        _configured = True
    return root


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``).

    Pass a module-ish suffix (``"search.session"``) or a full
    ``repro.*`` name; either way the logger propagates to the ``repro``
    root configured by :func:`_configure_root`, so one handler/level
    choice by the embedding application governs the whole library.
    """
    _configure_root()
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
