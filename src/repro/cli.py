"""Command-line interface: ``python -m repro <command> ...``.

The CLI wraps the most common library workflows so the benchmark can be
driven without writing Python:

* ``python -m repro datasets`` — list the 45-dataset registry (plus the
  recommendation and text extensions),
* ``python -m repro preprocessors`` — list the default and extension
  preprocessors,
* ``python -m repro algorithms`` — list the 15 search algorithms (Table 3)
  and the extension searchers,
* ``python -m repro search`` — run one search on one dataset/model and
  optionally save the result as JSON,
* ``python -m repro compare`` — run several algorithms on one dataset under
  an equal budget and print their ranking,
* ``python -m repro experiment`` — run a (dataset x model x algorithm)
  grid, optionally fanned out across parallel workers,
* ``python -m repro evalcache`` — inspect (``stats``) or prune/compact
  (``prune --keep-fingerprints N``) a persistent evaluation-cache root,
* ``python -m repro metafeatures`` — print the 40 meta-features of a dataset,
* ``python -m repro trace`` — summarize (``summary``, the paper's Table-5
  per-phase breakdown) or export (``export --chrome``) the telemetry trace
  a ``--telemetry trace --telemetry-dir DIR`` run wrote,
* ``python -m repro lint`` — run the AST contract checks (determinism,
  copy-on-write, telemetry counters, atomic IO, ... — the ``RPRxxx``
  rules, see ``repro lint --list-rules``) over source trees; ``--json``
  emits the machine-readable report CI archives,
* ``python -m repro worker`` — run one distributed-execution worker
  daemon: it registers with a ``--backend remote`` search's coordinator,
  leases evaluations, heartbeats, and shares the persistent eval cache
  (point ``--cache-dir`` at shared storage for cross-machine dedup),
* ``python -m repro serve`` — run the search-as-a-service HTTP server
  (:mod:`repro.serve`): concurrent sessions over one shared engine and
  cache root, per-tenant trial quotas, durable per-session checkpoints
  (restarting on the same ``--state-dir`` resumes every in-flight
  session bit-for-bit),
* ``python -m repro submit`` / ``status`` / ``events`` — thin clients for
  a running server: submit a search, inspect sessions, stream trial
  events (``--follow`` long-polls until the session finishes).

Runtime configuration resolves into one
:class:`~repro.core.context.ExecutionContext` per invocation, layered as
``REPRO_*`` environment variables < ``--context FILE`` (a JSON document of
context fields) < explicit flags.  ``search``, ``compare`` and
``experiment`` accept ``--n-jobs`` and ``--backend`` (serial / thread /
process) to run evaluation batches or the experiment grid in parallel;
results are identical for every worker count.  ``search`` and
``experiment`` additionally accept ``--async`` for completion-driven
scheduling (the algorithm proposes while earlier evaluations are still in
flight — pair with ``--algorithm asha``), ``--cache-dir`` to persist every
pipeline evaluation across runs (bit-for-bit identical results, zero
re-training on repeats) and ``--prefix-cache-mb`` to reuse fitted pipeline
*prefixes* within a run (identical results, bounded memory).

Long searches are resumable: ``repro search --checkpoint run.checkpoint``
snapshots the session every ``--checkpoint-every`` trials, and
``--resume`` continues a killed run from that file — bit-for-bit identical
to a run that was never interrupted (see
:class:`~repro.search.session.SearchSession`).

Every command writes plain text to stdout and returns a process exit code,
so the CLI composes with shell pipelines and CI jobs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auto-FP (EDBT 2024) reproduction — automated feature preprocessing.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser(
        "datasets", help="list the benchmark dataset registry")
    datasets.add_argument("--kind", choices=("tabular", "ctr", "text"),
                          default="tabular",
                          help="which registry to list (default: tabular)")

    subparsers.add_parser("preprocessors", help="list feature preprocessors")

    algorithms = subparsers.add_parser(
        "algorithms", help="list search algorithms and their taxonomy")
    algorithms.add_argument("--category", default=None,
                            help="only show algorithms of this category")

    def add_parallel_options(command, what: str) -> None:
        from repro.engine import BACKEND_NAMES

        command.add_argument("--context", default=None, metavar="FILE",
                             help="JSON file of ExecutionContext fields "
                                  "(backend, n_jobs, cache_dir, ...); "
                                  "explicit flags override it, REPRO_* "
                                  "environment variables fill the gaps")
        command.add_argument("--n-jobs", type=int, default=None,
                             help=f"parallel workers for {what} "
                                  "(-1 = all cores, default 1 = serial)")
        command.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                             help="execution backend (default: process when "
                                  "--n-jobs asks for parallelism)")
        command.add_argument("--remote-coordinator", default=None,
                             metavar="HOST:PORT",
                             help="with --backend remote: the address the "
                                  "coordinator binds and workers dial "
                                  "(default 127.0.0.1:0, an ephemeral "
                                  "loopback port printed at startup)")
        command.add_argument("--worker-timeout", type=float, default=None,
                             metavar="S",
                             help="with --backend remote: seconds without a "
                                  "heartbeat before a worker is declared "
                                  "dead (default 10)")

    def add_async_option(command) -> None:
        command.add_argument("--async", dest="async_mode", action="store_true",
                             help="completion-driven search scheduling: keep "
                                  "--n-jobs evaluations in flight and propose "
                                  "while earlier ones still run (identical "
                                  "results when evaluation is serial)")

    def add_cache_option(command) -> None:
        command.add_argument("--cache-dir", default=None,
                             help="directory for the persistent cross-run "
                                  "evaluation cache (default: no persistence)")

    def add_prefix_cache_option(command) -> None:
        command.add_argument("--prefix-cache-mb", type=float, default=None,
                             metavar="MB",
                             help="byte budget (in MiB) for the in-memory "
                                  "prefix-transform cache: pipelines sharing "
                                  "a step prefix only pay Prep for their "
                                  "uncached suffix, with identical results "
                                  "(default: no prefix reuse)")

    def add_telemetry_options(command) -> None:
        from repro.telemetry import TELEMETRY_MODES

        command.add_argument("--telemetry", choices=TELEMETRY_MODES,
                             default=None,
                             help="observability level: counters (metrics "
                                  "snapshots + heartbeat) or trace (adds "
                                  "per-phase span events; needs "
                                  "--telemetry-dir). never changes results "
                                  "(default: off)")
        command.add_argument("--telemetry-dir", default=None, metavar="DIR",
                             help="directory for telemetry artifacts "
                                  "(trace.jsonl, heartbeat.json)")

    search = subparsers.add_parser("search", help="run one Auto-FP search")
    search.add_argument("--dataset", default=None,
                        help="registry dataset name (required unless "
                             "--resume, which reads it from the checkpoint)")
    search.add_argument("--model", default="lr", help="downstream model (lr/xgb/mlp/...)")
    search.add_argument("--algorithm", default="pbt", help="search algorithm name")
    search.add_argument("--max-trials", type=int, default=40,
                        help="evaluation budget (default 40)")
    search.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (default 1.0)")
    search.add_argument("--seed", type=int, default=0, help="random seed")
    search.add_argument("--output", default=None,
                        help="optional path for the JSON result")
    search.add_argument("--checkpoint", default=None, metavar="FILE",
                        help="session checkpoint file: the run snapshots "
                             "itself every --checkpoint-every trials, so a "
                             "killed search can continue with --resume")
    search.add_argument("--checkpoint-every", type=int, default=10,
                        metavar="N",
                        help="trials between automatic checkpoints "
                             "(default 10; needs --checkpoint)")
    search.add_argument("--resume", action="store_true",
                        help="continue the run saved in --checkpoint "
                             "(bit-for-bit identical to an uninterrupted "
                             "run); dataset/model/seed, the execution "
                             "context and the remaining budget all come "
                             "from the checkpoint — runtime flags are "
                             "ignored")
    add_parallel_options(search, "evaluation batches")
    add_async_option(search)
    add_cache_option(search)
    add_prefix_cache_option(search)
    add_telemetry_options(search)

    compare = subparsers.add_parser(
        "compare", help="compare several algorithms on one dataset")
    compare.add_argument("--dataset", required=True, help="registry dataset name")
    compare.add_argument("--model", default="lr", help="downstream model")
    compare.add_argument("--algorithms", nargs="+",
                         default=["rs", "pbt", "tevo_h", "tpe"],
                         help="algorithms to compare (default: rs pbt tevo_h tpe)")
    compare.add_argument("--max-trials", type=int, default=30,
                         help="evaluation budget per algorithm (default 30)")
    compare.add_argument("--scale", type=float, default=1.0,
                         help="dataset scale factor (default 1.0)")
    compare.add_argument("--seed", type=int, default=0, help="random seed")
    add_parallel_options(compare, "evaluation batches")

    experiment = subparsers.add_parser(
        "experiment",
        help="run a (dataset x model x algorithm) grid, optionally in parallel")
    experiment.add_argument("--datasets", nargs="+", required=True,
                            help="registry dataset names")
    experiment.add_argument("--models", nargs="+", default=["lr"],
                            help="downstream models (default: lr)")
    experiment.add_argument("--algorithms", nargs="+",
                            default=["rs", "pbt", "tevo_h"],
                            help="search algorithms (default: rs pbt tevo_h)")
    experiment.add_argument("--max-trials", type=int, default=15,
                            help="evaluation budget per run (default 15)")
    experiment.add_argument("--repeats", type=int, default=1,
                            help="independent repetitions per cell (default 1)")
    experiment.add_argument("--scale", type=float, default=1.0,
                            help="dataset scale factor (default 1.0)")
    experiment.add_argument("--seed", type=int, default=0, help="base random seed")
    add_parallel_options(experiment, "the grid fan-out")
    add_async_option(experiment)
    add_cache_option(experiment)
    add_prefix_cache_option(experiment)
    add_telemetry_options(experiment)

    evalcache = subparsers.add_parser(
        "evalcache",
        help="inspect or prune a persistent evaluation-cache root")
    evalcache_actions = evalcache.add_subparsers(dest="action", required=True)
    evalcache_stats = evalcache_actions.add_parser(
        "stats", help="per-fingerprint entry/shard/byte counts")
    evalcache_stats.add_argument("--cache-dir", required=True,
                                 help="cache root to inspect")
    evalcache_prune = evalcache_actions.add_parser(
        "prune",
        help="keep the N most recently used fingerprints and compact "
             "their append-logs (rewrites live entries, drops duplicate "
             "and torn lines)")
    evalcache_prune.add_argument("--cache-dir", required=True,
                                 help="cache root to prune")
    evalcache_prune.add_argument("--keep-fingerprints", type=int, required=True,
                                 metavar="N",
                                 help="how many most-recently-used "
                                      "fingerprints to keep")

    lint = subparsers.add_parser(
        "lint",
        help="run the repro static-analysis contract checks (RPR rules)")
    lint.add_argument("paths", nargs="*", default=["src/repro", "tests"],
                      metavar="PATH",
                      help="files or directories to lint "
                           "(default: src/repro tests)")
    lint.add_argument("--rules", default=None, metavar="IDS",
                      help="comma-separated rule ids to run "
                           "(default: every registered rule)")
    lint.add_argument("--json", dest="as_json", action="store_true",
                      help="emit the version-stamped JSON report instead "
                           "of text")
    lint.add_argument("--output", default=None, metavar="FILE",
                      help="write the report to FILE (atomically) instead "
                           "of stdout")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue (id, title, "
                           "rationale) and exit")

    metafeatures = subparsers.add_parser(
        "metafeatures", help="print the 40 meta-features of a dataset")
    metafeatures.add_argument("--dataset", required=True, help="registry dataset name")
    metafeatures.add_argument("--scale", type=float, default=1.0,
                              help="dataset scale factor (default 1.0)")

    trace = subparsers.add_parser(
        "trace", help="summarize or export a run's telemetry trace")
    trace_actions = trace.add_subparsers(dest="action", required=True)
    trace_summary = trace_actions.add_parser(
        "summary",
        help="per-phase / per-algorithm time breakdown (the paper's "
             "Table 5 shape)")
    trace_summary.add_argument("--trace", required=True, metavar="PATH",
                               help="trace.jsonl file, or the telemetry "
                                    "directory containing one")
    trace_export = trace_actions.add_parser(
        "export", help="convert a trace to another format")
    trace_export.add_argument("--trace", required=True, metavar="PATH",
                              help="trace.jsonl file, or the telemetry "
                                   "directory containing one")
    trace_export.add_argument("--chrome", action="store_true",
                              help="Chrome trace-event JSON, viewable in "
                                   "about:tracing / perfetto")
    trace_export.add_argument("--output", default=None, metavar="FILE",
                              help="output file (default: stdout)")

    serve = subparsers.add_parser(
        "serve",
        help="run the search-as-a-service HTTP server (JSON over HTTP)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8642)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="root for per-session state (checkpoints, "
                            "manifests, telemetry); restarting the server "
                            "on the same directory resumes every in-flight "
                            "session (default: a fresh temp dir)")
    serve.add_argument("--max-sessions", type=int, default=2, metavar="N",
                       help="concurrently running sessions; further "
                            "submissions queue (default 2)")
    serve.add_argument("--tenant-quota", type=int, default=None, metavar="N",
                       help="per-tenant trial quota enforced at submission "
                            "time (default: unlimited)")
    serve.add_argument("--tenant-weight", action="append", default=None,
                       metavar="TENANT=W", dest="tenant_weights",
                       help="fair-share weight for a tenant's queued "
                            "sessions (repeatable; unlisted tenants get "
                            "weight 1; higher = more of the session slots)")
    serve.add_argument("--checkpoint-every", type=int, default=5, metavar="N",
                       help="trials between automatic per-session "
                            "checkpoints (default 5)")
    add_parallel_options(serve, "the shared evaluation engine")
    add_cache_option(serve)
    add_prefix_cache_option(serve)

    def add_server_option(command) -> None:
        command.add_argument("--server", default="http://127.0.0.1:8642",
                             metavar="URL",
                             help="base URL of the `repro serve` server "
                                  "(default http://127.0.0.1:8642)")

    submit = subparsers.add_parser(
        "submit", help="submit a search to a running `repro serve` server")
    add_server_option(submit)
    submit.add_argument("--dataset", required=True,
                        help="registry dataset name")
    submit.add_argument("--model", default="lr",
                        help="downstream model (default lr)")
    submit.add_argument("--algorithm", default="rs",
                        help="search algorithm name (default rs)")
    submit.add_argument("--max-trials", type=int, default=None,
                        help="evaluation budget (default: the server's "
                             "default budget)")
    submit.add_argument("--seed", type=int, default=0, help="random seed")
    submit.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (default 1.0)")
    submit.add_argument("--tenant", default="default",
                        help="tenant name for quota accounting "
                             "(default: 'default')")
    submit.add_argument("--wait", action="store_true",
                        help="block until the session finishes and print "
                             "the final status")

    status = subparsers.add_parser(
        "status", help="show sessions of a running `repro serve` server")
    add_server_option(status)
    status.add_argument("--session", default=None, metavar="ID",
                        help="one session's detailed status "
                             "(default: list all sessions)")

    events = subparsers.add_parser(
        "events", help="stream a serve session's trial events")
    add_server_option(events)
    events.add_argument("--session", required=True, metavar="ID",
                        help="session id to stream")
    events.add_argument("--after", type=int, default=0, metavar="N",
                        help="skip the first N events (default 0)")
    events.add_argument("--follow", action="store_true",
                        help="long-poll for new events until the session "
                             "finishes")
    events.add_argument("--timeout", type=float, default=10.0, metavar="S",
                        help="per-poll wait in seconds with --follow "
                             "(default 10)")

    worker = subparsers.add_parser(
        "worker",
        help="run one distributed-execution worker daemon "
             "(pairs with a --backend remote search)")
    worker.add_argument("--coordinator", required=True, metavar="HOST:PORT",
                        help="address of the search's remote coordinator "
                             "(printed by a --backend remote run, or fixed "
                             "via --remote-coordinator)")
    worker.add_argument("--cores", type=int, default=None, metavar="N",
                        help="concurrent evaluations this worker leases "
                             "(default: all cores)")
    worker.add_argument("--connect-timeout", type=float, default=10.0,
                        metavar="S",
                        help="seconds to keep retrying the initial "
                             "connection, so workers may start before the "
                             "coordinator (default 10)")
    return parser


# ----------------------------------------------------------------- commands
def _cmd_datasets(args, out) -> int:
    if args.kind == "ctr":
        from repro.deep import CTR_DATASET_REGISTRY

        out.write(f"{'name':<12} {'samples':>8} {'numeric':>8}  description\n")
        for info in CTR_DATASET_REGISTRY.values():
            out.write(f"{info.name:<12} {info.n_samples:>8d} "
                      f"{info.n_numeric_features:>8d}  {info.description}\n")
        return 0
    if args.kind == "text":
        from repro.text import TEXT_DATASET_REGISTRY

        out.write(f"{'name':<12} {'documents':>9} {'classes':>8}  description\n")
        for info in TEXT_DATASET_REGISTRY.values():
            out.write(f"{info.name:<12} {info.n_documents:>9d} "
                      f"{info.n_classes:>8d}  {info.description}\n")
        return 0

    from repro.datasets import get_dataset_info, list_datasets

    out.write(f"{'name':<26} {'rows':>6} {'cols':>6} {'classes':>8} "
              f"{'paper rows':>11} {'paper cols':>11}\n")
    for name in list_datasets():
        info = get_dataset_info(name)
        out.write(f"{info.name:<26} {info.n_samples:>6d} {info.n_features:>6d} "
                  f"{info.n_classes:>8d} {info.paper_rows:>11d} {info.paper_cols:>11d}\n")
    return 0


def _cmd_preprocessors(args, out) -> int:
    from repro.preprocessing import (
        DEFAULT_PREPROCESSOR_NAMES,
        EXTENDED_PREPROCESSOR_NAMES,
        get_extended_preprocessor_class,
        get_preprocessor_class,
    )

    out.write("default preprocessors (Section 2.1):\n")
    for name in DEFAULT_PREPROCESSOR_NAMES:
        cls = get_preprocessor_class(name)
        summary = (cls.__doc__ or "").strip().splitlines()[0]
        out.write(f"  {name:<22} {summary}\n")
    out.write("\nextension preprocessors (opt-in):\n")
    for name in EXTENDED_PREPROCESSOR_NAMES:
        cls = get_extended_preprocessor_class(name)
        summary = (cls.__doc__ or "").strip().splitlines()[0]
        out.write(f"  {name:<22} {summary}\n")
    return 0


def _cmd_algorithms(args, out) -> int:
    from repro.search import EXTENSION_ALGORITHM_CLASSES, category_of, taxonomy_table

    rows = taxonomy_table()
    if args.category:
        rows = [row for row in rows if row["category"] == args.category]
        if not rows:
            out.write(f"no algorithms in category {args.category!r}\n")
            return 1
    out.write(f"{'name':<12} {'category':<12} {'area':<5} {'surrogate':<20} "
              f"{'initialization':<20}\n")
    for row in rows:
        out.write(f"{row['name']:<12} {row['category']:<12} {row['area']:<5} "
                  f"{row['surrogate_model']:<20} {row['initialization']:<20}\n")
    if not args.category:
        out.write("\nextension searchers (not part of the paper's 15): "
                  + ", ".join(sorted(EXTENSION_ALGORITHM_CLASSES)) + "\n")
    # `category_of` validates the names shown above stay registered.
    for row in rows:
        category_of(row["name"])
    return 0


def _prefix_cache_bytes(args) -> int | None:
    """Convert the ``--prefix-cache-mb`` option to a byte budget."""
    if getattr(args, "prefix_cache_mb", None) is None:
        return None
    return int(args.prefix_cache_mb * 1024 * 1024)


def _resolve_context(args):
    """Build the invocation's ExecutionContext from env < file < flags."""
    import json
    from pathlib import Path

    from repro.core.context import ExecutionContext

    context = ExecutionContext.from_env()
    if getattr(args, "context", None):
        data = json.loads(Path(args.context).read_text(encoding="utf-8"))
        context = context.layer(data)
    overrides: dict = {}
    if getattr(args, "n_jobs", None) is not None:
        overrides["n_jobs"] = args.n_jobs
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "cache_dir", None):
        overrides["cache_dir"] = args.cache_dir
    if getattr(args, "async_mode", False):
        overrides["async_mode"] = True
    prefix_bytes = _prefix_cache_bytes(args)
    if prefix_bytes is not None:
        overrides["prefix_cache_bytes"] = prefix_bytes
    if getattr(args, "telemetry", None) is not None:
        overrides["telemetry_mode"] = args.telemetry
    if getattr(args, "telemetry_dir", None):
        overrides["telemetry_dir"] = args.telemetry_dir
    if getattr(args, "remote_coordinator", None):
        overrides["remote_coordinator"] = args.remote_coordinator
    if getattr(args, "worker_timeout", None) is not None:
        overrides["worker_timeout"] = args.worker_timeout
    return context.replace(**overrides) if overrides else context


def _remote_address(engine) -> str | None:
    """The coordinator address of a remote-backed engine, else ``None``."""
    backend = getattr(engine, "backend", None)
    backend = getattr(backend, "inner", backend)  # unwrap ChaosBackend
    return getattr(backend, "coordinator_address", None)


def _cmd_search(args, out) -> int:
    from repro.core.problem import AutoFPProblem
    from repro.search import make_search_algorithm
    from repro.search.session import SearchSession

    context = _resolve_context(args)
    checkpoint = args.checkpoint
    if args.resume:
        if checkpoint is None:
            out.write("error: --resume needs --checkpoint FILE\n")
            return 2
        ignored = [flag for flag, given in (
            ("--context", args.context is not None),
            ("--n-jobs", args.n_jobs is not None),
            ("--backend", args.backend is not None),
            ("--cache-dir", bool(args.cache_dir)),
            ("--async", args.async_mode),
            ("--prefix-cache-mb", args.prefix_cache_mb is not None),
            ("--telemetry", args.telemetry is not None),
            ("--telemetry-dir", bool(args.telemetry_dir)),
        ) if given]
        if ignored:
            # Don't silently run under a different configuration than the
            # user asked for: the stored context governs a resumed run.
            out.write("note         : " + ", ".join(ignored) + " ignored — "
                      "a resumed run uses the checkpoint's stored context "
                      "and budget\n")
        # The checkpoint carries the problem (provenance), the runtime
        # context and the remaining budget of the interrupted run.
        session = SearchSession.resume(
            checkpoint, checkpoint_path=checkpoint,
            checkpoint_every=args.checkpoint_every,
        )
        problem = session.problem
        out.write(f"resuming     : {checkpoint} "
                  f"({len(session.result)} trials already done)\n")
        result = session.run()
        baseline = result.baseline_accuracy
        if baseline is None:
            baseline = problem.baseline_accuracy()
    else:
        if args.dataset is None:
            out.write("error: --dataset is required (or pass --resume)\n")
            return 2
        problem = AutoFPProblem.from_registry(
            args.dataset, args.model, scale=args.scale,
            random_state=args.seed, context=context,
        )
        baseline = problem.baseline_accuracy()
        algorithm = make_search_algorithm(args.algorithm,
                                          random_state=args.seed)
        session = SearchSession(
            problem, algorithm, context=context,
            checkpoint_path=checkpoint,
            checkpoint_every=(args.checkpoint_every if checkpoint else None),
        )
        session.result.baseline_accuracy = baseline
        address = _remote_address(problem.evaluator.engine)
        if address is not None:
            # Workers need this line to dial in; flush before blocking.
            out.write(f"coordinator  : {address} (join with "
                      f"`repro worker --coordinator {address}`)\n")
            if hasattr(out, "flush"):
                out.flush()
        result = session.run(max_trials=args.max_trials)

    if problem.evaluator.engine is not None:
        problem.evaluator.engine.close()

    scale = (problem.provenance or {}).get("scale", args.scale) \
        if args.resume else args.scale
    out.write(f"dataset      : {problem.name} (scale {scale})\n")
    out.write(f"algorithm    : {result.algorithm}\n")
    # A resumed run executes under the checkpoint's stored context.
    out.write(f"execution    : {session.context.describe()}\n")
    out.write(f"trials       : {len(result)}\n")
    out.write(f"baseline acc : {baseline:.4f}\n")
    out.write(f"best acc     : {result.best_accuracy:.4f}\n")
    out.write(f"best pipeline: {result.best_pipeline.describe()}\n")
    if session.context.cache_dir:
        info = problem.evaluator.cache_info()
        out.write(f"eval cache   : {info['misses']} uncached, "
                  f"{info['hits']} cached "
                  f"({info.get('disk_hits', 0)} from "
                  f"{session.context.cache_dir})\n")
    if problem.evaluator.prefix_cache is not None:
        info = problem.evaluator.cache_info()
        # Counters include reuse inside process-pool workers (their private
        # caches report per-evaluation deltas, merged back with results).
        out.write(f"prefix cache : {info['prefix_hits']} prefix hits, "
                  f"{info['steps_reused']} steps reused, "
                  f"{info['bytes_held']} bytes held\n")
    if session.last_checkpoint_path is not None:
        out.write(f"checkpoint   : {session.last_checkpoint_path} "
                  f"(resume with --resume)\n")
    if session.context.telemetry_mode == "trace" \
            and session.context.telemetry_dir is not None:
        from pathlib import Path

        from repro.telemetry import TRACE_FILE_NAME

        trace_path = Path(session.context.telemetry_dir) / TRACE_FILE_NAME
        out.write(f"trace        : {trace_path} "
                  f"(summarize with `repro trace summary --trace "
                  f"{trace_path}`)\n")

    if args.output:
        from repro.io import save_search_result

        path = save_search_result(result, args.output)
        out.write(f"saved result : {path}\n")
    return 0


def _cmd_compare(args, out) -> int:
    from repro.analysis import format_ranking_table, rank_with_ties
    from repro.core.problem import AutoFPProblem
    from repro.search import make_search_algorithm

    problem = AutoFPProblem.from_registry(
        args.dataset, args.model, scale=args.scale, random_state=args.seed,
        context=_resolve_context(args),
    )
    baseline = problem.baseline_accuracy()
    accuracies: dict[str, float] = {}
    for name in args.algorithms:
        result = make_search_algorithm(name, random_state=args.seed).search(
            problem, max_trials=args.max_trials
        )
        accuracies[name] = result.best_accuracy
    if problem.evaluator.engine is not None:
        problem.evaluator.engine.close()

    out.write(f"dataset {args.dataset}, model {args.model}, "
              f"budget {args.max_trials} trials, baseline {baseline:.4f}\n\n")
    out.write(f"{'algorithm':<12} {'best accuracy':>14}\n")
    for name, accuracy in sorted(accuracies.items(), key=lambda kv: -kv[1]):
        out.write(f"{name:<12} {accuracy:>14.4f}\n")

    ranking = rank_with_ties(accuracies)
    out.write("\n" + format_ranking_table(ranking, title="ranking (1 = best):") + "\n")
    return 0


def _cmd_experiment(args, out) -> int:
    from repro.analysis import format_ranking_table
    from repro.experiments import ExperimentConfig, run_experiment

    context = _resolve_context(args)
    config = ExperimentConfig(
        datasets=tuple(args.datasets),
        models=tuple(args.models),
        algorithms=tuple(args.algorithms),
        max_trials=args.max_trials,
        n_repeats=args.repeats,
        random_state=args.seed,
        dataset_scale=args.scale,
        context=context,
    )
    out.write(f"grid         : {len(config.datasets)} datasets x "
              f"{len(config.models)} models x {len(config.algorithms)} "
              f"algorithms x {config.n_repeats} repeats = {config.n_runs()} runs\n")
    out.write(f"execution    : {config.context.describe()}\n\n")

    outcome = run_experiment(config)
    if config.context.cache_dir:
        out.write(f"eval cache   : {outcome.uncached_evaluations} uncached "
                  f"evaluations (cache {config.context.cache_dir})\n\n")

    header = f"{'dataset':<16} {'model':<6} {'baseline':>9}"
    for algorithm in config.algorithms:
        header += f" {algorithm:>10}"
    out.write(header + "\n")
    for scenario in outcome.scenarios:
        row = (f"{scenario.dataset:<16} {scenario.model:<6} "
               f"{scenario.baseline_accuracy:>9.4f}")
        for algorithm in config.algorithms:
            row += f" {scenario.accuracies[algorithm]:>10.4f}"
        out.write(row + "\n")

    rankings = outcome.rankings(min_improvement=-100.0)  # rank every scenario
    out.write("\n" + format_ranking_table(rankings["overall"],
                                          title="average ranking (1 = best):") + "\n")
    return 0


def _cmd_evalcache(args, out) -> int:
    from repro.io.evalcache import cache_stats, prune_cache_root

    if args.action == "stats":
        rows = cache_stats(args.cache_dir)
        if not rows:
            out.write(f"no cache fingerprints under {args.cache_dir}\n")
            return 0
        out.write(f"{'fingerprint':<16} {'shards':>6} {'entries':>8} "
                  f"{'lines':>8} {'stale':>6} {'bytes':>10}\n")
        for row in rows:
            out.write(f"{row['fingerprint'][:12] + '...':<16} "
                      f"{row['shard_files']:>6d} {row['entries']:>8d} "
                      f"{row['lines']:>8d} "
                      f"{row['lines'] - row['entries']:>6d} "
                      f"{row['bytes']:>10d}\n")
        out.write(f"\n{len(rows)} fingerprint(s); 'stale' lines (duplicate "
                  "or torn appends) are removed by `repro evalcache prune`\n")
        return 0

    summary = prune_cache_root(args.cache_dir,
                               keep_fingerprints=args.keep_fingerprints)
    out.write(f"kept         : {len(summary['kept'])} fingerprint(s)\n")
    out.write(f"removed      : {len(summary['removed'])} fingerprint(s)\n")
    out.write(f"compacted    : {summary['lines_removed']} stale append-log "
              "line(s) rewritten away\n")
    return 0


def _resolve_trace_path(raw):
    """Accept either a trace.jsonl file or the directory holding one."""
    from pathlib import Path

    from repro.telemetry import TRACE_FILE_NAME

    path = Path(raw)
    if path.is_dir():
        return path / TRACE_FILE_NAME
    return path


def _cmd_trace(args, out) -> int:
    import json

    from repro.telemetry import read_trace, summarize_trace, to_chrome_trace

    events = read_trace(_resolve_trace_path(args.trace))

    if args.action == "export":
        if not args.chrome:
            out.write("error: `repro trace export` needs a format flag "
                      "(--chrome)\n")
            return 2
        document = json.dumps(to_chrome_trace(events), indent=2)
        if args.output:
            from repro.io.serialization import atomic_write_text

            path = atomic_write_text(args.output, document)
            out.write(f"wrote {len(events)} event(s) to {path}\n")
        else:
            out.write(document + "\n")
        return 0

    summary = summarize_trace(events)
    algorithms, overall = summary["algorithms"], summary["overall"]
    if not events:
        out.write("empty trace: no events found\n")
        return 1
    out.write(f"{len(events)} event(s), {overall['trials']} trial(s)\n\n")
    if algorithms:
        out.write(f"{'algorithm':<14} {'trials':>6} {'total(s)':>9} "
                  f"{'pick%':>7} {'prep%':>7} {'train%':>7}\n")
        rows = sorted(algorithms.items()) + [("overall", overall)]
        for name, row in rows:
            out.write(f"{name:<14} {row['trials']:>6d} {row['total']:>9.3f} "
                      f"{row['pick_pct']:>7.1f} {row['prep_pct']:>7.1f} "
                      f"{row['train_pct']:>7.1f}\n")
    else:
        out.write("no trial events (was the search run with "
                  "--telemetry trace?)\n")
    if summary["spans"]:
        out.write(f"\n{'span':<14} {'count':>6} {'total(s)':>9}\n")
        for name, tally in sorted(summary["spans"].items()):
            out.write(f"{name:<14} {tally['count']:>6d} "
                      f"{tally['total']:>9.3f}\n")
    return 0


def _cmd_lint(args, out) -> int:
    from pathlib import Path

    from repro.lint import (
        describe_rules,
        lint_paths,
        make_rules,
        render_json,
        render_text,
    )

    if args.list_rules:
        out.write(describe_rules(make_rules()))
        return 0
    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",")
                    if part.strip()]
        make_rules(rule_ids)  # validate ids before walking anything
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        out.write("error: no such lint target(s): "
                  + ", ".join(missing) + "\n")
        return 2

    report = lint_paths(args.paths, rules=rule_ids)
    if args.as_json:
        document = render_json(report)
        if args.output:
            from repro.io.serialization import atomic_write_text

            path = atomic_write_text(args.output, document)
            out.write(f"wrote {len(report.findings)} finding(s) to {path}\n")
        else:
            out.write(document)
    else:
        if args.output:
            import io

            buffer = io.StringIO()
            render_text(report, buffer)
            from repro.io.serialization import atomic_write_text

            path = atomic_write_text(args.output, buffer.getvalue())
            out.write(f"wrote {len(report.findings)} finding(s) to {path}\n")
        else:
            render_text(report, out)
    return 0 if report.clean else 1


def _cmd_metafeatures(args, out) -> int:
    from repro.datasets import load_dataset
    from repro.metafeatures import compute_metafeatures

    X, y = load_dataset(args.dataset, scale=args.scale)
    features = compute_metafeatures(X, y)
    width = max(len(name) for name in features)
    for name, value in features.items():
        out.write(f"{name:<{width}} {value: .6g}\n")
    return 0


def _cmd_serve(args, out) -> int:
    import signal

    from repro.serve import SessionManager, build_server

    context = _resolve_context(args)
    tenant_weights: dict = {}
    for item in args.tenant_weights or ():
        tenant, sep, weight = item.partition("=")
        if not sep or not tenant:
            out.write(f"error: bad --tenant-weight {item!r}: "
                      f"expected TENANT=WEIGHT\n")
            return 2
        try:
            tenant_weights[tenant] = float(weight)
        except ValueError:
            out.write(f"error: bad --tenant-weight {item!r}: "
                      f"{weight!r} is not a number\n")
            return 2
    manager = SessionManager(
        base_context=context,
        state_dir=args.state_dir,
        max_sessions=args.max_sessions,
        tenant_quota=args.tenant_quota,
        checkpoint_every=args.checkpoint_every,
        tenant_weights=tenant_weights or None,
    )
    server = build_server(manager, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    out.write(f"serving      : http://{host}:{port}\n")
    out.write(f"state dir    : {manager.state_dir}\n")
    out.write(f"execution    : {context.describe()}\n")
    out.write(f"sessions     : max {manager.max_sessions} concurrent"
              + (f", {manager.tenant_quota} trials/tenant"
                 if manager.tenant_quota else "") + "\n")
    if hasattr(out, "flush"):
        out.flush()  # the port line is what `repro submit` scripts wait for

    def _terminate(signum, frame) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        out.write("interrupt    : checkpointing in-flight sessions\n")
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        manager.shutdown()
    out.write(f"stopped      : state kept under {manager.state_dir} "
              f"(serve again with --state-dir to resume)\n")
    return 0


def _cmd_worker(args, out) -> int:
    from repro.engine import default_worker_count
    from repro.engine.remote import RemoteWorker

    cores = args.cores if args.cores is not None else default_worker_count()
    worker = RemoteWorker(args.coordinator, cores=cores,
                          connect_timeout=args.connect_timeout)
    out.write(f"worker       : dialing {args.coordinator} "
              f"({cores} core(s))\n")
    if hasattr(out, "flush"):
        out.flush()
    # No SIGTERM handler on purpose: a killed worker dies *ungracefully*,
    # which is exactly the failure the coordinator's heartbeat detection
    # and crash recovery exist for (and what the CI smoke asserts).
    code = worker.run()
    out.write("worker       : coordinator shut down, exiting\n")
    return code


def _cmd_submit(args, out) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.server)
    spec: dict = {
        "dataset": args.dataset,
        "model": args.model,
        "algorithm": args.algorithm,
        "seed": args.seed,
        "scale": args.scale,
        "tenant": args.tenant,
    }
    if args.max_trials is not None:
        spec["max_trials"] = args.max_trials
    view = client.submit(spec)
    out.write(f"session      : {view['session_id']}\n")
    out.write(f"status       : {view['status']}\n")
    if not args.wait:
        out.write(f"follow with  : repro events --server {args.server} "
                  f"--session {view['session_id']} --follow\n")
        return 0
    if hasattr(out, "flush"):
        out.flush()
    final = client.wait(view["session_id"])
    return _write_session_view(final, out)


def _write_session_view(view: dict, out) -> int:
    out.write(f"session      : {view['session_id']}\n")
    out.write(f"status       : {view['status']}\n")
    spec = view.get("spec") or {}
    if spec:
        out.write(f"spec         : {spec['dataset']}/{spec['model']} "
                  f"{spec['algorithm']} x{spec['max_trials']} "
                  f"(seed {spec['seed']}, tenant {spec['tenant']})\n")
    if view.get("trials") is not None:
        out.write(f"trials       : {view['trials']}\n")
    if view.get("best_accuracy") is not None:
        out.write(f"best acc     : {view['best_accuracy']:.4f}\n")
    result = view.get("result") or {}
    if result.get("best_pipeline"):
        out.write(f"best pipeline: {result['best_pipeline']}\n")
    if view.get("error"):
        out.write(f"error        : {view['error']}\n")
    return 0 if view["status"] != "failed" else 1


def _cmd_status(args, out) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.server)
    if args.session:
        return _write_session_view(client.status(args.session), out)
    health = client.healthz()
    sessions = client.sessions()
    out.write(f"server       : {args.server} ({health['status']}, "
              f"up {health['uptime']:.0f}s)\n")
    if not sessions:
        out.write("sessions     : none\n")
        return 0
    out.write(f"\n{'session':<34} {'status':<12} {'trials':>6} "
              f"{'best acc':>9}\n")
    for view in sessions:
        best = view.get("best_accuracy")
        out.write(f"{view['session_id']:<34} {view['status']:<12} "
                  f"{view.get('trials') or 0:>6} "
                  f"{best if best is None else format(best, '.4f'):>9}\n")
    return 0


def _cmd_events(args, out) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.server)
    after = args.after
    while True:
        chunk = client.events(args.session, after=after,
                              timeout=args.timeout if args.follow else None)
        for event in chunk["events"]:
            if event["kind"] == "trial":
                out.write(f"[{event['seq']:>4}] trial {event['trials_done']}: "
                          f"acc {event['accuracy']:.4f} "
                          f"(best {event['best_accuracy']:.4f}) "
                          f"{event['pipeline']}\n")
            elif event["kind"] == "checkpoint":
                out.write(f"[{event['seq']:>4}] checkpoint -> "
                          f"{event['path']}\n")
            else:
                out.write(f"[{event['seq']:>4}] {event['kind']}: "
                          f"{event.get('status', '')}\n")
        after = chunk["next"]
        if not args.follow or chunk["status"] not in ("queued", "running"):
            out.write(f"status       : {chunk['status']} "
                      f"({after} event(s))\n")
            return 0
        if hasattr(out, "flush"):
            out.flush()


_COMMANDS = {
    "datasets": _cmd_datasets,
    "preprocessors": _cmd_preprocessors,
    "algorithms": _cmd_algorithms,
    "search": _cmd_search,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "evalcache": _cmd_evalcache,
    "lint": _cmd_lint,
    "metafeatures": _cmd_metafeatures,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "events": _cmd_events,
}


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.exceptions import ReproError

    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
