"""Downstream classifiers, metrics and cross-validation utilities."""

from repro.models.base import Classifier, one_hot, softmax
from repro.models.forest import RandomForestClassifier, RandomForestRegressor
from repro.models.gbdt import GradientBoostingClassifier
from repro.models.linear import LinearDiscriminantAnalysis, LogisticRegression
from repro.models.metrics import (
    accuracy_score,
    balanced_accuracy_score,
    confusion_matrix,
    cross_val_score,
    error_rate,
    log_loss,
    roc_auc_score,
    stratified_kfold_indices,
    train_test_split,
)
from repro.models.mlp import MLPClassifier
from repro.models.neighbors import (
    GaussianNB,
    KNeighborsClassifier,
    MajorityClassClassifier,
)
from repro.models.registry import (
    CLASSIFIER_CLASSES,
    DOWNSTREAM_MODEL_NAMES,
    FAST_MODEL_PARAMS,
    get_classifier_class,
    make_classifier,
)
from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeNode

__all__ = [
    "Classifier",
    "softmax",
    "one_hot",
    "LogisticRegression",
    "LinearDiscriminantAnalysis",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "TreeNode",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "GradientBoostingClassifier",
    "MLPClassifier",
    "KNeighborsClassifier",
    "GaussianNB",
    "MajorityClassClassifier",
    "accuracy_score",
    "balanced_accuracy_score",
    "error_rate",
    "log_loss",
    "roc_auc_score",
    "confusion_matrix",
    "train_test_split",
    "cross_val_score",
    "stratified_kfold_indices",
    "CLASSIFIER_CLASSES",
    "DOWNSTREAM_MODEL_NAMES",
    "FAST_MODEL_PARAMS",
    "get_classifier_class",
    "make_classifier",
]
