"""Linear classifiers: multinomial logistic regression and LDA.

Logistic regression is the paper's "LR" downstream model.  It is trained
with full-batch gradient descent on the softmax cross-entropy with L2
regularisation; the learning rate is adapted with a simple backtracking
scheme so no tuning is needed across datasets of very different scales —
which is exactly the sensitivity to feature scaling the paper studies.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Classifier, one_hot, softmax


class LogisticRegression(Classifier):
    """Multinomial logistic regression trained with gradient descent.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger = less regularisation),
        matching the scikit-learn convention so HPO grids carry over.
    max_iter:
        Maximum number of full-batch gradient steps.
    tol:
        Stop when the largest absolute gradient entry falls below this value.
    learning_rate:
        Initial step size; adapted multiplicatively during training.
    fit_intercept:
        Whether to learn a bias term.
    random_state:
        Seed controlling the (tiny) random weight initialisation.
    """

    name = "lr"

    def __init__(self, C: float = 1.0, max_iter: int = 200, tol: float = 1e-4,
                 learning_rate: float = 0.5, fit_intercept: bool = True,
                 random_state: int | None = 0) -> None:
        super().__init__(
            C=C,
            max_iter=max_iter,
            tol=tol,
            learning_rate=learning_rate,
            fit_intercept=fit_intercept,
            random_state=random_state,
        )

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        from repro.utils.random import check_random_state

        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        n_classes = int(y.max()) + 1
        if self.fit_intercept:
            X = np.hstack([X, np.ones((n_samples, 1))])
            n_features += 1
        targets = one_hot(y, n_classes)
        weights = rng.normal(scale=0.01, size=(n_features, n_classes))
        alpha = 1.0 / (self.C * n_samples)
        step = float(self.learning_rate)
        previous_loss = np.inf

        for _ in range(int(self.max_iter)):
            logits = X @ weights
            probabilities = softmax(logits)
            grad = X.T @ (probabilities - targets) / n_samples + alpha * weights
            max_grad = np.abs(grad).max()
            if max_grad < self.tol:
                break
            weights -= step * grad
            loss = self._loss(X, targets, weights, alpha)
            if loss > previous_loss:
                # Overshot: undo, shrink the step and retry next iteration.
                weights += step * grad
                step *= 0.5
                if step < 1e-6:
                    break
            else:
                step *= 1.05
                previous_loss = loss

        if self.fit_intercept:
            self.coef_ = weights[:-1]
            self.intercept_ = weights[-1]
        else:
            self.coef_ = weights
            self.intercept_ = np.zeros(n_classes)

    @staticmethod
    def _loss(X, targets, weights, alpha) -> float:
        logits = X @ weights
        probabilities = softmax(logits)
        eps = 1e-12
        data_term = -np.mean(np.sum(targets * np.log(probabilities + eps), axis=1))
        reg_term = 0.5 * alpha * float(np.sum(weights * weights))
        return data_term + reg_term

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        logits = X @ self.coef_ + self.intercept_
        return softmax(logits)


class LinearDiscriminantAnalysis(Classifier):
    """Gaussian LDA classifier with a shared, shrunk covariance matrix.

    Used as one of the auto-sklearn landmarking meta-features
    (``LandmarkLDA``); the shrinkage keeps the pooled covariance invertible
    on degenerate or high-dimensional inputs.
    """

    name = "lda"

    def __init__(self, shrinkage: float = 1e-3) -> None:
        super().__init__(shrinkage=shrinkage)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n_features = X.shape[1]
        n_classes = int(y.max()) + 1
        self.means_ = np.zeros((n_classes, n_features))
        self.priors_ = np.zeros(n_classes)
        pooled = np.zeros((n_features, n_features))
        for label in range(n_classes):
            members = X[y == label]
            self.priors_[label] = members.shape[0] / X.shape[0]
            self.means_[label] = members.mean(axis=0)
            centered = members - self.means_[label]
            pooled += centered.T @ centered
        pooled /= max(X.shape[0] - n_classes, 1)
        pooled += self.shrinkage * np.eye(n_features) * max(np.trace(pooled) / n_features, 1.0)
        self.precision_ = np.linalg.pinv(pooled)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_classes = self.means_.shape[0]
        scores = np.zeros((X.shape[0], n_classes))
        for label in range(n_classes):
            mean = self.means_[label]
            linear = X @ self.precision_ @ mean
            offset = -0.5 * mean @ self.precision_ @ mean
            scores[:, label] = linear + offset + np.log(self.priors_[label] + 1e-12)
        return softmax(scores)
