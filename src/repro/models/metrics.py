"""Classification metrics and cross-validation helpers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import check_random_state
from repro.utils.validation import column_or_1d


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of predictions that exactly match the true labels."""
    y_true = column_or_1d(y_true, name="y_true")
    y_pred = column_or_1d(y_pred, name="y_pred")
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValidationError(
            f"y_true and y_pred have different lengths: "
            f"{y_true.shape[0]} != {y_pred.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValidationError("accuracy_score requires at least one sample")
    return float(np.mean(y_true == y_pred))


def error_rate(y_true, y_pred) -> float:
    """Classification error, ``1 - accuracy``.  This is the paper's pipeline error."""
    return 1.0 - accuracy_score(y_true, y_pred)


def log_loss(y_true, probabilities, *, eps: float = 1e-12) -> float:
    """Multi-class cross-entropy of predicted class probabilities.

    ``y_true`` must contain integer class indices in ``[0, n_classes)`` that
    index the columns of ``probabilities``.
    """
    y_true = column_or_1d(y_true, name="y_true").astype(int)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2:
        raise ValidationError("probabilities must be a 2-D array")
    if y_true.shape[0] != probabilities.shape[0]:
        raise ValidationError("y_true and probabilities have different lengths")
    clipped = np.clip(probabilities, eps, 1.0)
    picked = clipped[np.arange(y_true.shape[0]), y_true]
    return float(-np.mean(np.log(picked)))


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve for binary labels.

    ``y_true`` must contain exactly two distinct label values; the larger one
    is treated as the positive class.  ``y_score`` is any monotone score for
    the positive class (probabilities or raw margins).  Ties are handled with
    mid-ranks, which matches the usual Mann-Whitney U formulation.

    This metric backs the Section 8 "Auto-FP for deep models" experiment,
    which reports validation AUC for the recommendation-style datasets.
    """
    y_true = column_or_1d(y_true, name="y_true")
    y_score = column_or_1d(np.asarray(y_score, dtype=np.float64), name="y_score")
    if y_true.shape[0] != y_score.shape[0]:
        raise ValidationError("y_true and y_score have different lengths")
    labels = np.unique(y_true)
    if labels.shape[0] != 2:
        raise ValidationError(
            f"roc_auc_score requires exactly two classes, got {labels.shape[0]}"
        )
    positive = y_true == labels[1]
    n_pos = int(positive.sum())
    n_neg = int(y_true.shape[0] - n_pos)
    from scipy.stats import rankdata

    ranks = rankdata(y_score)
    rank_sum_pos = float(ranks[positive].sum())
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def confusion_matrix(y_true, y_pred, *, labels=None) -> np.ndarray:
    """Confusion matrix with rows = true labels and columns = predictions."""
    y_true = column_or_1d(y_true, name="y_true")
    y_pred = column_or_1d(y_pred, name="y_pred")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((labels.shape[0], labels.shape[0]), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        matrix[index[t], index[p]] += 1
    return matrix


def balanced_accuracy_score(y_true, y_pred) -> float:
    """Average of per-class recalls; robust to class imbalance."""
    matrix = confusion_matrix(y_true, y_pred)
    with np.errstate(divide="ignore", invalid="ignore"):
        recalls = np.diag(matrix) / matrix.sum(axis=1)
    recalls = recalls[np.isfinite(recalls)]
    if recalls.size == 0:
        return 0.0
    return float(recalls.mean())


def train_test_split(X, y, *, test_size: float = 0.2, random_state=None,
                     stratify: bool = True):
    """Split arrays into train and test subsets.

    Parameters
    ----------
    test_size:
        Fraction of samples placed in the test split (paper uses 0.2).
    stratify:
        When True, preserve per-class proportions (each class contributes at
        least one sample to each side whenever it has two or more samples).
    """
    X = np.asarray(X)
    y = column_or_1d(y)
    if not 0.0 < test_size < 1.0:
        raise ValidationError("test_size must be in (0, 1)")
    rng = check_random_state(random_state)
    n_samples = X.shape[0]
    if n_samples < 2:
        raise ValidationError("need at least two samples to split")

    if stratify:
        test_idx: list[int] = []
        train_idx: list[int] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            members = rng.permutation(members)
            n_test = int(round(test_size * members.shape[0]))
            if members.shape[0] >= 2:
                n_test = min(max(n_test, 1), members.shape[0] - 1)
            test_idx.extend(members[:n_test].tolist())
            train_idx.extend(members[n_test:].tolist())
        train_idx = np.array(sorted(train_idx))
        test_idx = np.array(sorted(test_idx))
    else:
        permutation = rng.permutation(n_samples)
        n_test = max(1, int(round(test_size * n_samples)))
        test_idx = np.sort(permutation[:n_test])
        train_idx = np.sort(permutation[n_test:])

    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def stratified_kfold_indices(y, n_splits: int, random_state=None):
    """Yield ``(train_idx, test_idx)`` pairs for stratified k-fold CV."""
    y = column_or_1d(y)
    if n_splits < 2:
        raise ValidationError("n_splits must be at least 2")
    rng = check_random_state(random_state)
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for label in np.unique(y):
        members = rng.permutation(np.flatnonzero(y == label))
        for i, idx in enumerate(members.tolist()):
            folds[i % n_splits].append(idx)
    all_indices = np.arange(y.shape[0])
    for fold in folds:
        test_idx = np.array(sorted(fold))
        mask = np.ones(y.shape[0], dtype=bool)
        mask[test_idx] = False
        yield all_indices[mask], test_idx


def cross_val_score(model, X, y, *, cv: int = 3, random_state=None) -> np.ndarray:
    """Stratified k-fold cross-validated accuracy of ``model``.

    The model is cloned for each fold via its ``clone`` method when
    available, otherwise a fresh instance with the same parameters is
    constructed.
    """
    X = np.asarray(X, dtype=np.float64)
    y = column_or_1d(y)
    scores = []
    for train_idx, test_idx in stratified_kfold_indices(y, cv, random_state):
        fold_model = model.clone() if hasattr(model, "clone") else model
        fold_model.fit(X[train_idx], y[train_idx])
        predictions = fold_model.predict(X[test_idx])
        scores.append(accuracy_score(y[test_idx], predictions))
    return np.asarray(scores)
