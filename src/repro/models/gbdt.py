"""Gradient-boosted decision trees — the XGBoost stand-in ("XGB").

The classifier boosts shallow regression trees on the softmax cross-entropy
gradient (one tree per class per round), with shrinkage and optional row
subsampling.  This is the classic gradient-boosting machine; it reproduces
the property of XGBoost that matters to the Auto-FP study: tree ensembles
are far less sensitive to monotone feature rescaling than linear models or
neural networks, so feature preprocessing helps them less (visible in
Tables 11-15 of the paper where XGB improvements are small).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Classifier, one_hot, softmax
from repro.models.tree import DecisionTreeRegressor
from repro.utils.random import check_random_state
from repro.utils.validation import check_is_fitted


class GradientBoostingClassifier(Classifier):
    """Multi-class gradient boosting with softmax loss.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of the individual regression trees.
    subsample:
        Fraction of rows sampled (without replacement) per round; 1.0
        disables subsampling.
    min_samples_leaf:
        Minimum samples per leaf in the individual trees.
    random_state:
        Seed for row subsampling.
    """

    name = "xgb"

    def __init__(self, n_estimators: int = 30, learning_rate: float = 0.3,
                 max_depth: int = 3, subsample: float = 1.0,
                 min_samples_leaf: int = 1, random_state: int | None = 0) -> None:
        super().__init__(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            subsample=subsample,
            min_samples_leaf=min_samples_leaf,
            random_state=random_state,
        )

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        self.n_classes_ = int(y.max()) + 1
        targets = one_hot(y, self.n_classes_)

        # Initial raw scores: log class priors (the usual GBM initialisation).
        priors = targets.mean(axis=0)
        priors = np.clip(priors, 1e-12, None)
        self.init_scores_ = np.log(priors)
        raw_scores = np.tile(self.init_scores_, (n_samples, 1))

        self.stages_: list[list[DecisionTreeRegressor]] = []
        for round_index in range(int(self.n_estimators)):
            probabilities = softmax(raw_scores)
            residuals = targets - probabilities

            if self.subsample < 1.0:
                size = max(2, int(round(self.subsample * n_samples)))
                sample_idx = rng.choice(n_samples, size=size, replace=False)
            else:
                sample_idx = np.arange(n_samples)

            stage: list[DecisionTreeRegressor] = []
            for class_index in range(self.n_classes_):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    random_state=round_index * self.n_classes_ + class_index,
                )
                tree.fit(X[sample_idx], residuals[sample_idx, class_index])
                raw_scores[:, class_index] += self.learning_rate * tree.predict(X)
                stage.append(tree)
            self.stages_.append(stage)

    def _raw_scores(self, X: np.ndarray) -> np.ndarray:
        scores = np.tile(self.init_scores_, (X.shape[0], 1))
        for stage in self.stages_:
            for class_index, tree in enumerate(stage):
                scores[:, class_index] += self.learning_rate * tree.predict(X)
        return scores

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "stages_")
        return softmax(self._raw_scores(X))

    def staged_score(self, X, y) -> list[float]:
        """Accuracy after each boosting round (used by successive-halving)."""
        check_is_fitted(self, "stages_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        scores = np.tile(self.init_scores_, (X.shape[0], 1))
        accuracies = []
        for stage in self.stages_:
            for class_index, tree in enumerate(stage):
                scores[:, class_index] += self.learning_rate * tree.predict(X)
            predictions = self.classes_[np.argmax(scores, axis=1)]
            accuracies.append(float(np.mean(predictions == y)))
        return accuracies
