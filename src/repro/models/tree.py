"""CART decision trees for classification and regression.

These trees are the building blocks for three parts of the reproduction:

* the decision-tree rule analysis of Table 1 (does any meta-feature rule
  predict whether FP helps?),
* the random forest used as SMAC's surrogate model and as a landmarking
  meta-feature, and
* the regression trees inside the gradient-boosting classifier that stands
  in for XGBoost.

Splits are found exhaustively per feature on sorted values; impurity is the
Gini index for classification and variance for regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.base import Classifier
from repro.utils.random import check_random_state
from repro.utils.validation import check_X_y, check_is_fitted


@dataclass
class TreeNode:
    """A single node of a decision tree.

    Leaves have ``feature is None`` and carry ``value`` (class-probability
    vector for classification, scalar mean for regression).
    """

    feature: int | None = None
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    value: np.ndarray | float | None = None
    n_samples: int = 0
    depth: int = 0
    impurity: float = 0.0
    children: list = field(default_factory=list, repr=False)

    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions * proportions))


def _best_split_classification(X, y, n_classes, feature_indices, min_samples_leaf):
    """Return ``(feature, threshold, gain)`` of the best Gini split, or None."""
    n_samples = X.shape[0]
    parent_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
    parent_impurity = _gini(parent_counts)
    best = None
    best_gain = 1e-12

    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="mergesort")
        values = X[order, feature]
        labels = y[order]
        left_counts = np.zeros(n_classes)
        right_counts = parent_counts.copy()
        for i in range(n_samples - 1):
            label = labels[i]
            left_counts[label] += 1
            right_counts[label] -= 1
            if values[i] == values[i + 1]:
                continue
            n_left = i + 1
            n_right = n_samples - n_left
            if n_left < min_samples_leaf or n_right < min_samples_leaf:
                continue
            weighted = (n_left * _gini(left_counts)
                        + n_right * _gini(right_counts)) / n_samples
            gain = parent_impurity - weighted
            if gain > best_gain:
                best_gain = gain
                best = (feature, 0.5 * (values[i] + values[i + 1]), gain)
    return best


def _best_split_regression(X, y, feature_indices, min_samples_leaf):
    """Return ``(feature, threshold, gain)`` of the best variance-reducing split."""
    n_samples = X.shape[0]
    total_sum = y.sum()
    total_sq = float(np.sum(y * y))
    parent_sse = total_sq - total_sum * total_sum / n_samples
    best = None
    best_gain = 1e-12

    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="mergesort")
        values = X[order, feature]
        targets = y[order]
        left_sum = 0.0
        left_sq = 0.0
        for i in range(n_samples - 1):
            left_sum += targets[i]
            left_sq += targets[i] * targets[i]
            if values[i] == values[i + 1]:
                continue
            n_left = i + 1
            n_right = n_samples - n_left
            if n_left < min_samples_leaf or n_right < min_samples_leaf:
                continue
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            left_sse = left_sq - left_sum * left_sum / n_left
            right_sse = right_sq - right_sum * right_sum / n_right
            gain = parent_sse - (left_sse + right_sse)
            if gain > best_gain:
                best_gain = gain
                best = (feature, 0.5 * (values[i] + values[i + 1]), gain)
    return best


class DecisionTreeClassifier(Classifier):
    """CART classification tree using the Gini impurity.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` means nodes are split until pure.
    min_samples_split:
        Minimum number of samples required to consider splitting a node.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    max_features:
        Number of features examined per split.  ``None`` uses all features,
        ``"sqrt"`` uses ``sqrt(n_features)`` (the random-forest default).
    random_state:
        Seed for the per-split feature subsampling.
    """

    name = "decision_tree"

    def __init__(self, max_depth: int | None = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features=None,
                 random_state: int | None = 0) -> None:
        super().__init__(
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            random_state=random_state,
        )

    def _n_split_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return max(1, min(int(self.max_features), n_features))

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._rng = check_random_state(self.random_state)
        self.n_classes_ = int(y.max()) + 1
        self.tree_ = self._build(X, y, depth=0)

    def _build(self, X, y, depth) -> TreeNode:
        counts = np.bincount(y, minlength=self.n_classes_).astype(np.float64)
        node = TreeNode(
            n_samples=X.shape[0],
            depth=depth,
            impurity=_gini(counts),
            value=counts / counts.sum(),
        )
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or X.shape[0] < self.min_samples_split
            or np.count_nonzero(counts) <= 1
        ):
            return node

        n_features = X.shape[1]
        n_candidates = self._n_split_features(n_features)
        if n_candidates < n_features:
            feature_indices = self._rng.choice(n_features, size=n_candidates,
                                               replace=False)
        else:
            feature_indices = np.arange(n_features)

        split = _best_split_classification(
            X, y, self.n_classes_, feature_indices, self.min_samples_leaf
        )
        if split is None:
            return node

        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "tree_")
        out = np.empty((X.shape[0], self.n_classes_))
        for i, row in enumerate(X):
            node = self.tree_
            while not node.is_leaf():
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        check_is_fitted(self, "tree_")

        def walk(node):
            if node.is_leaf():
                return node.depth
            return max(walk(node.left), walk(node.right))

        return walk(self.tree_)

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        check_is_fitted(self, "tree_")

        def walk(node):
            if node.is_leaf():
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.tree_)


class DecisionTreeRegressor:
    """CART regression tree minimising within-node variance.

    Follows the same ``fit`` / ``predict`` protocol as the classifiers but
    predicts real values.  Used by the gradient-boosting classifier and the
    random-forest regression surrogate.
    """

    name = "decision_tree_regressor"

    def __init__(self, max_depth: int | None = 3, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features=None,
                 random_state: int | None = 0) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def get_params(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "random_state": self.random_state,
        }

    def clone(self) -> "DecisionTreeRegressor":
        return DecisionTreeRegressor(**self.get_params())

    def _n_split_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return max(1, min(int(self.max_features), n_features))

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[0] != y.shape[0]:
            from repro.exceptions import ValidationError

            raise ValidationError("X and y have inconsistent lengths")
        self._rng = check_random_state(self.random_state)
        self.n_features_in_ = X.shape[1]
        self.tree_ = self._build(X, y, depth=0)
        return self

    def _build(self, X, y, depth) -> TreeNode:
        node = TreeNode(
            n_samples=X.shape[0],
            depth=depth,
            impurity=float(np.var(y)) if y.size else 0.0,
            value=float(y.mean()) if y.size else 0.0,
        )
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or X.shape[0] < self.min_samples_split
            or np.allclose(y, y[0])
        ):
            return node

        n_features = X.shape[1]
        n_candidates = self._n_split_features(n_features)
        if n_candidates < n_features:
            feature_indices = self._rng.choice(n_features, size=n_candidates,
                                               replace=False)
        else:
            feature_indices = np.arange(n_features)

        split = _best_split_regression(X, y, feature_indices, self.min_samples_leaf)
        if split is None:
            return node

        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.tree_
            while not node.is_leaf():
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out
