"""Base classifier API shared by all downstream models.

The downstream models play the role scikit-learn / XGBoost play in the
paper: a pipeline's quality is the validation accuracy of a classifier
trained on the preprocessed data.  Every classifier implements
``fit`` / ``predict`` / ``predict_proba`` / ``score`` and supports
``get_params`` / ``set_params`` / ``clone`` so HPO can reconfigure it.
"""

from __future__ import annotations

import copy
from typing import Any

import numpy as np

from repro.models.metrics import accuracy_score
from repro.utils.validation import check_is_fitted, check_X_y


class Classifier:
    """Abstract base class for downstream classifiers.

    Subclasses implement ``_fit(X, y_encoded)`` (labels encoded to
    ``0..n_classes-1``) and ``_predict_proba(X)``; the base class handles
    label encoding/decoding, validation and cloning.
    """

    #: registry name of the model ("lr", "xgb", "mlp", ...)
    name: str = "classifier"

    def __init__(self, **params: Any) -> None:
        for key, value in params.items():
            setattr(self, key, value)

    # ------------------------------------------------------------------ API
    def fit(self, X, y) -> "Classifier":
        """Fit the classifier on features ``X`` and labels ``y``."""
        X, y = check_X_y(X, y)
        self.classes_, y_encoded = np.unique(y, return_inverse=True)
        self.n_features_in_ = X.shape[1]
        self._fit(X, y_encoded)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Return class-membership probabilities of shape ``(n, n_classes)``."""
        check_is_fitted(self, "classes_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return self._predict_proba(X)

    def predict(self, X) -> np.ndarray:
        """Return predicted labels (in the original label space)."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, X, y) -> float:
        """Accuracy of ``predict(X)`` against ``y``."""
        return accuracy_score(y, self.predict(X))

    # ----------------------------------------------------------- parameters
    def get_params(self) -> dict:
        """Return the constructor parameters of this classifier."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.endswith("_") and not key.startswith("_")
        }

    def set_params(self, **params: Any) -> "Classifier":
        """Set constructor parameters; unknown names raise ``ValidationError``."""
        from repro.exceptions import ValidationError

        known = self.get_params()
        for key, value in params.items():
            if key not in known:
                raise ValidationError(
                    f"{type(self).__name__} has no parameter {key!r}"
                )
            setattr(self, key, value)
        return self

    def clone(self) -> "Classifier":
        """Return an unfitted copy with identical constructor parameters."""
        return type(self)(**copy.deepcopy(self.get_params()))

    def is_fitted(self) -> bool:
        """Return whether :meth:`fit` has been called."""
        return hasattr(self, "classes_")

    # ------------------------------------------------------------ internals
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def one_hot(y: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode integer labels ``y`` into ``(n, n_classes)``."""
    encoded = np.zeros((y.shape[0], n_classes), dtype=np.float64)
    encoded[np.arange(y.shape[0]), y] = 1.0
    return encoded
