"""K-nearest-neighbour and Gaussian naive Bayes classifiers.

These simple classifiers are used as landmarking meta-features (Table 10 of
the paper: ``Landmark1NN``, ``LandmarkNaiveBayes``) and as additional
distance-based models whose accuracy is strongly affected by feature
scaling.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Classifier, one_hot
from repro.utils.validation import check_is_fitted


class KNeighborsClassifier(Classifier):
    """Brute-force k-nearest-neighbour classifier with Euclidean distance.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours to vote over (1 gives the ``Landmark1NN``
        meta-feature).
    """

    name = "knn"

    def __init__(self, n_neighbors: int = 5) -> None:
        super().__init__(n_neighbors=int(n_neighbors))

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.X_train_ = X
        self.y_train_ = y
        self.n_classes_ = int(y.max()) + 1

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "X_train_")
        k = min(self.n_neighbors, self.X_train_.shape[0])
        # Pairwise squared Euclidean distances, computed blockwise for memory.
        out = np.zeros((X.shape[0], self.n_classes_))
        block = 512
        train_sq = np.sum(self.X_train_ ** 2, axis=1)
        for start in range(0, X.shape[0], block):
            rows = X[start:start + block]
            distances = (
                np.sum(rows ** 2, axis=1)[:, None]
                - 2.0 * rows @ self.X_train_.T
                + train_sq[None, :]
            )
            nearest = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
            votes = self.y_train_[nearest]
            for class_index in range(self.n_classes_):
                out[start:start + block, class_index] = np.mean(
                    votes == class_index, axis=1
                )
        return out


class GaussianNB(Classifier):
    """Gaussian naive Bayes with per-class diagonal covariance."""

    name = "gaussian_nb"

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        super().__init__(var_smoothing=var_smoothing)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.n_classes_ = int(y.max()) + 1
        n_features = X.shape[1]
        self.theta_ = np.zeros((self.n_classes_, n_features))
        self.var_ = np.zeros((self.n_classes_, n_features))
        self.priors_ = np.zeros(self.n_classes_)
        global_var = X.var(axis=0).max()
        smoothing = self.var_smoothing * max(global_var, 1e-12)
        for label in range(self.n_classes_):
            members = X[y == label]
            if members.shape[0] == 0:
                self.priors_[label] = 1e-12
                self.var_[label] = 1.0
                continue
            self.priors_[label] = members.shape[0] / X.shape[0]
            self.theta_[label] = members.mean(axis=0)
            self.var_[label] = members.var(axis=0) + smoothing

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "theta_")
        log_probs = np.zeros((X.shape[0], self.n_classes_))
        for label in range(self.n_classes_):
            diff = X - self.theta_[label]
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[label]) + diff ** 2 / self.var_[label],
                axis=1,
            )
            log_probs[:, label] = log_likelihood + np.log(self.priors_[label] + 1e-12)
        shifted = log_probs - log_probs.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted)
        return probabilities / probabilities.sum(axis=1, keepdims=True)


class MajorityClassClassifier(Classifier):
    """Predict the most frequent training class; the no-skill baseline.

    Used by landmarking meta-features (random-node learners degrade to this
    on uninformative features) and as a sanity baseline in tests.
    """

    name = "majority"

    def __init__(self) -> None:
        super().__init__()

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        counts = np.bincount(y)
        self.majority_ = int(np.argmax(counts))
        self.n_classes_ = counts.shape[0]

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "majority_")
        probabilities = np.zeros((X.shape[0], self.n_classes_))
        probabilities[:, self.majority_] = 1.0
        return probabilities
