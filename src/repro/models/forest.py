"""Random forests for classification and regression.

The regression forest doubles as SMAC's surrogate model (the paper notes
SMAC uses a random forest because it copes with the categorical,
high-dimensional pipeline encoding); the classification forest is used for
landmarking meta-features and as an HPO target.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Classifier
from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.utils.random import check_random_state, spawn_rng
from repro.utils.validation import check_is_fitted


class RandomForestClassifier(Classifier):
    """Bagged ensemble of Gini decision trees with feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Maximum depth of each tree.
    max_features:
        Features considered per split (default ``"sqrt"``).
    bootstrap:
        Whether each tree sees a bootstrap resample of the training data.
    random_state:
        Seed for bootstrapping and feature subsampling.
    """

    name = "random_forest"

    def __init__(self, n_estimators: int = 20, max_depth: int | None = None,
                 min_samples_leaf: int = 1, max_features="sqrt",
                 bootstrap: bool = True, random_state: int | None = 0) -> None:
        super().__init__(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            bootstrap=bootstrap,
            random_state=random_state,
        )

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.random_state)
        self.n_classes_ = int(y.max()) + 1
        self.estimators_ = []
        seeds = rng.integers(0, 2**31 - 1, size=int(self.n_estimators))
        for seed in seeds:
            tree_rng = np.random.default_rng(int(seed))
            if self.bootstrap:
                indices = tree_rng.integers(0, X.shape[0], size=X.shape[0])
            else:
                indices = np.arange(X.shape[0])
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(seed),
            )
            # Ensure every class is represented in the tree's output space by
            # fitting on the encoded labels and padding probabilities later.
            tree.fit(X[indices], y[indices])
            self.estimators_.append(tree)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        aggregate = np.zeros((X.shape[0], self.n_classes_))
        for tree in self.estimators_:
            probabilities = tree.predict_proba(X)
            # A bootstrap sample can miss classes; align by the tree's classes_.
            aggregate[:, tree.classes_.astype(int)] += probabilities
        aggregate /= len(self.estimators_)
        # Guard rows that received no votes (cannot happen in practice).
        row_sums = aggregate.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        return aggregate / row_sums


class RandomForestRegressor:
    """Bagged ensemble of variance-splitting regression trees.

    Besides ``predict`` it exposes ``predict_with_std`` which returns the
    across-tree standard deviation — the uncertainty estimate SMAC's
    expected-improvement acquisition function needs.
    """

    name = "random_forest_regressor"

    def __init__(self, n_estimators: int = 20, max_depth: int | None = 8,
                 min_samples_leaf: int = 1, max_features="sqrt",
                 bootstrap: bool = True, random_state: int | None = 0) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def get_params(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "bootstrap": self.bootstrap,
            "random_state": self.random_state,
        }

    def clone(self) -> "RandomForestRegressor":
        return RandomForestRegressor(**self.get_params())

    def fit(self, X, y) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        rng = check_random_state(self.random_state)
        rngs = spawn_rng(rng, int(self.n_estimators))
        if self.n_estimators == 1:
            rngs = [rngs]
        self.estimators_ = []
        for tree_rng in rngs:
            if self.bootstrap:
                indices = tree_rng.integers(0, X.shape[0], size=X.shape[0])
            else:
                indices = np.arange(X.shape[0])
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(tree_rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[indices], y[indices])
            self.estimators_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        return self.predict_with_std(X)[0]

    def predict_with_std(self, X):
        """Return ``(mean, std)`` of per-tree predictions for each row of ``X``."""
        check_is_fitted(self, "estimators_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0), predictions.std(axis=0)
