"""Registry of downstream classifiers.

The paper evaluates three downstream models: Logistic Regression ("LR"),
XGBoost ("XGB") and a multi-layer perceptron ("MLP").  The registry exposes
those three under their paper names plus the auxiliary models used
elsewhere in the library.  ``make_classifier`` accepts overrides so
benchmarks can dial model capacity up or down.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import UnknownComponentError
from repro.models.base import Classifier
from repro.models.forest import RandomForestClassifier
from repro.models.gbdt import GradientBoostingClassifier
from repro.models.linear import LinearDiscriminantAnalysis, LogisticRegression
from repro.models.mlp import MLPClassifier
from repro.models.neighbors import GaussianNB, KNeighborsClassifier, MajorityClassClassifier
from repro.models.tree import DecisionTreeClassifier

CLASSIFIER_CLASSES: dict[str, type[Classifier]] = {
    "lr": LogisticRegression,
    "xgb": GradientBoostingClassifier,
    "mlp": MLPClassifier,
    "decision_tree": DecisionTreeClassifier,
    "random_forest": RandomForestClassifier,
    "knn": KNeighborsClassifier,
    "gaussian_nb": GaussianNB,
    "lda": LinearDiscriminantAnalysis,
    "majority": MajorityClassClassifier,
}

#: the three downstream models of the paper's main evaluation
DOWNSTREAM_MODEL_NAMES: tuple[str, ...] = ("lr", "xgb", "mlp")

#: fast default configurations used by the benchmark harnesses so a full
#: table regeneration finishes on a laptop; the paper uses library defaults
#: on a 110-vCPU machine instead.
FAST_MODEL_PARAMS: dict[str, dict[str, Any]] = {
    "lr": {"max_iter": 80},
    "xgb": {"n_estimators": 10, "max_depth": 3},
    "mlp": {"hidden_layer_sizes": (16,), "max_iter": 25},
}


def get_classifier_class(name: str) -> type[Classifier]:
    """Return the classifier class registered under ``name``."""
    try:
        return CLASSIFIER_CLASSES[name]
    except KeyError as exc:
        raise UnknownComponentError(
            f"Unknown classifier {name!r}. Known names: {sorted(CLASSIFIER_CLASSES)}"
        ) from exc


def make_classifier(name: str, *, fast: bool = False, **overrides: Any) -> Classifier:
    """Instantiate a classifier by name.

    Parameters
    ----------
    name:
        Registry name, e.g. ``"lr"``, ``"xgb"`` or ``"mlp"``.
    fast:
        When True, apply the reduced-capacity defaults from
        :data:`FAST_MODEL_PARAMS` (benchmark harnesses use this).
    overrides:
        Explicit constructor arguments; they take precedence over the fast
        defaults.
    """
    cls = get_classifier_class(name)
    params: dict[str, Any] = {}
    if fast and name in FAST_MODEL_PARAMS:
        params.update(FAST_MODEL_PARAMS[name])
    params.update(overrides)
    return cls(**params)
