"""Multi-layer perceptron classifier — the "MLP" downstream model.

A small feed-forward network (one or two hidden layers, ReLU activations,
softmax output) trained with mini-batch Adam on the cross-entropy loss.
Like scikit-learn's MLPClassifier it is highly sensitive to the scale of the
input features, which is why the paper's MLP results show the largest
improvements from feature preprocessing.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Classifier, one_hot, softmax
from repro.utils.random import check_random_state
from repro.utils.validation import check_is_fitted


class MLPClassifier(Classifier):
    """Feed-forward neural-network classifier trained with Adam.

    Parameters
    ----------
    hidden_layer_sizes:
        Tuple of hidden-layer widths, e.g. ``(32,)`` or ``(64, 32)``.
    alpha:
        L2 penalty on the weights.
    learning_rate:
        Adam step size.
    max_iter:
        Number of training epochs.
    batch_size:
        Mini-batch size; clipped to the number of training samples.
    random_state:
        Seed controlling weight initialisation and batch shuffling.
    """

    name = "mlp"

    def __init__(self, hidden_layer_sizes: tuple = (32,), alpha: float = 1e-4,
                 learning_rate: float = 1e-2, max_iter: int = 60,
                 batch_size: int = 64, random_state: int | None = 0) -> None:
        super().__init__(
            hidden_layer_sizes=tuple(hidden_layer_sizes),
            alpha=alpha,
            learning_rate=learning_rate,
            max_iter=max_iter,
            batch_size=batch_size,
            random_state=random_state,
        )

    # ------------------------------------------------------------- training
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        n_classes = int(y.max()) + 1
        targets = one_hot(y, n_classes)

        layer_sizes = [n_features, *self.hidden_layer_sizes, n_classes]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights_.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

        # Adam state.
        m_w = [np.zeros_like(w) for w in self.weights_]
        v_w = [np.zeros_like(w) for w in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        batch_size = int(min(self.batch_size, n_samples))
        for _ in range(int(self.max_iter)):
            permutation = rng.permutation(n_samples)
            for start in range(0, n_samples, batch_size):
                batch = permutation[start:start + batch_size]
                grads_w, grads_b = self._backward(X[batch], targets[batch])
                step += 1
                for i in range(len(self.weights_)):
                    grads_w[i] += self.alpha * self.weights_[i]
                    m_w[i] = beta1 * m_w[i] + (1 - beta1) * grads_w[i]
                    v_w[i] = beta2 * v_w[i] + (1 - beta2) * grads_w[i] ** 2
                    m_b[i] = beta1 * m_b[i] + (1 - beta1) * grads_b[i]
                    v_b[i] = beta2 * v_b[i] + (1 - beta2) * grads_b[i] ** 2
                    m_w_hat = m_w[i] / (1 - beta1 ** step)
                    v_w_hat = v_w[i] / (1 - beta2 ** step)
                    m_b_hat = m_b[i] / (1 - beta1 ** step)
                    v_b_hat = v_b[i] / (1 - beta2 ** step)
                    self.weights_[i] -= self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                    self.biases_[i] -= self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)

    def _forward(self, X: np.ndarray):
        """Return the list of layer activations (input first, logits last)."""
        activations = [X]
        for i, (weights, biases) in enumerate(zip(self.weights_, self.biases_)):
            pre_activation = activations[-1] @ weights + biases
            if i < len(self.weights_) - 1:
                activations.append(np.maximum(pre_activation, 0.0))
            else:
                activations.append(pre_activation)
        return activations

    def _backward(self, X: np.ndarray, targets: np.ndarray):
        activations = self._forward(X)
        probabilities = softmax(activations[-1])
        batch = X.shape[0]
        delta = (probabilities - targets) / batch
        grads_w = [np.zeros_like(w) for w in self.weights_]
        grads_b = [np.zeros_like(b) for b in self.biases_]
        for i in range(len(self.weights_) - 1, -1, -1):
            grads_w[i] = activations[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self.weights_[i].T) * (activations[i] > 0.0)
        return grads_w, grads_b

    # ------------------------------------------------------------ inference
    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "weights_")
        logits = self._forward(X)[-1]
        return softmax(logits)
