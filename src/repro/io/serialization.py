"""JSON / CSV serialization for pipelines, trials and search results.

A benchmark study lives or dies by its raw results: the paper publishes its
"comprehensive experimental results" alongside the code, and this module is
the piece that makes the reproduction's results equally portable.  Search
results round-trip through plain JSON documents (no pickling), and tabular
experiment summaries round-trip through CSV, so downstream analysis does not
need the library at all.
"""

from __future__ import annotations

import base64
import csv
import io
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.core.pipeline import Pipeline
from repro.core.result import SearchResult, TrialRecord
from repro.exceptions import ValidationError
from repro.preprocessing.extended import EXTENDED_PREPROCESSOR_CLASSES
from repro.preprocessing.registry import PREPROCESSOR_CLASSES

#: schema version stamped into every saved search-result document.  Version
#: 2 marks results written since the ``ResultStore`` tagged-file-stem
#: separator changed from ``-`` to ``--``: a document *without* the marker
#: may predate that change, and the store's loader shim then disambiguates
#: its file stem against the document's ``algorithm`` field (see
#: :meth:`repro.io.store.ResultStore.keys`).
RESULT_FORMAT_VERSION = 2


def pipeline_to_dict(pipeline: Pipeline) -> dict:
    """JSON-serialisable description of a pipeline (names + parameters)."""
    return {
        "steps": [
            {"name": step.name, "params": step.get_params()}
            for step in pipeline
        ]
    }


def pipeline_from_dict(data: Mapping) -> Pipeline:
    """Rebuild a pipeline from :func:`pipeline_to_dict` output.

    Both the seven default preprocessors and the extension preprocessors are
    resolvable, so serialized results from extended search spaces load too.
    """
    steps = []
    for entry in data.get("steps", []):
        name = entry["name"]
        params = dict(entry.get("params", {}))
        if name in PREPROCESSOR_CLASSES:
            steps.append(PREPROCESSOR_CLASSES[name](**params))
        elif name in EXTENDED_PREPROCESSOR_CLASSES:
            steps.append(EXTENDED_PREPROCESSOR_CLASSES[name](**params))
        else:
            raise ValidationError(f"unknown preprocessor name in pipeline data: {name!r}")
    return Pipeline(steps)


def trial_to_dict(trial: TrialRecord) -> dict:
    """JSON-serialisable description of one trial.

    ``phase_timings`` — telemetry-only derived data — is included only
    when present, so documents written by untraced runs stay
    byte-identical to what earlier releases produced.
    """
    data = {
        "pipeline": pipeline_to_dict(trial.pipeline),
        "accuracy": trial.accuracy,
        "pick_time": trial.pick_time,
        "prep_time": trial.prep_time,
        "train_time": trial.train_time,
        "fidelity": trial.fidelity,
        "iteration": trial.iteration,
    }
    if trial.phase_timings is not None:
        data["phase_timings"] = dict(trial.phase_timings)
    if trial.failure_kind is not None:
        data["failure_kind"] = trial.failure_kind
    return data


def trial_from_dict(data: Mapping) -> TrialRecord:
    """Rebuild a trial from :func:`trial_to_dict` output."""
    phase_timings = data.get("phase_timings")
    return TrialRecord(
        pipeline=pipeline_from_dict(data["pipeline"]),
        accuracy=float(data["accuracy"]),
        pick_time=float(data.get("pick_time", 0.0)),
        prep_time=float(data.get("prep_time", 0.0)),
        train_time=float(data.get("train_time", 0.0)),
        fidelity=float(data.get("fidelity", 1.0)),
        iteration=int(data.get("iteration", 0)),
        phase_timings=dict(phase_timings) if phase_timings else None,
        failure_kind=data.get("failure_kind"),
    )


def search_result_to_dict(result: SearchResult) -> dict:
    """JSON-serialisable description of a whole search run."""
    return {
        "format_version": RESULT_FORMAT_VERSION,
        "algorithm": result.algorithm,
        "baseline_accuracy": result.baseline_accuracy,
        "trials": [trial_to_dict(trial) for trial in result.trials],
    }


def search_result_from_dict(data: Mapping) -> SearchResult:
    """Rebuild a search result from :func:`search_result_to_dict` output.

    Documents without a ``format_version`` (written before the marker
    existed) load normally; documents from a *newer* format are refused
    rather than silently misread.
    """
    version = data.get("format_version")
    if isinstance(version, int) and version > RESULT_FORMAT_VERSION:
        raise ValidationError(
            f"search result uses format version {version}; this build "
            f"reads up to {RESULT_FORMAT_VERSION}"
        )
    result = SearchResult(
        algorithm=data.get("algorithm", "unknown"),
        baseline_accuracy=data.get("baseline_accuracy"),
    )
    for entry in data.get("trials", []):
        result.add(trial_from_dict(entry))
    return result


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Readers either see the previous content or the complete new content,
    never a torn write: a crash mid-write leaves only a stray ``.tmp`` file,
    not a corrupt document at ``path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def save_search_result(result: SearchResult, path) -> Path:
    """Write a search result to ``path`` as a JSON document; returns the path.

    The write is atomic, so a crash mid-save cannot leave a truncated JSON
    file that would poison later loads (e.g. ``ResultStore.summary_rows``).
    """
    return atomic_write_text(
        path, json.dumps(search_result_to_dict(result), indent=2)
    )


def load_search_result(path) -> SearchResult:
    """Load a search result previously written by :func:`save_search_result`."""
    path = Path(path)
    return search_result_from_dict(json.loads(path.read_text(encoding="utf-8")))


# ---------------------------------------------------- session checkpoints
#: schema version of SearchSession checkpoint documents; newer documents
#: are refused rather than misread (mirroring search-result handling).
#: Version history:
#:
#: * 0 — pre-versioning documents (no ``format_version`` field)
#: * 1 — versioned documents with ``driver``/``loop`` sections
#: * 2 — the context dict carries ``telemetry_mode``/``telemetry_dir``
SESSION_CHECKPOINT_VERSION = 2

#: the ``kind`` marker distinguishing checkpoints from result documents
SESSION_CHECKPOINT_KIND = "search-session-checkpoint"


def _migrate_checkpoint_v0(document: dict) -> dict:
    """v0 → v1: stamp the version and the sections v1 made mandatory."""
    document.setdefault("driver", "sync")
    document.setdefault("loop", {})
    return document


def _migrate_checkpoint_v1(document: dict) -> dict:
    """v1 → v2: give the stored context its telemetry fields."""
    context = document.get("context")
    if isinstance(context, dict):
        context.setdefault("telemetry_mode", "off")
        context.setdefault("telemetry_dir", None)
    return document


#: migrations applied in sequence until a loaded document reaches
#: :data:`SESSION_CHECKPOINT_VERSION`; each entry upgrades *from* its key
_SESSION_CHECKPOINT_MIGRATIONS = {
    0: _migrate_checkpoint_v0,
    1: _migrate_checkpoint_v1,
}


def encode_state_blob(state) -> str:
    """Pickle ``state`` and return it base64-encoded for a JSON document.

    The checkpoint document is JSON end to end — trial history, budget,
    RNG state and context are all plain data — except for the algorithm's
    internal state (surrogate models, populations, rungs), which is
    arbitrary Python and goes through pickle.  The blob therefore carries
    pickle's usual trust model: only load checkpoints you (or your own
    interrupted runs) wrote, exactly as with any ``.pkl`` artifact.
    """
    return base64.b64encode(
        pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_state_blob(blob: str):
    """Invert :func:`encode_state_blob` (see its trust-model note)."""
    if not isinstance(blob, str):
        raise ValidationError(
            f"checkpoint state blob must be a base64 string, "
            f"got {type(blob).__name__}"
        )
    try:
        return pickle.loads(base64.b64decode(blob.encode("ascii")))
    except Exception as error:
        raise ValidationError(
            f"checkpoint state blob failed to decode: {error}"
        ) from error


def save_session_checkpoint(document: Mapping, path) -> Path:
    """Atomically write a session-checkpoint document; returns the path.

    Atomicity is what makes the checkpoint→kill→resume story safe: a
    crash mid-save leaves the previous complete checkpoint in place,
    never a truncated document.
    """
    document = dict(document)
    document.setdefault("format_version", SESSION_CHECKPOINT_VERSION)
    document.setdefault("kind", SESSION_CHECKPOINT_KIND)
    return atomic_write_text(path, json.dumps(document, indent=2))


def load_session_checkpoint(path) -> dict:
    """Load and validate a checkpoint written by :func:`save_session_checkpoint`."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ValidationError(
            f"cannot read session checkpoint at {path}: {error}"
        ) from error
    if not isinstance(document, dict) \
            or document.get("kind") != SESSION_CHECKPOINT_KIND:
        raise ValidationError(
            f"{path} is not a search-session checkpoint document"
        )
    version = document.get("format_version")
    if not isinstance(version, int):
        version = 0  # pre-versioning document
    if version > SESSION_CHECKPOINT_VERSION:
        raise ValidationError(
            f"session checkpoint uses format version {version}; this build "
            f"reads up to {SESSION_CHECKPOINT_VERSION} — load it with a "
            f"newer release, or re-run the search to produce a fresh "
            f"checkpoint"
        )
    # Upgrade older documents in place, one version step at a time, so a
    # single load path serves every format this build has ever written.
    while version < SESSION_CHECKPOINT_VERSION:
        document = _SESSION_CHECKPOINT_MIGRATIONS[version](document)
        version += 1
        document["format_version"] = version
    return document


def write_rows_csv(rows: Sequence[Mapping], path, *,
                   fieldnames: Iterable[str] | None = None) -> Path:
    """Write a list of flat dictionaries to ``path`` as CSV; returns the path.

    ``fieldnames`` fixes the column order; by default the keys of the first
    row are used (and every row must share them).
    """
    rows = list(rows)
    if not rows:
        raise ValidationError("write_rows_csv needs at least one row")
    names = list(fieldnames) if fieldnames is not None else list(rows[0].keys())
    # Render in memory and go through the atomic writer: summary CSVs sit
    # in result roots that dashboards read while experiments still run.
    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=names)
    writer.writeheader()
    for row in rows:
        writer.writerow({name: row.get(name, "") for name in names})
    return atomic_write_text(path, buffer.getvalue())


def read_rows_csv(path) -> list[dict]:
    """Read a CSV written by :func:`write_rows_csv` back into dictionaries.

    Values that parse as integers or floats are converted; everything else
    stays a string.
    """
    path = Path(path)
    rows: list[dict] = []
    with path.open(newline="", encoding="utf-8") as handle:
        for raw in csv.DictReader(handle):
            rows.append({key: _parse_value(value) for key, value in raw.items()})
    return rows


def _parse_value(value: str):
    if value is None or value == "":
        return None
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value
