"""Persistent cross-run evaluation cache.

The paper's experimental grid (45 datasets x 3 models x 15 algorithms x 6
time limits) re-evaluates many identical pipelines: repeated searches on the
same split, Hyperband rungs across runs, and whole experiment grids re-pay
the Prep+Train cost of every pipeline on every invocation.
:class:`PersistentEvalCache` is the disk layer below the evaluator's
in-memory LRU: a sharded JSON-lines append-log under a cache root, keyed by
the evaluator *fingerprint* (dataset split + model + subsample seed) and the
existing ``(pipeline spec, fidelity)`` memoization key, so a second run with
the same ``cache_dir`` answers every repeated evaluation from disk.

Design notes:

* **Append-log, not a database.**  Every ``put`` appends one self-contained
  JSON line; a key is never rewritten in place.  Loading replays the log
  (last write wins), which makes concurrent appenders — e.g. process-pool
  grid workers sharing one cache root — safe: appends are single
  ``write()`` calls on ``O_APPEND`` descriptors, and readers tolerate
  interleaved or torn lines.
* **Sharded by key hash.**  Entries spread over ``n_shards`` files so
  concurrent writers rarely touch the same file and loads stay small.
  Shards are read lazily, on the first lookup that hashes into them.
* **Corruption-tolerant.**  A truncated or garbled line (crash mid-write,
  torn concurrent append) is skipped, never fatal; everything before and
  after it still loads.
* **Fingerprint-scoped.**  All files live under
  ``<root>/<fingerprint>/``, so one cache root can serve many datasets,
  models and seeds without any risk of cross-contamination — a different
  split or model hashes to a different directory.
* **In-memory index.**  Loaded shards are indexed as plain dicts (one
  small entry of four scalars per key) and the index is not subject to
  the evaluator's ``cache_size`` LRU bound — it must know every key of
  its fingerprint to answer lookups without re-reading files.  At the
  paper's grid scale this is a few MB; bounding/evicting the index for
  very long-lived cache roots is a noted ROADMAP follow-up.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.exceptions import ValidationError

#: cache-format version; bump to invalidate old on-disk layouts
FORMAT_VERSION = 1

_META_NAME = "meta.json"


def key_token(key: tuple) -> str:
    """Canonical string form of an evaluator cache key.

    ``repr`` of the ``(pipeline spec, rounded fidelity)`` tuple is
    deterministic across processes and Python runs (no hash salting, exact
    float reprs), which is what makes it usable as an on-disk key.
    """
    return repr(key)


class PersistentEvalCache:
    """Disk-backed evaluation cache shared across runs and processes.

    Parameters
    ----------
    root:
        Cache root directory (created on first write).  Safe to share
        between evaluators: entries are namespaced by ``fingerprint``.
    fingerprint:
        Hex digest identifying the evaluation context (data split, model,
        subsample seed) — see ``PipelineEvaluator.fingerprint()``.
    n_shards:
        Number of append-log files the entries are spread over.
    """

    def __init__(self, root, *, fingerprint: str, n_shards: int = 16) -> None:
        if not fingerprint:
            raise ValidationError("fingerprint must be a non-empty string")
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ValidationError(f"n_shards must be at least 1, got {n_shards}")
        self.root = Path(root)
        self.fingerprint = str(fingerprint)
        self.n_shards = n_shards
        self._dir = self.root / self.fingerprint
        self._entries: dict[str, dict] = {}
        self._loaded_shards: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.skipped_lines = 0
        self._adopt_meta()

    # ------------------------------------------------------------------ API
    def get(self, key: tuple) -> dict | None:
        """Return the stored entry for ``key``, or ``None``."""
        token = key_token(key)
        self._ensure_shard(self._shard_of(token))
        entry = self._entries.get(token)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: tuple, entry: dict) -> None:
        """Append ``entry`` under ``key`` (write-through to disk)."""
        self.put_many([(key, entry)])

    def put_many(self, items) -> None:
        """Append a batch of ``(key, entry)`` pairs, grouped by shard.

        One engine batch becomes one ``write()`` per touched shard, so the
        merge-back after a parallel batch costs a handful of appends rather
        than one syscall per task.
        """
        by_shard: dict[int, list[str]] = {}
        for key, entry in items:
            token = key_token(key)
            shard = self._shard_of(token)
            self._ensure_shard(shard)
            if token in self._entries:
                continue  # deterministic evaluations: re-writing is pure noise
            self._entries[token] = entry
            line = json.dumps({"k": token, "e": entry}, separators=(",", ":"))
            by_shard.setdefault(shard, []).append(line)
            self.writes += 1
        if not by_shard:
            return
        self._ensure_layout()
        for shard, lines in by_shard.items():
            payload = "".join(line + "\n" for line in lines).encode("utf-8")
            # One os.write on an O_APPEND descriptor: the kernel seeks and
            # writes atomically, so concurrent appenders from other
            # processes cannot interleave inside the payload (a buffered
            # handle would split payloads over ~8KB into several writes).
            descriptor = os.open(self._shard_path(shard),
                                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(descriptor, payload)
            finally:
                os.close(descriptor)

    def __contains__(self, key: tuple) -> bool:
        token = key_token(key)
        self._ensure_shard(self._shard_of(token))
        return token in self._entries

    def __len__(self) -> int:
        self.load_all()
        return len(self._entries)

    def load_all(self) -> None:
        """Eagerly read every shard (lookups normally load shards lazily)."""
        for shard in range(self.n_shards):
            self._ensure_shard(shard)

    def refresh(self) -> None:
        """Re-read every previously loaded shard, picking up other writers.

        Lazy loading reads each shard once; entries appended afterwards by
        concurrent processes become visible only after a refresh.
        """
        shards = list(self._loaded_shards)
        self._loaded_shards.clear()
        for shard in shards:
            self._ensure_shard(shard)

    def info(self) -> dict:
        """Counters for cache reports and the warm-run assertions."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "entries": len(self._entries),
            "skipped_lines": self.skipped_lines,
            "path": str(self._dir),
        }

    # ------------------------------------------------------------ internals
    def _adopt_meta(self) -> None:
        """Make an existing root's meta.json authoritative on reopen.

        The shard count is a *layout* property: opening a populated root
        with a different ``n_shards`` would hash lookups into the wrong
        files and silently miss every stored entry, so the stored value
        wins.  A newer on-disk format version is refused rather than
        misread.  A missing or unreadable meta.json (pre-existing empty
        dir, torn copy) falls back to the constructor arguments.
        """
        self._meta_adopted = False
        try:
            meta = json.loads((self._dir / _META_NAME).read_text("utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # missing or unreadable: first write re-creates it
        self._meta_adopted = True
        version = meta.get("format_version")
        if isinstance(version, int) and version > FORMAT_VERSION:
            raise ValidationError(
                f"cache at {self._dir} uses format version {version}; "
                f"this build reads up to {FORMAT_VERSION}"
            )
        stored_shards = meta.get("n_shards")
        if isinstance(stored_shards, int) and stored_shards >= 1:
            self.n_shards = stored_shards

    def _shard_of(self, token: str) -> int:
        return zlib.crc32(token.encode("utf-8")) % self.n_shards

    def _shard_path(self, shard: int) -> Path:
        return self._dir / f"shard-{shard:02d}.jsonl"

    def _ensure_layout(self) -> None:
        if self._meta_adopted:
            return
        self._dir.mkdir(parents=True, exist_ok=True)
        from repro.io.serialization import atomic_write_text

        atomic_write_text(self._dir / _META_NAME, json.dumps({
            "format_version": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "n_shards": self.n_shards,
        }, indent=2))
        self._meta_adopted = True

    def _ensure_shard(self, shard: int) -> None:
        if shard in self._loaded_shards:
            return
        self._loaded_shards.add(shard)
        path = self._shard_path(shard)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                token = record["k"]
                entry = record["e"]
            except (json.JSONDecodeError, TypeError, KeyError):
                # Torn append or crash mid-write: skip the line, keep the rest.
                self.skipped_lines += 1
                continue
            if not isinstance(token, str) or not isinstance(entry, dict):
                self.skipped_lines += 1
                continue
            self._entries[token] = entry

    def __repr__(self) -> str:
        return (
            f"PersistentEvalCache(root={str(self.root)!r}, "
            f"fingerprint={self.fingerprint[:12]!r}..., "
            f"entries={len(self._entries)})"
        )


def open_eval_cache(cache_dir, fingerprint: str) -> PersistentEvalCache | None:
    """Build a cache for ``cache_dir`` (``None`` disables persistence)."""
    if cache_dir is None:
        return None
    return PersistentEvalCache(cache_dir, fingerprint=fingerprint)
