"""Persistent cross-run evaluation cache.

The paper's experimental grid (45 datasets x 3 models x 15 algorithms x 6
time limits) re-evaluates many identical pipelines: repeated searches on the
same split, Hyperband rungs across runs, and whole experiment grids re-pay
the Prep+Train cost of every pipeline on every invocation.
:class:`PersistentEvalCache` is the disk layer below the evaluator's
in-memory LRU: a sharded JSON-lines append-log under a cache root, keyed by
the evaluator *fingerprint* (dataset split + model + subsample seed) and the
existing ``(pipeline spec, fidelity)`` memoization key, so a second run with
the same ``cache_dir`` answers every repeated evaluation from disk.

Design notes:

* **Append-log, not a database.**  Every ``put`` appends one self-contained
  JSON line; a key is never rewritten in place.  Loading replays the log
  (last write wins), which makes concurrent appenders — e.g. process-pool
  grid workers sharing one cache root — safe: appends are single
  ``write()`` calls on ``O_APPEND`` descriptors, and readers tolerate
  interleaved or torn lines.
* **Sharded by key hash.**  Entries spread over ``n_shards`` files so
  concurrent writers rarely touch the same file and loads stay small.
  Shards are read lazily, on the first lookup that hashes into them.
* **Corruption-tolerant.**  A truncated or garbled line (crash mid-write,
  torn concurrent append) is skipped, never fatal; everything before and
  after it still loads.
* **Fingerprint-scoped.**  All files live under
  ``<root>/<fingerprint>/``, so one cache root can serve many datasets,
  models and seeds without any risk of cross-contamination — a different
  split or model hashes to a different directory.
* **Bounded in-memory index.**  Loaded shards are indexed in memory (one
  small entry of four scalars per key, but the key *tokens* — pipeline
  spec reprs — dominate).  With ``max_index_entries`` set (the evaluator
  passes its own ``cache_size``), the index is an LRU of that many
  entries, so a long-lived cache root holding millions of evaluations
  cannot grow the parent process without limit.  Eviction never loses
  data: a lookup that misses the index while its shard has suffered
  evictions falls back to re-scanning that one shard file (counted as a
  ``rescan``), and the found entry re-enters the index.  ``None``
  (default) keeps the historical unbounded behaviour.
"""

from __future__ import annotations

import json
import os
import zlib
from collections import OrderedDict
from pathlib import Path

from repro.exceptions import ValidationError
from repro.telemetry.metrics import MetricSet, metric_property

#: cache-format version; bump to invalidate old on-disk layouts
FORMAT_VERSION = 1

_META_NAME = "meta.json"


def key_token(key: tuple) -> str:
    """Canonical string form of an evaluator cache key.

    ``repr`` of the ``(pipeline spec, rounded fidelity)`` tuple is
    deterministic across processes and Python runs (no hash salting, exact
    float reprs), which is what makes it usable as an on-disk key.
    """
    return repr(key)


def _replay_shard(path: Path, into: dict) -> tuple[int, int]:
    """Replay one append-log file into ``into`` (last write wins).

    Returns ``(raw_lines, skipped_lines)``: every non-blank line counts as
    raw, and a torn or garbled line (crash mid-write, concurrent append) is
    skipped rather than fatal.  The single replay pass serves shard loading,
    ``cache_stats`` and :meth:`PersistentEvalCache.compact`, so each file is
    read exactly once per operation.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except (FileNotFoundError, OSError):
        return 0, 0
    raw_lines = 0
    skipped = 0
    for line in text.splitlines():
        if not line.strip():
            continue
        raw_lines += 1
        try:
            record = json.loads(line)
            token = record["k"]
            entry = record["e"]
        except (json.JSONDecodeError, TypeError, KeyError):
            skipped += 1
            continue
        if not isinstance(token, str) or not isinstance(entry, dict):
            skipped += 1
            continue
        into[token] = entry
    return raw_lines, skipped


class PersistentEvalCache:
    """Disk-backed evaluation cache shared across runs and processes.

    Parameters
    ----------
    root:
        Cache root directory (created on first write).  Safe to share
        between evaluators: entries are namespaced by ``fingerprint``.
    fingerprint:
        Hex digest identifying the evaluation context (data split, model,
        subsample seed) — see ``PipelineEvaluator.fingerprint()``.
    n_shards:
        Number of append-log files the entries are spread over.
    max_index_entries:
        Optional bound on the in-memory index (LRU over entries).  An
        index miss whose shard has evicted entries re-scans that shard
        file; ``None`` keeps every loaded entry in memory.
    """

    def __init__(self, root, *, fingerprint: str, n_shards: int = 16,
                 max_index_entries: int | None = None) -> None:
        if not fingerprint:
            raise ValidationError("fingerprint must be a non-empty string")
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ValidationError(f"n_shards must be at least 1, got {n_shards}")
        if max_index_entries is not None:
            max_index_entries = int(max_index_entries)
            if max_index_entries < 1:
                raise ValidationError(
                    f"max_index_entries must be at least 1, "
                    f"got {max_index_entries}"
                )
        self.root = Path(root)
        self.fingerprint = str(fingerprint)
        self.n_shards = n_shards
        self.max_index_entries = max_index_entries
        self._dir = self.root / self.fingerprint
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._loaded_shards: set[int] = set()
        #: shards that have had index entries evicted since their last full
        #: read: an index miss there is inconclusive and triggers a rescan
        self._evicted_shards: set[int] = set()
        #: per-shard Bloom-style bitsets over every token known to be on
        #: disk (bounded mode only).  A lookup missing both the index and
        #: the filter is an authoritative miss — crucial because during an
        #: active search most lookups are for never-evaluated pipelines,
        #: and paying a shard-file rescan for each would make misses
        #: O(shard size) once any eviction happened.  False positives just
        #: cost one wasted rescan.
        self._shard_filters: dict[int, bytearray] = {}
        #: monotonic counters, telemetry-backed; the classic attribute
        #: spellings (``cache.hits`` etc.) remain as properties below
        self.metrics = MetricSet(self.COUNTER_NAMES)
        self._adopt_meta()

    #: the monotonic counters this cache maintains
    COUNTER_NAMES: tuple[str, ...] = (
        "hits", "misses", "writes", "skipped_lines", "index_evictions",
        "rescans",
    )

    hits = metric_property("hits")
    misses = metric_property("misses")
    writes = metric_property("writes")
    skipped_lines = metric_property("skipped_lines")
    index_evictions = metric_property("index_evictions")
    rescans = metric_property("rescans")

    # ------------------------------------------------------------------ API
    def get(self, key: tuple) -> dict | None:
        """Return the stored entry for ``key``, or ``None``."""
        token = key_token(key)
        entry = self._lookup(token)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: tuple, entry: dict) -> None:
        """Append ``entry`` under ``key`` (write-through to disk)."""
        self.put_many([(key, entry)])

    def put_many(self, items) -> None:
        """Append a batch of ``(key, entry)`` pairs, grouped by shard.

        One engine batch becomes one ``write()`` per touched shard, so the
        merge-back after a parallel batch costs a handful of appends rather
        than one syscall per task.
        """
        by_shard: dict[int, list[str]] = {}
        for key, entry in items:
            token = key_token(key)
            shard = self._shard_of(token)
            self._ensure_shard(shard)
            if token in self._entries:
                continue  # deterministic evaluations: re-writing is pure noise
            # Underscore-prefixed entry keys are reserved for in-memory
            # telemetry payloads (worker metric deltas, phase timings) and
            # must never reach the append-log: a cache populated by a traced
            # run has to stay byte-identical to one from an untraced run.
            if any(name.startswith("_") for name in entry):
                entry = {name: value for name, value in entry.items()
                         if not name.startswith("_")}
            # A bounded index may have evicted this token even though the
            # entry is on disk; the resulting duplicate append is harmless
            # (last write wins, and compaction removes it).
            self._remember(token, entry)
            line = json.dumps({"k": token, "e": entry}, separators=(",", ":"))
            by_shard.setdefault(shard, []).append(line)
            self.writes += 1
        if not by_shard:
            return
        self._ensure_layout()
        for shard, lines in by_shard.items():
            payload = "".join(line + "\n" for line in lines).encode("utf-8")
            # One os.write on an O_APPEND descriptor: the kernel seeks and
            # writes atomically, so concurrent appenders from other
            # processes cannot interleave inside the payload (a buffered
            # handle would split payloads over ~8KB into several writes).
            descriptor = os.open(self._shard_path(shard),
                                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(descriptor, payload)
            finally:
                os.close(descriptor)

    def __contains__(self, key: tuple) -> bool:
        return self._lookup(key_token(key)) is not None

    def __len__(self) -> int:
        """Number of indexed entries (the *index* size under a bound)."""
        self.load_all()
        return len(self._entries)

    def load_all(self) -> None:
        """Eagerly read every shard (lookups normally load shards lazily)."""
        for shard in range(self.n_shards):
            self._ensure_shard(shard)

    def refresh(self) -> None:
        """Re-read every previously loaded shard, picking up other writers.

        Lazy loading reads each shard once; entries appended afterwards by
        concurrent processes become visible only after a refresh.
        """
        shards = list(self._loaded_shards)
        self._loaded_shards.clear()
        for shard in shards:
            self._ensure_shard(shard)

    def info(self) -> dict:
        """Counters for cache reports and the warm-run assertions."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "entries": len(self._entries),
            "skipped_lines": self.skipped_lines,
            "index_evictions": self.index_evictions,
            "rescans": self.rescans,
            "max_index_entries": self.max_index_entries,
            "path": str(self._dir),
        }

    def compact(self) -> dict:
        """Rewrite every shard with only its live entries; return a summary.

        The append-log only grows: concurrent writers may append the same
        key more than once, crashes leave torn lines, and superseded lines
        are never removed in place.  Compaction replays the log (the same
        last-write-wins rule lookups use) and atomically rewrites each
        shard with exactly one line per live key, dropping duplicates and
        corrupt lines.  Safe on a cache no other process is appending to;
        a concurrent appender could have its fresh lines dropped by the
        rewrite.
        """
        from repro.io.serialization import atomic_write_text

        # One replay pass per shard yields both the raw line count and the
        # live entries; the replayed state replaces the in-memory index
        # (every put() writes through to disk first, so nothing is lost).
        live: dict[str, dict] = {}
        before_lines = 0
        skipped = 0
        for shard in range(self.n_shards):
            raw, bad = _replay_shard(self._shard_path(shard), live)
            before_lines += raw
            skipped += bad
        # Compaction needs every live entry at once to rewrite the files (a
        # transient spike under a bounded index, acceptable for a
        # maintenance operation); the index is re-trimmed after the rewrite.
        self._entries = OrderedDict(live)
        self._loaded_shards = set(range(self.n_shards))
        self._evicted_shards.clear()
        if self.max_index_entries is not None:
            self._shard_filters = {}
            for token in self._entries:
                self._filter_add(self._shard_of(token), token)
        by_shard: dict[int, list[str]] = {}
        for token, entry in self._entries.items():
            line = json.dumps({"k": token, "e": entry}, separators=(",", ":"))
            by_shard.setdefault(self._shard_of(token), []).append(line)
        self._ensure_layout()
        for shard in range(self.n_shards):
            path = self._shard_path(shard)
            lines = by_shard.get(shard)
            if lines:
                atomic_write_text(path, "".join(line + "\n" for line in lines))
            elif path.exists():
                path.unlink()
        live_entries = len(self._entries)
        self._trim()
        return {
            "path": str(self._dir),
            "lines_before": before_lines,
            "entries": live_entries,
            "lines_removed": before_lines - live_entries,
            "skipped_lines": skipped,
        }

    # ------------------------------------------------------------ internals
    def _adopt_meta(self) -> None:
        """Make an existing root's meta.json authoritative on reopen.

        The shard count is a *layout* property: opening a populated root
        with a different ``n_shards`` would hash lookups into the wrong
        files and silently miss every stored entry, so the stored value
        wins.  A newer on-disk format version is refused rather than
        misread.  A missing or unreadable meta.json (pre-existing empty
        dir, torn copy) falls back to the constructor arguments.
        """
        self._meta_adopted = False
        try:
            meta = json.loads((self._dir / _META_NAME).read_text("utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # missing or unreadable: first write re-creates it
        self._meta_adopted = True
        version = meta.get("format_version")
        if isinstance(version, int) and version > FORMAT_VERSION:
            raise ValidationError(
                f"cache at {self._dir} uses format version {version}; "
                f"this build reads up to {FORMAT_VERSION}"
            )
        stored_shards = meta.get("n_shards")
        if isinstance(stored_shards, int) and stored_shards >= 1:
            self.n_shards = stored_shards

    def _shard_of(self, token: str) -> int:
        return zlib.crc32(token.encode("utf-8")) % self.n_shards

    def _shard_path(self, shard: int) -> Path:
        return self._dir / f"shard-{shard:02d}.jsonl"

    def _ensure_layout(self) -> None:
        if self._meta_adopted:
            return
        self._dir.mkdir(parents=True, exist_ok=True)
        from repro.io.serialization import atomic_write_text

        atomic_write_text(self._dir / _META_NAME, json.dumps({
            "format_version": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "n_shards": self.n_shards,
        }, indent=2))
        self._meta_adopted = True

    def _ensure_shard(self, shard: int) -> None:
        if shard in self._loaded_shards:
            return
        self._loaded_shards.add(shard)
        if self.max_index_entries is None:
            _, skipped = _replay_shard(self._shard_path(shard), self._entries)
        else:
            # Replay into a scratch dict first so the membership filter can
            # see every on-disk token of this shard before the LRU bound
            # possibly evicts some of them.
            scratch: dict[str, dict] = {}
            _, skipped = _replay_shard(self._shard_path(shard), scratch)
            for token in scratch:
                self._filter_add(shard, token)
            self._entries.update(scratch)
        self.skipped_lines += skipped
        self._trim()

    # ------------------------------------------------- bounded-index plumbing
    #: bits per shard filter (2^20 bits = 128 KiB); with two hash functions
    #: this stays useful up to a few hundred thousand tokens per shard
    _FILTER_BITS = 1 << 20

    def _filter_positions(self, token: str) -> tuple[int, int]:
        data = token.encode("utf-8")
        return (zlib.crc32(data) % self._FILTER_BITS,
                zlib.crc32(data, 0x9E3779B9) % self._FILTER_BITS)

    def _filter_add(self, shard: int, token: str) -> None:
        bits = self._shard_filters.get(shard)
        if bits is None:
            bits = self._shard_filters[shard] = bytearray(self._FILTER_BITS // 8)
        for position in self._filter_positions(token):
            bits[position >> 3] |= 1 << (position & 7)

    def _filter_contains(self, shard: int, token: str) -> bool:
        bits = self._shard_filters.get(shard)
        if bits is None:
            return False
        return all(bits[position >> 3] & (1 << (position & 7))
                   for position in self._filter_positions(token))

    def _lookup(self, token: str) -> dict | None:
        """Index lookup with the shard-rescan fallback for evicted entries."""
        shard = self._shard_of(token)
        self._ensure_shard(shard)
        entry = self._entries.get(token)
        if entry is not None:
            if self.max_index_entries is not None:
                self._entries.move_to_end(token)
            return entry
        if shard not in self._evicted_shards:
            return None  # the index saw the whole shard: authoritative miss
        if not self._filter_contains(shard, token):
            return None  # never written to this shard: no rescan needed
        entry = self._probe_shard(shard, token)
        if entry is not None:
            self._remember(token, entry)
        return entry

    def _remember(self, token: str, entry: dict) -> None:
        if self.max_index_entries is not None:
            self._filter_add(self._shard_of(token), token)
        self._entries[token] = entry
        self._entries.move_to_end(token)
        self._trim()

    def _trim(self) -> None:
        if self.max_index_entries is None:
            return
        while len(self._entries) > self.max_index_entries:
            evicted_token, _ = self._entries.popitem(last=False)
            self._evicted_shards.add(self._shard_of(evicted_token))
            self.index_evictions += 1

    def _probe_shard(self, shard: int, token: str) -> dict | None:
        """Re-scan one shard file for ``token`` (last valid write wins).

        The escape hatch that makes the bounded index lossless: the entry
        is still in the append-log even after the index evicted it.  Only
        the matching line is kept, so the probe costs I/O but no memory.
        """
        self.rescans += 1
        found = None
        try:
            text = self._shard_path(shard).read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        for line in text.splitlines():
            if not line.strip() or token not in line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and record.get("k") == token \
                    and isinstance(record.get("e"), dict):
                found = record["e"]
        return found

    def __repr__(self) -> str:
        return (
            f"PersistentEvalCache(root={str(self.root)!r}, "
            f"fingerprint={self.fingerprint[:12]!r}..., "
            f"entries={len(self._entries)})"
        )


def open_eval_cache(cache_dir, fingerprint: str, *,
                    max_index_entries: int | None = None,
                    ) -> PersistentEvalCache | None:
    """Build a cache for ``cache_dir`` (``None`` disables persistence).

    ``max_index_entries`` bounds the in-memory index; the evaluator passes
    its own ``cache_size`` so both memory layers obey one knob.
    """
    if cache_dir is None:
        return None
    return PersistentEvalCache(cache_dir, fingerprint=fingerprint,
                               max_index_entries=max_index_entries)


# ------------------------------------------------- cache-root maintenance
def list_fingerprints(root) -> list[str]:
    """Fingerprint directories under ``root``, most recently written first.

    Recency is the newest mtime of any file in the fingerprint directory —
    an appender touches its shard files, so this orders by last actual use.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    stamped = []
    for child in root.iterdir():
        if not child.is_dir() or not (child / _META_NAME).exists():
            continue
        mtimes = [entry.stat().st_mtime for entry in child.iterdir()
                  if entry.is_file()]
        stamped.append((max(mtimes, default=child.stat().st_mtime), child.name))
    stamped.sort(reverse=True)
    return [name for _, name in stamped]


def cache_stats(root) -> list[dict]:
    """Per-fingerprint statistics of a cache root (``repro evalcache stats``).

    Each row reports the fingerprint, its shard and live-entry counts, the
    raw line count of the append-log (lines > entries means duplicates or
    torn lines that compaction would remove) and the on-disk byte size.
    Rows come back most recently used first, matching what ``prune`` keeps.
    """
    rows = []
    for fingerprint in list_fingerprints(root):
        cache = PersistentEvalCache(root, fingerprint=fingerprint)
        directory = cache._dir
        live: dict[str, dict] = {}
        lines = 0
        disk_bytes = 0
        n_shard_files = 0
        for path in sorted(directory.iterdir()):
            if not path.is_file():
                continue
            disk_bytes += path.stat().st_size
            if path.suffix == ".jsonl":
                n_shard_files += 1
                raw, _ = _replay_shard(path, live)
                lines += raw
        rows.append({
            "fingerprint": fingerprint,
            "n_shards": cache.n_shards,
            "shard_files": n_shard_files,
            "entries": len(live),
            "lines": lines,
            "bytes": disk_bytes,
        })
    return rows


def prune_cache_root(root, *, keep_fingerprints: int) -> dict:
    """Keep the ``keep_fingerprints`` most recently used fingerprints.

    Older fingerprint directories are deleted outright; the kept ones are
    compacted (duplicate and torn append-log lines rewritten away, see
    :meth:`PersistentEvalCache.compact`).  This is the maintenance story
    for long-lived cache roots, whose append-logs otherwise only grow.
    Returns a summary with the kept/removed fingerprints and the number of
    log lines compaction removed.  Do not run while another process is
    appending to the same root.
    """
    import shutil

    keep_fingerprints = int(keep_fingerprints)
    if keep_fingerprints < 0:
        raise ValidationError(
            f"keep_fingerprints must be >= 0, got {keep_fingerprints}"
        )
    fingerprints = list_fingerprints(root)
    kept = fingerprints[:keep_fingerprints]
    removed = fingerprints[keep_fingerprints:]
    for fingerprint in removed:
        shutil.rmtree(Path(root) / fingerprint)
    lines_removed = 0
    for fingerprint in kept:
        summary = PersistentEvalCache(root, fingerprint=fingerprint).compact()
        lines_removed += summary["lines_removed"]
    return {
        "root": str(root),
        "kept": kept,
        "removed": removed,
        "lines_removed": lines_removed,
    }
