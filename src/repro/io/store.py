"""Directory-backed store of search results.

The paper's raw experimental data covers 45 datasets x 3 models x 15
algorithms x 6 time limits; keeping that many runs organised needs more
than ad-hoc file names.  :class:`ResultStore` maps one search run to one
JSON file under ``<root>/<dataset>/<model>/<algorithm>[-<tag>].json`` and
offers listing, loading and flattening into summary rows for CSV export.

Tagged runs are stored as ``<algorithm>--<tag>.json``: the double-hyphen
separator cannot appear inside a validated key component, so hyphenated
algorithm names like ``random-search`` round-trip through
:meth:`ResultStore.keys` unambiguously (a single ``-`` used to be the
separator, which split such names into a wrong (algorithm, tag) pair).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.core.result import SearchResult
from repro.exceptions import ValidationError
from repro.io.serialization import load_search_result, save_search_result

_KEY_PATTERN = re.compile(r"^[A-Za-z0-9_.\-]+$")

#: separator between algorithm and tag in a stored file stem; components may
#: contain single hyphens but never this sequence, so the split is unambiguous
_TAG_SEPARATOR = "--"


@dataclass(frozen=True)
class ResultKey:
    """Identifies one stored search run."""

    dataset: str
    model: str
    algorithm: str
    tag: str = ""

    def relative_path(self) -> Path:
        """Path of this run's JSON file relative to the store root."""
        stem = (self.algorithm if not self.tag
                else f"{self.algorithm}{_TAG_SEPARATOR}{self.tag}")
        return Path(self.dataset) / self.model / f"{stem}.json"


def _check_component(value: str, name: str) -> str:
    if not value or not _KEY_PATTERN.match(value):
        raise ValidationError(
            f"{name} must be a non-empty string of letters, digits, '_', '-' "
            f"or '.', got {value!r}"
        )
    if _TAG_SEPARATOR in value or value.startswith("-") or value.endswith("-"):
        raise ValidationError(
            f"{name} may contain single hyphens but not {_TAG_SEPARATOR!r}, "
            f"and may not start or end with '-', got {value!r}"
        )
    return value


class ResultStore:
    """Store and retrieve :class:`~repro.core.result.SearchResult` objects.

    Parameters
    ----------
    root:
        Directory that holds the store (created on first save).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ API
    def key(self, dataset: str, model: str, algorithm: str, tag: str = "") -> ResultKey:
        """Build (and validate) a result key."""
        _check_component(dataset, "dataset")
        _check_component(model, "model")
        _check_component(algorithm, "algorithm")
        if tag:
            _check_component(tag, "tag")
        return ResultKey(dataset=dataset, model=model, algorithm=algorithm, tag=tag)

    def path_for(self, key: ResultKey) -> Path:
        """Absolute path of the JSON file backing ``key``."""
        return self.root / key.relative_path()

    def save(self, key: ResultKey, result: SearchResult) -> Path:
        """Persist ``result`` under ``key``; returns the written path."""
        return save_search_result(result, self.path_for(key))

    def load(self, key: ResultKey) -> SearchResult:
        """Load the result stored under ``key``."""
        path = self.path_for(key)
        if not path.exists():
            raise ValidationError(f"no stored result for {key}")
        return load_search_result(path)

    def exists(self, key: ResultKey) -> bool:
        """Whether a result is stored under ``key``."""
        return self.path_for(key).exists()

    def keys(self) -> list[ResultKey]:
        """All keys currently stored, sorted for reproducible iteration."""
        found: list[ResultKey] = []
        if not self.root.exists():
            return found
        for path in sorted(self.root.glob("*/*/*.json")):
            algorithm, _, tag = path.stem.partition(_TAG_SEPARATOR)
            found.append(ResultKey(
                dataset=path.parent.parent.name,
                model=path.parent.name,
                algorithm=algorithm,
                tag=tag,
            ))
        return found

    def summary_rows(self) -> list[dict]:
        """Flatten every stored run into one row (for CSV export / ranking)."""
        rows = []
        for key in self.keys():
            result = self.load(key)
            row = {
                "dataset": key.dataset,
                "model": key.model,
                "algorithm": key.algorithm,
                "tag": key.tag,
                "n_trials": len(result),
                "best_accuracy": result.best_accuracy,
                "baseline_accuracy": result.baseline_accuracy,
            }
            improvement = result.improvement_over_baseline()
            row["improvement_points"] = improvement
            rows.append(row)
        return rows

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r}, n_results={len(self)})"
