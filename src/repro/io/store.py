"""Directory-backed store of search results.

The paper's raw experimental data covers 45 datasets x 3 models x 15
algorithms x 6 time limits; keeping that many runs organised needs more
than ad-hoc file names.  :class:`ResultStore` maps one search run to one
JSON file under ``<root>/<dataset>/<model>/<algorithm>[-<tag>].json`` and
offers listing, loading and flattening into summary rows for CSV export.

Tagged runs are stored as ``<algorithm>--<tag>.json``: the double-hyphen
separator cannot appear inside a validated key component, so hyphenated
algorithm names like ``random-search`` round-trip through
:meth:`ResultStore.keys` unambiguously (a single ``-`` used to be the
separator, which split such names into a wrong (algorithm, tag) pair).

Saved documents carry a ``format_version`` marker
(:data:`~repro.io.serialization.RESULT_FORMAT_VERSION`).  Stores written
*before* the separator change lack the marker and used single-hyphen stems
for tagged runs — after the change those stems re-parsed with the whole
``<algorithm>-<tag>`` absorbed into the algorithm name.  :meth:`ResultStore.keys`
now shims such legacy files: an unmarked stem containing a hyphen is
disambiguated against the document's own ``algorithm`` field, and
:meth:`ResultStore.load` falls back to the legacy path, so old tagged runs
round-trip correctly (re-saving them migrates to the ``--`` layout).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.core.result import SearchResult
from repro.exceptions import ValidationError
from repro.io.serialization import (
    RESULT_FORMAT_VERSION,
    load_search_result,
    load_session_checkpoint,
    save_search_result,
    save_session_checkpoint,
)

_KEY_PATTERN = re.compile(r"^[A-Za-z0-9_.\-]+$")

#: separator between algorithm and tag in a stored file stem; components may
#: contain single hyphens but never this sequence, so the split is unambiguous
_TAG_SEPARATOR = "--"


@dataclass(frozen=True)
class ResultKey:
    """Identifies one stored search run."""

    dataset: str
    model: str
    algorithm: str
    tag: str = ""

    def relative_path(self) -> Path:
        """Path of this run's JSON file relative to the store root."""
        stem = (self.algorithm if not self.tag
                else f"{self.algorithm}{_TAG_SEPARATOR}{self.tag}")
        return Path(self.dataset) / self.model / f"{stem}.json"


def _check_component(value: str, name: str) -> str:
    if not value or not _KEY_PATTERN.match(value):
        raise ValidationError(
            f"{name} must be a non-empty string of letters, digits, '_', '-' "
            f"or '.', got {value!r}"
        )
    if _TAG_SEPARATOR in value or value.startswith("-") or value.endswith("-"):
        raise ValidationError(
            f"{name} may contain single hyphens but not {_TAG_SEPARATOR!r}, "
            f"and may not start or end with '-', got {value!r}"
        )
    return value


class ResultStore:
    """Store and retrieve :class:`~repro.core.result.SearchResult` objects.

    Parameters
    ----------
    root:
        Directory that holds the store (created on first save).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        #: (algorithm, tag) per ambiguous file, keyed by (path, mtime_ns) so
        #: keys() does not re-read whole documents on every listing call
        self._stem_memo: dict = {}

    # ------------------------------------------------------------------ API
    def key(self, dataset: str, model: str, algorithm: str, tag: str = "") -> ResultKey:
        """Build (and validate) a result key."""
        _check_component(dataset, "dataset")
        _check_component(model, "model")
        _check_component(algorithm, "algorithm")
        if tag:
            _check_component(tag, "tag")
        return ResultKey(dataset=dataset, model=model, algorithm=algorithm, tag=tag)

    def path_for(self, key: ResultKey) -> Path:
        """Absolute path of the JSON file backing ``key``."""
        return self.root / key.relative_path()

    def save(self, key: ResultKey, result: SearchResult) -> Path:
        """Persist ``result`` under ``key``; returns the written path.

        Saving a tagged key that so far only existed at its legacy
        single-hyphen path migrates it: the current ``--`` layout is
        written first, then the superseded legacy file is removed so the
        run is not listed twice by :meth:`keys`.
        """
        path = save_search_result(result, self.path_for(key))
        if key.tag:
            legacy = self._legacy_path(key)
            if self._is_legacy_file_for(key, legacy):
                legacy.unlink()
        return path

    def load(self, key: ResultKey) -> SearchResult:
        """Load the result stored under ``key``."""
        path = self._existing_path(key)
        if not path.exists():
            raise ValidationError(f"no stored result for {key}")
        return load_search_result(path)

    def exists(self, key: ResultKey) -> bool:
        """Whether a result is stored under ``key``."""
        return self._existing_path(key).exists()

    def keys(self) -> list[ResultKey]:
        """All keys currently stored, sorted for reproducible iteration."""
        found: list[ResultKey] = []
        if not self.root.exists():
            return found
        for path in sorted(self.root.glob("*/*/*.json")):
            algorithm, separator, tag = path.stem.partition(_TAG_SEPARATOR)
            if not separator and "-" in path.stem:
                algorithm, tag = self._parse_unmarked_stem(path)
            found.append(ResultKey(
                dataset=path.parent.parent.name,
                model=path.parent.name,
                algorithm=algorithm,
                tag=tag,
            ))
        return found

    def summary_rows(self) -> list[dict]:
        """Flatten every stored run into one row (for CSV export / ranking)."""
        rows = []
        for key in self.keys():
            result = self.load(key)
            row = {
                "dataset": key.dataset,
                "model": key.model,
                "algorithm": key.algorithm,
                "tag": key.tag,
                "n_trials": len(result),
                "best_accuracy": result.best_accuracy,
                "baseline_accuracy": result.baseline_accuracy,
            }
            improvement = result.improvement_over_baseline()
            row["improvement_points"] = improvement
            rows.append(row)
        return rows

    # -------------------------------------------------------- checkpoints
    def checkpoint_path_for(self, key: ResultKey) -> Path:
        """Path of the session checkpoint stored alongside ``key``.

        Checkpoints live next to their run's result file with a
        ``.checkpoint`` extension (JSON content), which keeps them out of
        the ``*.json`` globs :meth:`keys` and :meth:`summary_rows` scan —
        an interrupted run never shows up as a finished result.
        """
        path = self.path_for(key)
        return path.with_suffix(".checkpoint")

    def save_checkpoint(self, key: ResultKey, document) -> Path:
        """Persist a ``SearchSession`` checkpoint document under ``key``."""
        return save_session_checkpoint(document, self.checkpoint_path_for(key))

    def load_checkpoint(self, key: ResultKey) -> dict:
        """Load the checkpoint stored under ``key``."""
        path = self.checkpoint_path_for(key)
        if not path.exists():
            raise ValidationError(f"no stored checkpoint for {key}")
        return load_session_checkpoint(path)

    def has_checkpoint(self, key: ResultKey) -> bool:
        """Whether a session checkpoint is stored under ``key``."""
        return self.checkpoint_path_for(key).exists()

    def discard_checkpoint(self, key: ResultKey) -> bool:
        """Remove ``key``'s checkpoint (e.g. after the run finished)."""
        path = self.checkpoint_path_for(key)
        if not path.exists():
            return False
        path.unlink()
        return True

    # ------------------------------------------------------------ internals
    def _legacy_path(self, key: ResultKey) -> Path:
        """Where a pre-``--`` store would have written a tagged ``key``."""
        return (self.root / key.dataset / key.model
                / f"{key.algorithm}-{key.tag}.json")

    def _existing_path(self, key: ResultKey) -> Path:
        """The file backing ``key``: current layout, else the legacy one.

        Tagged runs saved before the ``--`` separator live at
        ``<algorithm>-<tag>.json``; loading them through the shimmed key
        works in place, and re-saving writes the current layout.
        """
        path = self.path_for(key)
        if path.exists() or not key.tag:
            return path
        legacy = self._legacy_path(key)
        return legacy if self._is_legacy_file_for(key, legacy) else path

    def _is_legacy_file_for(self, key: ResultKey, legacy: Path) -> bool:
        """Whether ``legacy`` really is ``key``'s pre-``--`` file.

        The stem ``<algorithm>-<tag>`` alone is ambiguous: the same name
        could belong to a *modern untagged* run of a hyphenated algorithm
        (``tevo-h.json`` for algorithm ``tevo-h``).  Only a document that
        re-parses to exactly this key's (algorithm, tag) — i.e. an
        unmarked legacy document naming ``key.algorithm`` — may be loaded
        through, or deleted after migration by, the shim.
        """
        if not legacy.exists():
            return False
        return self._parse_unmarked_stem(legacy) == (key.algorithm, key.tag)

    def _parse_unmarked_stem(self, path: Path) -> tuple[str, str]:
        """Disambiguate a hyphenated stem with no ``--`` separator.

        Such a stem is either a modern untagged run of a hyphenated
        algorithm (``random-search.json``) or a *legacy* tagged run whose
        single-hyphen separator predates the format marker
        (``rs-seed1.json``).  The document itself settles it: a marked
        document (``format_version`` >= 2) was written under the current
        layout, and an unmarked one names its algorithm, so whatever the
        stem carries beyond ``<algorithm>-`` is the tag.
        """
        try:
            memo_key = (path, path.stat().st_mtime_ns)
        except OSError:
            memo_key = None
        if memo_key is not None and memo_key in self._stem_memo:
            return self._stem_memo[memo_key]
        parsed = self._parse_unmarked_document(path)
        if memo_key is not None:
            self._stem_memo[memo_key] = parsed
            if len(self._stem_memo) > 4096:  # bound pathological stores
                self._stem_memo.pop(next(iter(self._stem_memo)))
        return parsed

    def _parse_unmarked_document(self, path: Path) -> tuple[str, str]:
        stem = path.stem
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return stem, ""
        if not isinstance(data, dict):
            return stem, ""
        version = data.get("format_version")
        if isinstance(version, int) and version >= RESULT_FORMAT_VERSION:
            return stem, ""
        algorithm = data.get("algorithm")
        if isinstance(algorithm, str) and algorithm \
                and stem.startswith(algorithm + "-"):
            return algorithm, stem[len(algorithm) + 1:]
        return stem, ""

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r}, n_results={len(self)})"
