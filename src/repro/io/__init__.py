"""Result persistence: JSON results, CSV summaries, result store, eval cache."""

from repro.io.evalcache import PersistentEvalCache, open_eval_cache
from repro.io.serialization import (
    atomic_write_text,
    decode_state_blob,
    encode_state_blob,
    load_session_checkpoint,
    save_session_checkpoint,
    load_search_result,
    pipeline_from_dict,
    pipeline_to_dict,
    read_rows_csv,
    save_search_result,
    search_result_from_dict,
    search_result_to_dict,
    trial_from_dict,
    trial_to_dict,
    write_rows_csv,
)
from repro.io.store import ResultKey, ResultStore

__all__ = [
    "PersistentEvalCache",
    "open_eval_cache",
    "atomic_write_text",
    "pipeline_to_dict",
    "pipeline_from_dict",
    "trial_to_dict",
    "trial_from_dict",
    "search_result_to_dict",
    "search_result_from_dict",
    "save_search_result",
    "load_search_result",
    "save_session_checkpoint",
    "load_session_checkpoint",
    "encode_state_blob",
    "decode_state_blob",
    "write_rows_csv",
    "read_rows_csv",
    "ResultKey",
    "ResultStore",
]
