"""Metrics: named counters, gauges and histograms with a merge protocol.

Two layers, matching how the library actually counts things:

* :class:`MetricSet` — a small, picklable bag of named scalar counters
  owned by *one instance* (a prefix cache, a persistent eval cache, an
  evaluator's LRU).  Instance ownership is deliberate: tests and
  ``cache_info()`` reports reason about *this evaluator's* hits, not a
  process-wide aggregate, and a pickled evaluator must carry its counter
  storage into pool workers.  The class exposes plain ``inc``/``get``
  plus :meth:`snapshot`; :func:`metric_property` grafts classic
  attribute access (``cache.hits``, ``cache.hits += 1``) onto a
  ``MetricSet``-backed class so every historical call site keeps
  working.
* :class:`MetricsRegistry` — the process-wide registry behind
  :func:`get_registry`, holding genuinely global series: the execution
  engine's in-flight gauge, budget-refund counters, span histograms.
  Series support labels (``registry.counter("x", backend="thread")``)
  and the whole registry snapshots to one flat dict for heartbeats.

The worker→parent shipping protocol: a process-pool worker snapshots a
``MetricSet`` before and after an evaluation, ships
``after.diff(before)`` (a :class:`MetricsSnapshot`) back on the result
entry under a reserved key, and the parent absorbs it with
:meth:`MetricSet.merge` — so reuse that happened in another address
space still shows up in the parent's reports.  ``MetricsSnapshot`` is a
``dict`` subclass: JSON-serializable, picklable, and directly usable by
every call site that handled the old plain-dict counter deltas.
"""

from __future__ import annotations

import threading

from repro.exceptions import ValidationError


class MetricsSnapshot(dict):
    """A point-in-time reading of named scalar metrics.

    A plain ``dict`` of ``name -> number`` plus the two protocol
    operations: :meth:`diff` (what changed since an earlier snapshot —
    the payload a pool worker ships to its parent) and :meth:`merge`
    (combine readings from several sources into one).
    """

    def diff(self, earlier) -> "MetricsSnapshot":
        """Non-zero changes since ``earlier`` (missing names count as 0)."""
        earlier = earlier or {}
        delta = MetricsSnapshot()
        for name in set(self) | set(earlier):
            change = self.get(name, 0) - earlier.get(name, 0)
            if change:
                delta[name] = change
        return delta

    def merge(self, other) -> "MetricsSnapshot":
        """A new snapshot with ``other``'s values added onto this one's."""
        merged = MetricsSnapshot(self)
        for name, value in (other or {}).items():
            merged[name] = merged.get(name, 0) + value
        return merged

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return dict(self)

    @classmethod
    def from_dict(cls, data) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValidationError(
                f"MetricsSnapshot.from_dict expects a dict, "
                f"got {type(data).__name__}"
            )
        return cls(data)


class MetricSet:
    """A picklable bag of named scalar metrics owned by one instance.

    Values are created on first touch (initial value 0), so a set can be
    declared with its known names up front — which keeps snapshots
    stable — while still accepting names shipped from elsewhere (worker
    deltas of a newer series).  Increments are plain dict writes: the
    owning object's own lock (when it has one) already serializes them,
    and a torn read only ever costs report precision, never correctness.
    """

    __slots__ = ("_values",)

    def __init__(self, names=()) -> None:
        self._values: dict = {name: 0 for name in names}

    def inc(self, name: str, value=1) -> None:
        """Add ``value`` to ``name`` (creating it at 0 first)."""
        self._values[name] = self._values.get(name, 0) + value

    def get(self, name: str, default=0):
        return self._values.get(name, default)

    def set(self, name: str, value) -> None:
        self._values[name] = value

    def merge(self, delta) -> None:
        """Absorb a snapshot/dict of deltas into this set (in place)."""
        for name, value in (delta or {}).items():
            self._values[name] = self._values.get(name, 0) + value

    def snapshot(self) -> MetricsSnapshot:
        """A point-in-time copy of every value."""
        return MetricsSnapshot(self._values)

    def reset(self) -> None:
        """Zero every known value (names are kept)."""
        for name in self._values:
            self._values[name] = 0

    def __getstate__(self) -> dict:
        return dict(self._values)

    def __setstate__(self, state: dict) -> None:
        self._values = dict(state)

    def __contains__(self, name) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"MetricSet({self._values!r})"


def metric_property(name: str, attr: str = "metrics") -> property:
    """Attribute-style access to one metric of an instance's MetricSet.

    ``hits = metric_property("hits")`` on a class with ``self.metrics``
    makes ``obj.hits`` read — and ``obj.hits += 1`` / ``obj.hits = 0``
    write — the underlying metric, so classes migrating their ad-hoc
    integer counters onto a :class:`MetricSet` keep their historical
    public attribute surface byte-for-byte.
    """

    def fget(self):
        return getattr(self, attr).get(name)

    def fset(self, value) -> None:
        getattr(self, attr).set(name, value)

    return property(fget, fset, doc=f"the {name!r} metric (registry-backed)")


# --------------------------------------------------------------- registry
class Counter:
    """A monotonically increasing registry series."""

    __slots__ = ("name", "labels", "_lock", "value")

    def __init__(self, name: str, labels: tuple, lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self.value = 0

    def inc(self, value=1) -> None:
        with self._lock:
            self.value += value


class Gauge:
    """A registry series that can go up and down (e.g. in-flight depth)."""

    __slots__ = ("name", "labels", "_lock", "value", "high_water")

    def __init__(self, name: str, labels: tuple, lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self.value = 0
        self.high_water = 0

    def set(self, value) -> None:
        with self._lock:
            self.value = value
            if value > self.high_water:
                self.high_water = value

    def inc(self, value=1) -> None:
        with self._lock:
            self.value += value
            if self.value > self.high_water:
                self.high_water = self.value

    def dec(self, value=1) -> None:
        with self._lock:
            self.value -= value


class Histogram:
    """Scalar-summary histogram: count / sum / min / max of observations.

    Enough for duration series (mean = sum/count) without committing to a
    bucket layout; the raw per-span durations live in the trace sink.
    """

    __slots__ = ("name", "labels", "_lock", "count", "sum", "min", "max")

    def __init__(self, name: str, labels: tuple, lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Process-wide named metric series with optional labels.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create a series; the
    same ``(name, labels)`` always returns the same object, so hot call
    sites can cache the handle.  A name must keep one series kind for
    the registry's lifetime — re-requesting ``"x"`` as a gauge after it
    was created as a counter is a programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict = {}

    def _get(self, kind, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = kind(name, key[1], self._lock)
                self._series[key] = series
            elif type(series) is not kind:
                raise ValidationError(
                    f"metric {name!r} already registered as "
                    f"{type(series).__name__}, not {kind.__name__}"
                )
            return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def absorb(self, delta) -> None:
        """Merge a snapshot of counter deltas (e.g. a worker's) in bulk."""
        for name, value in (delta or {}).items():
            self.counter(name).inc(value)

    @staticmethod
    def _read_series(reading: MetricsSnapshot, name: str, labels: tuple,
                     series) -> None:
        """Flatten one series into ``reading`` under its labelled key."""
        key = name
        if labels:
            inner = ",".join(f"{k}={v}" for k, v in labels)
            key = f"{name}{{{inner}}}"
        if isinstance(series, Histogram):
            reading[key + ".count"] = series.count
            reading[key + ".sum"] = series.sum
            if series.count:
                reading[key + ".min"] = series.min
                reading[key + ".max"] = series.max
        elif isinstance(series, Gauge):
            reading[key] = series.value
            reading[key + ".high_water"] = series.high_water
        else:
            reading[key] = series.value

    def snapshot(self) -> MetricsSnapshot:
        """One flat reading of every series (heartbeat payload shape).

        Labelled series flatten to ``name{k=v,...}`` keys; histograms
        expand to ``.count`` / ``.sum`` / ``.min`` / ``.max`` readings.
        """
        with self._lock:
            reading = MetricsSnapshot()
            for (name, labels), series in self._series.items():
                self._read_series(reading, name, labels, series)
            return reading

    def snapshot_for(self, **labels) -> MetricsSnapshot:
        """A reading restricted to one label owner (e.g. one session).

        A series is included when it either does not carry any of the
        filtered label keys at all (shared, genuinely process-global
        series such as the engine's in-flight gauge) or carries matching
        values for every filtered key it does have.  Matching labels are
        stripped from the flattened key, so the owner reads its own
        ``budget.refunded_trials{session=...}`` series back under the
        plain historical name — and never sees another owner's series.
        """
        with self._lock:
            reading = MetricsSnapshot()
            for (name, series_labels), series in self._series.items():
                carried = dict(series_labels)
                if any(key in carried and carried[key] != value
                       for key, value in labels.items()):
                    continue
                rest = tuple(item for item in series_labels
                             if item[0] not in labels)
                self._read_series(reading, name, rest, series)
            return reading

    def reset(self) -> None:
        """Drop every series (tests isolate themselves with this)."""
        with self._lock:
            self._series.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def __repr__(self) -> str:
        return f"MetricsRegistry(series={len(self)})"


#: the process-wide registry; module-level so pool workers get their own
#: (per-process) instance whose deltas ship back via MetricsSnapshot
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _REGISTRY
