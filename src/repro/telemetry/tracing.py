"""Span tracing: a process-safe JSONL sink with Chrome trace export.

A *span* is one named, timed phase of a trial — ``propose``,
``cache_lookup``, ``prep``, ``train``, or the whole ``trial`` — with
arbitrary scalar attributes (algorithm, iteration, pipeline length).
:class:`Tracer` appends each completed span as one self-contained JSON
line to ``trace.jsonl`` inside the run's telemetry directory:

* **Process-safe.**  Every emit is a single ``os.write`` on an
  ``O_APPEND`` descriptor (the same discipline as the persistent eval
  cache's append-log), so spans from pool workers and the parent
  interleave at line granularity and never tear each other.
* **Torn-line tolerant.**  :func:`read_trace` skips truncated or
  garbled lines (crash mid-write) instead of failing, so a trace cut
  short by a kill is still summarizable.
* **Picklable.**  A tracer pickles down to its path — a process-pool
  worker receiving an evaluator reopens its own descriptor and appends
  to the same file.

Timestamps: ``ts`` is wall-clock (``time.time``) at span start, so
events from different processes land on one comparable axis; ``dur`` is
a monotonic ``perf_counter`` difference, so durations are immune to
clock steps.  :func:`to_chrome_trace` converts a trace into Chrome
trace-event JSON (complete ``"X"`` events, microsecond units) for
perfetto / ``about:tracing`` flame views, and :func:`summarize_trace`
aggregates per-phase / per-algorithm totals — the shape of the paper's
Table 5 — for ``repro trace summary``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.exceptions import ValidationError


class Tracer:
    """Append completed spans to a JSONL trace file.

    Parameters
    ----------
    path:
        The ``trace.jsonl`` sink.  The parent directory is created on
        the first emit, not at construction, so a tracer configured but
        never used leaves no filesystem footprint.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fd: int | None = None

    # ------------------------------------------------------------ emitting
    def span(self, name: str, **attrs) -> "_Span":
        """Context manager timing a phase; emits one event on exit."""
        return _Span(self, name, attrs)

    def emit(self, name: str, *, ts: float, dur: float, **attrs) -> None:
        """Write one completed span (seconds for both ``ts`` and ``dur``)."""
        record = {"name": name, "ts": ts, "dur": dur, "pid": os.getpid()}
        if attrs:
            record["attrs"] = attrs
        line = json.dumps(record, separators=(",", ":")) + "\n"
        # One os.write on an O_APPEND descriptor: atomic with respect to
        # concurrent appenders (other processes' spans), like the eval
        # cache's shard appends.
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        """Release the sink descriptor (reopened on the next emit)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # ---------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        # Descriptors don't cross process boundaries: a worker re-opens
        # its own O_APPEND handle on first emit.
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._fd = None

    def __repr__(self) -> str:
        return f"Tracer({str(self.path)!r})"


class _Span:
    """The context manager behind :meth:`Tracer.span` / :func:`trace_span`."""

    __slots__ = ("_tracer", "name", "attrs", "_ts", "_start")

    def __init__(self, tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._tracer is None:
            return
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs = dict(self.attrs, error=exc_type.__name__)
        self._tracer.emit(self.name, ts=self._ts, dur=duration, **self.attrs)


def trace_span(tracer: Tracer | None, name: str, **attrs) -> _Span:
    """A span on ``tracer``, or a no-op timing shell when ``tracer`` is None.

    The single spelling instrumented code uses::

        with trace_span(self._tracer, "prep", steps=len(pipeline)):
            ...

    costs two ``perf_counter`` calls when tracing is on and close to
    nothing when it is off — which is what keeps ``telemetry_mode="off"``
    runs within noise of an uninstrumented build.
    """
    return _Span(tracer, name, attrs)


def make_tracer(telemetry_mode: str | None,
                telemetry_dir) -> Tracer | None:
    """Build the tracer a context's telemetry settings describe.

    Only ``telemetry_mode="trace"`` with a ``telemetry_dir`` produces a
    sink; every other combination returns ``None``, which every
    instrumentation site treats as "spans off".
    """
    if telemetry_mode != "trace" or telemetry_dir is None:
        return None
    from repro.telemetry import TRACE_FILE_NAME

    return Tracer(Path(telemetry_dir) / TRACE_FILE_NAME)


# ----------------------------------------------------------------- reading
def read_trace(path) -> list[dict]:
    """Read a JSONL trace back into event dicts, tolerating torn lines.

    A line that is truncated (crash or kill mid-write) or garbled is
    skipped, never fatal — the same contract as the eval-cache replay —
    so a trace from an interrupted run still loads.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ValidationError(f"cannot read trace at {path}: {error}") from error
    events: list[dict] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and isinstance(record.get("name"), str) \
                and "ts" in record and "dur" in record:
            events.append(record)
    return events


def to_chrome_trace(events) -> dict:
    """Convert trace events to Chrome trace-event JSON (perfetto-ready).

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps/durations; the emitting process id maps to ``pid`` so
    worker activity renders as separate tracks in the flame view.
    """
    trace_events = []
    for event in events:
        trace_events.append({
            "name": event["name"],
            "ph": "X",
            "ts": float(event["ts"]) * 1e6,
            "dur": float(event["dur"]) * 1e6,
            "pid": event.get("pid", 0),
            "tid": event.get("pid", 0),
            "args": event.get("attrs", {}),
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


#: the per-trial phase names a ``trial`` event carries in its attrs
TRIAL_PHASES: tuple[str, ...] = ("pick", "prep", "train")


def summarize_trace(events) -> dict:
    """Aggregate a trace into the paper's Table-5 shape.

    Returns ``{"algorithms": {name: row}, "overall": row, "spans":
    {span name: {count, total}}}`` where each row has per-phase second
    totals, their percentages, the trial count and total trial
    wall-clock.  Only ``trial`` events (one per observed trial, emitted
    by the search session) feed the phase table; every other span is
    tallied under ``"spans"``.
    """
    algorithms: dict[str, dict] = {}
    spans: dict[str, dict] = {}
    for event in events:
        if event["name"] != "trial":
            tally = spans.setdefault(event["name"], {"count": 0, "total": 0.0})
            tally["count"] += 1
            tally["total"] += float(event["dur"])
            continue
        attrs = event.get("attrs", {})
        row = algorithms.setdefault(
            attrs.get("algorithm", "unknown"),
            {"trials": 0, "total": 0.0, **{p: 0.0 for p in TRIAL_PHASES}},
        )
        row["trials"] += 1
        row["total"] += float(event["dur"])
        for phase in TRIAL_PHASES:
            row[phase] += float(attrs.get(phase, 0.0))
    overall = {"trials": 0, "total": 0.0, **{p: 0.0 for p in TRIAL_PHASES}}
    for row in algorithms.values():
        for key in overall:
            overall[key] += row[key]
    for row in list(algorithms.values()) + [overall]:
        phase_total = sum(row[p] for p in TRIAL_PHASES)
        for phase in TRIAL_PHASES:
            row[phase + "_pct"] = (100.0 * row[phase] / phase_total
                                   if phase_total > 0 else 0.0)
    return {"algorithms": algorithms, "overall": overall, "spans": spans}
