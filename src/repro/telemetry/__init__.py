"""Unified observability: metrics registry, span tracing, heartbeats.

The paper's core empirical argument (the Fig 7 / Table 5 bottleneck
analysis) rests on knowing *where time goes* — Pick vs. Prep vs. Train —
yet a search now spans async drivers, three execution backends and two
cache layers.  This package is the one place all of that reports to:

* :mod:`repro.telemetry.metrics` — named counters, gauges and histograms.
  Per-instance counter sets (:class:`MetricSet`) back every cache-layer
  counter (evaluator LRU, persistent eval cache, prefix-transform cache);
  the process-wide :class:`MetricsRegistry` (reached through
  :func:`get_registry`) holds genuinely global series such as the
  engine's in-flight depth and budget refunds.  The worker→parent
  counter shipping of the process backend generalizes into the
  :class:`MetricsSnapshot` ``diff()``/``merge()`` protocol: any metric
  recorded in a pool worker rides back on the result entry and is
  absorbed on merge-back.
* :mod:`repro.telemetry.tracing` — per-trial spans (propose →
  cache-lookup → prep → train), written to a process-safe JSONL sink,
  readable back torn-line-tolerantly and exportable as Chrome
  trace-event JSON for perfetto / ``about:tracing`` flame views.

Everything here is zero-dependency (stdlib + nothing) and dormant unless
an :class:`~repro.core.context.ExecutionContext` asks for it via
``telemetry_mode`` (``"off"`` / ``"counters"`` / ``"trace"``) and
``telemetry_dir``.
"""

from repro.telemetry.metrics import (
    MetricSet,
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    metric_property,
)
from repro.telemetry.tracing import (
    Tracer,
    make_tracer,
    read_trace,
    summarize_trace,
    to_chrome_trace,
    trace_span,
)

#: the three telemetry modes an ExecutionContext accepts
TELEMETRY_MODES: tuple[str, ...] = ("off", "counters", "trace")

#: trace-sink file name inside a telemetry directory
TRACE_FILE_NAME = "trace.jsonl"

#: legacy heartbeat-snapshot file name inside a telemetry directory; kept
#: alive (as an alias of the per-session file) while a telemetry dir has
#: exactly one writing session, so single-run dashboards keep working
HEARTBEAT_FILE_NAME = "heartbeat.json"


def heartbeat_file_name(session_id: str) -> str:
    """The per-session heartbeat file name inside a telemetry directory.

    Sessions sharing one telemetry dir each write their own
    ``heartbeat-<session_id>.json`` — the fix for the single-tenant
    assumption where every session clobbered one shared
    :data:`HEARTBEAT_FILE_NAME`.
    """
    return f"heartbeat-{session_id}.json"


__all__ = [
    "MetricSet",
    "MetricsRegistry",
    "MetricsSnapshot",
    "get_registry",
    "metric_property",
    "Tracer",
    "make_tracer",
    "read_trace",
    "summarize_trace",
    "to_chrome_trace",
    "trace_span",
    "TELEMETRY_MODES",
    "TRACE_FILE_NAME",
    "HEARTBEAT_FILE_NAME",
    "heartbeat_file_name",
]
