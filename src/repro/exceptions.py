"""Exception hierarchy for the repro (Auto-FP) library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses communicate which
subsystem raised the error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """Raised when ``transform`` / ``predict`` is called before ``fit``."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied input fails validation."""


class SearchSpaceError(ReproError):
    """Raised when a search-space definition is inconsistent."""


class BudgetExhaustedError(ReproError):
    """Raised when a search budget is exhausted and no further trials may run."""


class UnknownComponentError(ReproError, KeyError):
    """Raised when a registry lookup fails (preprocessor, model, algorithm)."""


class CopyOnWriteViolationError(ReproError):
    """Raised when a transformer writes in place to a cached (frozen) array.

    The prefix-transform cache (:mod:`repro.core.prefixcache`) shares its
    stored arrays with later pipeline steps, so every transformer must
    treat its input as immutable.  A violation is surfaced loudly instead
    of being scored as a failed pipeline: swallowing it would silently turn
    a pipeline that works without the cache into a 0-accuracy result,
    breaking the cache's bit-for-bit determinism contract.
    """


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops before converging."""


class ReproDeprecationWarning(DeprecationWarning):
    """Warning emitted for deprecated repro API spellings.

    A dedicated subclass so the test-suite can turn exactly *this
    library's* deprecations into errors (``filterwarnings`` in
    ``pytest.ini``) without being disturbed by deprecations emitted by
    the interpreter or third-party packages.  The current members of the
    deprecated surface are the per-knob runtime keywords
    (``n_jobs=``/``backend=``/``cache_dir=``/``prefix_cache_bytes=``/
    ``async_mode=``) that :class:`repro.core.context.ExecutionContext`
    replaced.
    """
