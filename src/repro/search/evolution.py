"""Evolution-based search: Tournament Evolution (TEVO_H / TEVO_Y) and PBT.

The paper's best-ranked algorithms.  Tournament evolution keeps a population
of pipelines; each step it samples a tournament, mutates the tournament
winner, evaluates the child and removes either the worst population member
(TEVO_H, "higher") or the oldest one (TEVO_Y, "younger").  Population-Based
Training maintains a population that is periodically truncated: the worst
members are replaced by mutations of the best members (exploitation) or by
fresh random pipelines (exploration).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.search.base import SearchAlgorithm


@dataclass
class _Member:
    """One population member: a pipeline, its accuracy, and its birth order."""

    pipeline: Pipeline
    accuracy: float
    birth: int


class TournamentEvolution(SearchAlgorithm):
    """Regularised / non-regularised tournament evolution.

    Parameters
    ----------
    population_size:
        Number of members kept in the population.
    tournament_size:
        Number of members sampled per tournament (``S`` in the paper).
    kill_strategy:
        ``"worst"`` removes the lowest-accuracy member (TEVO_H);
        ``"oldest"`` removes the oldest member (TEVO_Y, the "regularised
        evolution" of Real et al.).
    """

    name = "tevo"
    category = "evolution"
    area = "nas"
    surrogate_model = "None"
    initialization = "Random Search"
    samples_per_iteration = "=1"
    evaluations_per_iteration = "=1"

    def __init__(self, population_size: int = 10, tournament_size: int = 3,
                 kill_strategy: str = "worst", random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        if kill_strategy not in ("worst", "oldest"):
            from repro.exceptions import ValidationError

            raise ValidationError("kill_strategy must be 'worst' or 'oldest'")
        self.population_size = int(population_size)
        self.tournament_size = int(tournament_size)
        self.kill_strategy = kill_strategy
        self.n_init = self.population_size

    def _setup(self, problem, rng) -> None:
        self._population: deque[_Member] = deque()
        self._birth_counter = 0

    def _observe(self, record: TrialRecord) -> None:
        if record.fidelity < 1.0:
            return
        self._population.append(
            _Member(record.pipeline, record.accuracy, self._birth_counter)
        )
        self._birth_counter += 1
        while len(self._population) > self.population_size:
            if self.kill_strategy == "oldest":
                self._population.popleft()
            else:
                worst = min(self._population, key=lambda m: m.accuracy)
                self._population.remove(worst)

    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        if not self._population:
            return [space.sample_pipeline(rng)]
        size = min(self.tournament_size, len(self._population))
        indices = rng.choice(len(self._population), size=size, replace=False)
        contenders = [self._population[int(i)] for i in indices]
        winner = max(contenders, key=lambda m: m.accuracy)
        return [space.mutate(winner.pipeline, rng)]


class TEVO_H(TournamentEvolution):
    """Tournament evolution killing the *worst* population member."""

    name = "tevo_h"

    def __init__(self, population_size: int = 10, tournament_size: int = 3,
                 random_state: int | None = 0) -> None:
        super().__init__(population_size=population_size,
                         tournament_size=tournament_size,
                         kill_strategy="worst", random_state=random_state)


class TEVO_Y(TournamentEvolution):
    """Tournament evolution killing the *oldest* population member."""

    name = "tevo_y"

    def __init__(self, population_size: int = 10, tournament_size: int = 3,
                 random_state: int | None = 0) -> None:
        super().__init__(population_size=population_size,
                         tournament_size=tournament_size,
                         kill_strategy="oldest", random_state=random_state)


class PBT(SearchAlgorithm):
    """Population-Based Training adapted to pipeline search.

    Each iteration ranks the population, keeps the top fraction, and rebuilds
    the bottom fraction from mutations of the survivors (exploitation) or, with
    probability ``explore_probability``, from fresh random pipelines
    (exploration).  All replacements are evaluated in the same iteration,
    so PBT evaluates more than one pipeline per iteration (Table 3).
    """

    name = "pbt"
    category = "evolution"
    area = "hpo"
    surrogate_model = "None"
    initialization = "Random Search"
    samples_per_iteration = ">1"
    evaluations_per_iteration = ">1"

    def __init__(self, population_size: int = 8, truncation: float = 0.5,
                 explore_probability: float = 0.25,
                 random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        self.population_size = int(population_size)
        self.truncation = float(truncation)
        self.explore_probability = float(explore_probability)
        self.n_init = self.population_size

    def _setup(self, problem, rng) -> None:
        self._population: list[_Member] = []
        self._birth_counter = 0

    def _observe(self, record: TrialRecord) -> None:
        if record.fidelity < 1.0:
            return
        self._population.append(
            _Member(record.pipeline, record.accuracy, self._birth_counter)
        )
        self._birth_counter += 1
        if len(self._population) > self.population_size:
            self._population.sort(key=lambda m: m.accuracy, reverse=True)
            self._population = self._population[: self.population_size]

    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        if not self._population:
            return space.sample_pipelines(self.population_size, rng)
        ranked = sorted(self._population, key=lambda m: m.accuracy, reverse=True)
        n_keep = max(1, int(round(len(ranked) * (1.0 - self.truncation))))
        survivors = ranked[:n_keep]
        n_replace = max(1, self.population_size - n_keep)
        proposals: list[Pipeline] = []
        for _ in range(n_replace):
            if rng.random() < self.explore_probability:
                proposals.append(space.sample_pipeline(rng))
            else:
                parent = survivors[int(rng.integers(0, len(survivors)))]
                proposals.append(space.mutate(parent.pipeline, rng))
        return proposals
