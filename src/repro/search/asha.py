"""ASHA: asynchronous successive halving with rung promotion on completion.

Hyperband's successive halving is synchronous: a rung must finish
completely before its top ``1/eta`` fraction is promoted, so parallel
workers idle at every rung barrier.  ASHA (Li et al., *A System for
Massively Parallel Hyperparameter Tuning*, MLSys 2020) makes the promotion
decision per completed evaluation instead: whenever a worker asks for a
job, promote the best not-yet-promoted configuration that sits in the top
``1/eta`` of some rung — or, if no rung has a promotable configuration,
grow the bottom rung with a fresh random one.  No barrier ever forms, so
under the completion-driven driver (:mod:`repro.search.async_driver`)
every worker slot is refilled the moment it frees.

The algorithm also runs under the synchronous framework skeleton, where it
degenerates to a sequential successive-halving variant: one proposal per
iteration, promotions decided on whatever has completed so far.  Both
drivers produce identical results on the serial backend.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.search.base import SearchAlgorithm


class ASHA(SearchAlgorithm):
    """Asynchronous successive halving over training-data fidelity.

    Parameters
    ----------
    eta:
        Reduction factor: the top ``1/eta`` of every rung is promotable.
    min_fidelity:
        Fraction of the training rows used in the bottom rung; each rung
        above multiplies it by ``eta`` (capped at 1.0, the top rung).
    random_state:
        Seed for the random configurations grown into the bottom rung.
    """

    name = "asha"
    category = "bandit"
    area = "hpo"
    surrogate_model = "None"
    initialization = "None"
    samples_per_iteration = "=1"
    evaluations_per_iteration = "=1"

    def __init__(self, eta: float = 3.0, min_fidelity: float = 1.0 / 9.0,
                 random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        if eta <= 1:
            from repro.exceptions import ValidationError

            raise ValidationError("eta must be greater than 1")
        if not 0.0 < min_fidelity <= 1.0:
            from repro.exceptions import ValidationError

            raise ValidationError("min_fidelity must be in (0, 1]")
        self.eta = float(eta)
        self.min_fidelity = float(min_fidelity)

    # ---------------------------------------------------------------- setup
    def _setup(self, problem, rng) -> None:
        s_max = max(0, int(math.floor(math.log(1.0 / self.min_fidelity,
                                               self.eta))))
        fidelities = [min(1.0, self.min_fidelity * self.eta ** rung)
                      for rung in range(s_max + 1)]
        if fidelities[-1] < 1.0 - 1e-9:
            fidelities.append(1.0)  # always finish at full fidelity
        self._fidelities: list[float] = fidelities
        #: per rung: spec -> (accuracy, pipeline) of completed evaluations
        self._rungs: list[dict] = [{} for _ in fidelities]
        #: per rung: specs already promoted out of it (never re-promoted)
        self._promoted: list[set] = [set() for _ in fidelities]

    # -------------------------------------------------------------- helpers
    def _promotable(self) -> tuple[int, tuple, Pipeline] | None:
        """Best not-yet-promoted config in the top ``1/eta`` of some rung.

        Rungs are scanned top-down so a configuration close to the full-
        fidelity rung is promoted before the bottom rung grows further —
        the job priority of the original algorithm.
        """
        for rung in range(len(self._fidelities) - 2, -1, -1):
            completed = self._rungs[rung]
            keep = int(len(completed) / self.eta)
            if keep <= 0:
                continue
            ranked = sorted(completed.items(),
                            key=lambda item: (-item[1][0], repr(item[0])))
            for spec, (accuracy, pipeline) in ranked[:keep]:
                if spec not in self._promoted[rung]:
                    return rung, spec, pipeline
        return None

    def _rung_of(self, fidelity: float) -> int | None:
        for rung, rung_fidelity in enumerate(self._fidelities):
            if abs(fidelity - rung_fidelity) < 1e-9:
                return rung
        return None

    # ----------------------------------------------------------------- hooks
    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        job = self._promotable()
        if job is not None:
            rung, spec, pipeline = job
            # Marked promoted at proposal time so the same configuration is
            # never promoted twice while its promotion is still in flight.
            self._promoted[rung].add(spec)
            return [(pipeline, self._fidelities[rung + 1])]
        return [(space.sample_pipeline(rng), self._fidelities[0])]

    def _observe(self, record: TrialRecord) -> None:
        rung = self._rung_of(record.fidelity)
        if rung is None:
            return
        self._rungs[rung][record.pipeline.spec()] = (record.accuracy,
                                                     record.pipeline)

    def __repr__(self) -> str:
        return (f"ASHA(eta={self.eta:g}, min_fidelity={self.min_fidelity:g}, "
                f"random_state={self.random_state!r})")
