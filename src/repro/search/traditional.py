"""Traditional search algorithms: Random Search and simulated Annealing.

These algorithms sample and evaluate one pipeline per iteration and keep no
surrogate model.  Random search is the paper's reference baseline — one of
its headline findings is that it remains hard to beat.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.search.base import SearchAlgorithm


class RandomSearch(SearchAlgorithm):
    """Uniform random search over the pipeline space.

    Every iteration draws ``batch_size`` pipelines uniformly (first a
    length, then each position) and evaluates them as one batch.  Random
    draws are mutually independent, so with ``batch_size > 1`` the batch
    can be fanned out to parallel workers by an execution engine without
    changing the sampled sequence: ``batch_size=k`` consumes the RNG
    exactly like ``k`` iterations of the paper's one-sample-per-iteration
    variant (the default, ``batch_size=1``).

    Parameters
    ----------
    batch_size:
        Pipelines proposed (and evaluated as one batch) per iteration.
    random_state:
        Seed for all of the algorithm's randomness.
    """

    name = "rs"
    category = "traditional"
    area = "hpo"
    surrogate_model = "None"
    initialization = "None"
    samples_per_iteration = "=1"
    evaluations_per_iteration = "=1"

    def __init__(self, batch_size: int = 1, random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        if batch_size < 1:
            from repro.exceptions import ValidationError

            raise ValidationError("batch_size must be at least 1")
        self.batch_size = int(batch_size)

    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        return [space.sample_pipeline(rng) for _ in range(self.batch_size)]


class Anneal(SearchAlgorithm):
    """Simulated annealing over the pipeline space.

    The current state is mutated into a neighbour each iteration; better
    neighbours are always accepted, worse neighbours are accepted with a
    probability that decays with a geometric cooling schedule.

    Parameters
    ----------
    initial_temperature:
        Starting temperature of the acceptance rule.
    cooling:
        Multiplicative cooling factor applied after every iteration.
    random_state:
        Seed for sampling and acceptance decisions.
    """

    name = "anneal"
    category = "traditional"
    area = "hpo"
    surrogate_model = "None"
    initialization = "None"
    samples_per_iteration = "=1"
    evaluations_per_iteration = "=1"

    def __init__(self, initial_temperature: float = 0.1, cooling: float = 0.95,
                 random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        self.initial_temperature = float(initial_temperature)
        self.cooling = float(cooling)

    def _setup(self, problem, rng) -> None:
        self._rng = rng
        self._current: Pipeline | None = None
        self._current_accuracy = -np.inf
        self._temperature = self.initial_temperature

    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        if self._current is None:
            return [space.sample_pipeline(rng)]
        return [space.mutate(self._current, rng)]

    def _observe(self, record: TrialRecord) -> None:
        if self._current is None:
            self._current = record.pipeline
            self._current_accuracy = record.accuracy
            return
        delta = record.accuracy - self._current_accuracy
        accept = delta >= 0
        if not accept and self._temperature > 0:
            probability = float(np.exp(delta / self._temperature))
            accept = bool(self._rng.random() < probability)
        if accept:
            self._current = record.pipeline
            self._current_accuracy = record.accuracy
        self._temperature *= self.cooling
