"""The unified Auto-FP search framework (Algorithm 1 of the paper).

Every search algorithm follows the same iterative skeleton:

1. generate (and evaluate) initial pipelines,
2. update a surrogate model / internal state (optional),
3. sample new pipelines,
4. evaluate the sampled pipelines, record the results, and repeat until the
   budget is exhausted; finally return the pipeline with the lowest error.

:class:`SearchAlgorithm` implements that skeleton once.  Concrete algorithms
override four hooks — ``_initial_pipelines``, ``_update``, ``_propose`` and
``_observe`` — and inherit budget accounting, pick-time measurement (the
"Pick" component of the bottleneck analysis) and result collection.

Step 4 evaluates each iteration's proposals as *one batch* through
``evaluator.evaluate_tasks``: algorithms that propose whole generations or
rungs (PBT, Hyperband/BOHB, batched random search via the
:meth:`SearchAlgorithm._propose_batch` hook) therefore parallelise
automatically when the problem's evaluator carries an execution engine
(:mod:`repro.engine`).  Records are observed in proposal order, so batched
and serial execution produce identical search trajectories.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.budget import Budget, TrialBudget
from repro.core.pipeline import Pipeline
from repro.core.problem import AutoFPProblem
from repro.core.result import SearchResult, TrialRecord
from repro.core.search_space import SearchSpace
from repro.engine.tasks import EvalTask
from repro.utils.random import check_random_state


class SearchAlgorithm:
    """Base class for all 15 Auto-FP search algorithms.

    Class attributes mirror the columns of Table 3 of the paper (category,
    origin area, surrogate model, initialisation, samples/evaluations per
    iteration) so the taxonomy can be regenerated programmatically.

    Parameters
    ----------
    random_state:
        Seed for all of the algorithm's randomness.
    """

    #: registry name, e.g. ``"rs"`` or ``"pbt"``
    name: str = "base"
    #: one of traditional / surrogate / evolution / rl / bandit
    category: str = "traditional"
    #: origin area, "hpo" or "nas"
    area: str = "hpo"
    #: human-readable surrogate description (Table 3)
    surrogate_model: str = "None"
    #: initialisation strategy (Table 3)
    initialization: str = "None"
    #: "=1" or ">1" samples per iteration (Table 3)
    samples_per_iteration: str = "=1"
    #: "=1" or ">1" evaluations per iteration (Table 3)
    evaluations_per_iteration: str = "=1"
    #: number of random pipelines evaluated before the main loop
    n_init: int = 0

    def __init__(self, random_state: int | None = 0) -> None:
        self.random_state = random_state

    # ----------------------------------------------------------------- API
    def search(self, problem: AutoFPProblem, budget: Budget | None = None,
               *, max_trials: int = 50, driver: str | None = None) -> SearchResult:
        """Run the search on ``problem`` and return a :class:`SearchResult`.

        Parameters
        ----------
        problem:
            The Auto-FP problem (evaluator + search space).
        budget:
            Any :class:`~repro.core.budget.Budget`.  Defaults to a
            :class:`TrialBudget` of ``max_trials`` evaluations.
        max_trials:
            Evaluation budget used when ``budget`` is not given.
        driver:
            ``"sync"`` runs the barrier loop below, ``"async"`` hands the
            run to :class:`~repro.search.async_driver.AsyncSearchDriver`
            (completion-driven scheduling that keeps the evaluator engine's
            workers saturated).  The default ``None`` follows the problem's
            ``async_mode`` flag.  Both drivers are bit-for-bit identical
            under serial evaluation.
        """
        if driver is None:
            driver = "async" if getattr(problem, "async_mode", False) else "sync"
        if driver == "async":
            from repro.search.async_driver import AsyncSearchDriver

            return AsyncSearchDriver(self).search(problem, budget,
                                                  max_trials=max_trials)
        if driver != "sync":
            from repro.exceptions import ValidationError

            raise ValidationError(
                f"driver must be 'sync' or 'async', got {driver!r}"
            )
        budget = budget or TrialBudget(max_trials)
        rng = check_random_state(self.random_state)
        space = problem.space
        evaluator = problem.evaluator
        result = SearchResult(algorithm=self.name)

        self._setup(problem, rng)

        # Step 1: initial pipelines, evaluated as one batch.
        self._evaluate_proposals(
            self._initial_pipelines(space, rng), evaluator, budget, result,
            pick_per_proposal=0.0, iteration=0,
        )

        # Steps 2-4: the iterative loop.  Each iteration's proposals form
        # one evaluation batch; the evaluator's engine (if any) decides
        # whether the batch runs serially or on parallel workers.
        iteration = 0
        stalled = 0
        while not budget.exhausted():
            iteration += 1
            pick_start = time.perf_counter()
            self._update(result.trials, space, rng)
            proposals = list(self._propose_batch(space, rng, result.trials))
            pick_time = time.perf_counter() - pick_start

            if not proposals:
                stalled += 1
                if stalled >= 3:
                    # The algorithm has nothing left to propose (e.g. PNAS
                    # exhausted its beam); fall back to random sampling so the
                    # budget is still honoured, as the paper's framework does.
                    proposals = [space.sample_pipeline(rng)]
                else:
                    continue
            stalled = 0

            self._evaluate_proposals(
                proposals, evaluator, budget, result,
                pick_per_proposal=pick_time / len(proposals),
                iteration=iteration,
            )

        return result

    def _evaluate_proposals(self, proposals, evaluator, budget: Budget,
                            result: SearchResult, *, pick_per_proposal: float,
                            iteration: int) -> None:
        """Evaluate one iteration's proposals, honouring the budget.

        Admission clips the batch to what the budget actually has left
        (``budget.admits``): a batch of k proposals can never over-admit a
        count budget, no matter how large k is.  The one exception is the
        first proposal of a batch when only a fractional trial remains — it
        still runs, charged only the remainder, so the search always makes
        progress and ``TrialBudget.used`` never exceeds ``max_trials``.

        Dispatch then goes through ``evaluator.evaluate_tasks(budget=...)``:
        serially the wall clock is checked between trials (as before
        batching existed); with an engine it is checked between chunks of
        ``n_workers`` tasks — one parallel wave, the granularity at which
        running work can actually stop.  Tasks cut off by an expired time
        budget are refunded, so trial accounting reflects what really ran.
        """
        tasks: list[EvalTask] = []
        for item in proposals:
            pipeline, fidelity = self._unpack_proposal(item)
            if budget.exhausted():
                break
            if budget.admits(fidelity):
                charge = fidelity
            elif not tasks:
                # Fractional leftover smaller than one proposal: spend it on
                # the first proposal rather than stalling the search loop.
                charge = budget.admissible(fidelity)
            else:
                break
            tasks.append(EvalTask(pipeline, fidelity=fidelity,
                                  pick_time=pick_per_proposal,
                                  iteration=iteration))
            budget.consume(charge)
        records = evaluator.evaluate_tasks(tasks, budget=budget)
        for record in records:
            result.add(record)
            self._observe(record)
        for task in tasks[len(records):]:
            # Admitted but never dispatched (time budget expired mid-batch).
            budget.consume(-task.fidelity)

    # ------------------------------------------------------------- taxonomy
    @classmethod
    def taxonomy_row(cls) -> dict:
        """One row of Table 3 for this algorithm."""
        return {
            "name": cls.name,
            "category": cls.category,
            "area": cls.area,
            "surrogate_model": cls.surrogate_model,
            "initialization": cls.initialization,
            "samples_per_iteration": cls.samples_per_iteration,
            "evaluations_per_iteration": cls.evaluations_per_iteration,
        }

    # ----------------------------------------------------------------- hooks
    def _setup(self, problem: AutoFPProblem, rng: np.random.Generator) -> None:
        """Prepare internal state before the search starts."""

    def _initial_pipelines(self, space: SearchSpace,
                           rng: np.random.Generator) -> list[Pipeline]:
        """Step 1: pipelines evaluated before the main loop (may be empty)."""
        if self.n_init <= 0:
            return []
        return space.sample_pipelines(self.n_init, rng)

    def _update(self, trials: list[TrialRecord], space: SearchSpace,
                rng: np.random.Generator) -> None:
        """Step 2: update the surrogate model / internal state (optional)."""

    def _propose(self, space: SearchSpace, rng: np.random.Generator,
                 trials: list[TrialRecord]) -> Iterable:
        """Step 3: return pipelines (or ``(pipeline, fidelity)`` pairs) to evaluate."""
        raise NotImplementedError

    def _propose_batch(self, space: SearchSpace, rng: np.random.Generator,
                       trials: list[TrialRecord]) -> Iterable:
        """Step 3, batch form: all proposals evaluated together as one batch.

        The default simply delegates to :meth:`_propose` — algorithms that
        already emit whole generations or rungs (PBT, Hyperband) get batch
        evaluation for free.  Algorithms whose single proposals are mutually
        independent can override this to emit several per iteration (e.g.
        :class:`~repro.search.traditional.RandomSearch` with
        ``batch_size > 1``), widening the batch the execution engine can
        fan out to parallel workers.  Algorithms whose next proposal depends
        on the previous observation (annealing, tournament evolution) must
        NOT batch across proposals and should leave this untouched.
        """
        return self._propose(space, rng, trials)

    def _observe(self, record: TrialRecord) -> None:
        """Step 4 callback: incorporate one freshly evaluated trial."""

    # ------------------------------------------------------------ internals
    @staticmethod
    def _unpack_proposal(item) -> tuple[Pipeline, float]:
        if isinstance(item, Pipeline):
            return item, 1.0
        pipeline, fidelity = item
        return pipeline, float(fidelity)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(random_state={self.random_state!r})"
