"""The unified Auto-FP search framework (Algorithm 1 of the paper).

Every search algorithm follows the same iterative skeleton:

1. generate (and evaluate) initial pipelines,
2. update a surrogate model / internal state (optional),
3. sample new pipelines,
4. evaluate the sampled pipelines, record the results, and repeat until the
   budget is exhausted; finally return the pipeline with the lowest error.

:class:`SearchAlgorithm` declares that skeleton's hooks once.  Concrete
algorithms override four of them — ``_initial_pipelines``, ``_update``,
``_propose`` and ``_observe`` — and inherit budget accounting, pick-time
measurement (the "Pick" component of the bottleneck analysis) and result
collection.  The loop itself lives in
:class:`~repro.search.session.SearchSession` (the lifecycle facade that
also provides callbacks, interruption and checkpoint/resume);
:meth:`SearchAlgorithm.search` is a thin wrapper constructing a session.

Step 4 evaluates each iteration's proposals as *one batch* through
``evaluator.evaluate_tasks``: algorithms that propose whole generations or
rungs (PBT, Hyperband/BOHB, batched random search via the
:meth:`SearchAlgorithm._propose_batch` hook) therefore parallelise
automatically when the problem's evaluator carries an execution engine
(:mod:`repro.engine`).  Records are observed in proposal order, so batched
and serial execution produce identical search trajectories.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.budget import Budget
from repro.core.pipeline import Pipeline
from repro.core.problem import AutoFPProblem
from repro.core.result import SearchResult, TrialRecord
from repro.core.search_space import SearchSpace


class SearchAlgorithm:
    """Base class for all 15 Auto-FP search algorithms.

    Class attributes mirror the columns of Table 3 of the paper (category,
    origin area, surrogate model, initialisation, samples/evaluations per
    iteration) so the taxonomy can be regenerated programmatically.

    Parameters
    ----------
    random_state:
        Seed for all of the algorithm's randomness.
    """

    #: registry name, e.g. ``"rs"`` or ``"pbt"``
    name: str = "base"
    #: one of traditional / surrogate / evolution / rl / bandit
    category: str = "traditional"
    #: origin area, "hpo" or "nas"
    area: str = "hpo"
    #: human-readable surrogate description (Table 3)
    surrogate_model: str = "None"
    #: initialisation strategy (Table 3)
    initialization: str = "None"
    #: "=1" or ">1" samples per iteration (Table 3)
    samples_per_iteration: str = "=1"
    #: "=1" or ">1" evaluations per iteration (Table 3)
    evaluations_per_iteration: str = "=1"
    #: number of random pipelines evaluated before the main loop
    n_init: int = 0

    def __init__(self, random_state: int | None = 0) -> None:
        self.random_state = random_state

    # ----------------------------------------------------------------- API
    def search(self, problem: AutoFPProblem, budget: Budget | None = None,
               *, max_trials: int | None = None, driver: str | None = None,
               context=None) -> SearchResult:
        """Run the search on ``problem`` and return a :class:`SearchResult`.

        A convenience wrapper over :class:`~repro.search.session.SearchSession`
        — the session owns the canonical search loop, so plain searches and
        checkpointable sessions share one implementation of admission,
        budget accounting and driver selection.  Use a session directly for
        progress callbacks, interruption and checkpoint/resume.

        Parameters
        ----------
        problem:
            The Auto-FP problem (evaluator + search space).
        budget:
            Any :class:`~repro.core.budget.Budget`.  Defaults to a
            :class:`TrialBudget` of ``max_trials`` evaluations.
        max_trials:
            Evaluation budget used when ``budget`` is not given; ``None``
            falls back to the context's ``default_budget``, then 50.
        driver:
            ``"sync"`` runs the barrier loop, ``"async"`` the
            completion-driven :class:`~repro.search.async_driver.AsyncSearchDriver`
            (which keeps the evaluator engine's workers saturated).  The
            default ``None`` follows the context's / problem's
            ``async_mode`` flag.  Both drivers are bit-for-bit identical
            under serial evaluation.
        context:
            Optional :class:`~repro.core.context.ExecutionContext`
            overriding the problem's own; decides the driver and default
            budget.
        """
        from repro.search.session import SearchSession

        session = SearchSession(problem, self, context=context)
        return session.run(budget, max_trials=max_trials, driver=driver)

    # ------------------------------------------------------------- taxonomy
    @classmethod
    def taxonomy_row(cls) -> dict:
        """One row of Table 3 for this algorithm."""
        return {
            "name": cls.name,
            "category": cls.category,
            "area": cls.area,
            "surrogate_model": cls.surrogate_model,
            "initialization": cls.initialization,
            "samples_per_iteration": cls.samples_per_iteration,
            "evaluations_per_iteration": cls.evaluations_per_iteration,
        }

    # ----------------------------------------------------------------- hooks
    def _setup(self, problem: AutoFPProblem, rng: np.random.Generator) -> None:
        """Prepare internal state before the search starts."""

    def _initial_pipelines(self, space: SearchSpace,
                           rng: np.random.Generator) -> list[Pipeline]:
        """Step 1: pipelines evaluated before the main loop (may be empty)."""
        if self.n_init <= 0:
            return []
        return space.sample_pipelines(self.n_init, rng)

    def _update(self, trials: list[TrialRecord], space: SearchSpace,
                rng: np.random.Generator) -> None:
        """Step 2: update the surrogate model / internal state (optional)."""

    def _propose(self, space: SearchSpace, rng: np.random.Generator,
                 trials: list[TrialRecord]) -> Iterable:
        """Step 3: return pipelines (or ``(pipeline, fidelity)`` pairs) to evaluate."""
        raise NotImplementedError

    def _propose_batch(self, space: SearchSpace, rng: np.random.Generator,
                       trials: list[TrialRecord]) -> Iterable:
        """Step 3, batch form: all proposals evaluated together as one batch.

        The default simply delegates to :meth:`_propose` — algorithms that
        already emit whole generations or rungs (PBT, Hyperband) get batch
        evaluation for free.  Algorithms whose single proposals are mutually
        independent can override this to emit several per iteration (e.g.
        :class:`~repro.search.traditional.RandomSearch` with
        ``batch_size > 1``), widening the batch the execution engine can
        fan out to parallel workers.  Algorithms whose next proposal depends
        on the previous observation (annealing, tournament evolution) must
        NOT batch across proposals and should leave this untouched.
        """
        return self._propose(space, rng, trials)

    def _observe(self, record: TrialRecord) -> None:
        """Step 4 callback: incorporate one freshly evaluated trial."""

    # ------------------------------------------------------------ internals
    @staticmethod
    def _unpack_proposal(item) -> tuple[Pipeline, float]:
        if isinstance(item, Pipeline):
            return item, 1.0
        pipeline, fidelity = item
        return pipeline, float(fidelity)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(random_state={self.random_state!r})"
