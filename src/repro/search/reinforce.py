"""REINFORCE: policy-gradient pipeline search with a parameter-matrix policy.

The policy is factored into a categorical distribution over the pipeline
length and independent categorical distributions over the preprocessor at
each position (the "parameter matrix" of Table 3).  Each iteration samples
one pipeline, observes the validation accuracy as the reward and takes a
policy-gradient step using a moving-average baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.search.base import SearchAlgorithm


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


class Reinforce(SearchAlgorithm):
    """Monte-Carlo policy gradient (Williams' REINFORCE) for Auto-FP.

    Parameters
    ----------
    learning_rate:
        Step size of the policy-gradient updates.
    baseline_decay:
        Exponential-moving-average factor of the reward baseline.
    entropy_weight:
        Weight of an entropy bonus that discourages premature collapse of
        the policy onto a single pipeline.
    """

    name = "reinforce"
    category = "rl"
    area = "hpo"
    surrogate_model = "Parameter Matrix"
    initialization = "None"
    samples_per_iteration = "=1"
    evaluations_per_iteration = "=1"

    def __init__(self, learning_rate: float = 0.5, baseline_decay: float = 0.8,
                 entropy_weight: float = 0.01, random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        self.learning_rate = float(learning_rate)
        self.baseline_decay = float(baseline_decay)
        self.entropy_weight = float(entropy_weight)

    def _setup(self, problem, rng) -> None:
        space = problem.space
        self._length_logits = np.zeros(space.max_length)
        self._position_logits = np.zeros((space.max_length, space.n_candidates))
        self._baseline = 0.0
        self._baseline_initialised = False
        self._last_choice: tuple[int, list[int]] | None = None

    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        length_probs = _softmax(self._length_logits)
        length = int(rng.choice(space.max_length, p=length_probs)) + 1
        indices = []
        for position in range(length):
            probs = _softmax(self._position_logits[position])
            indices.append(int(rng.choice(space.n_candidates, p=probs)))
        self._last_choice = (length, indices)
        return [space.pipeline_from_indices(indices)]

    def _observe(self, record: TrialRecord) -> None:
        if self._last_choice is None:
            return
        reward = record.accuracy
        if not self._baseline_initialised:
            self._baseline = reward
            self._baseline_initialised = True
        advantage = reward - self._baseline
        self._baseline = (
            self.baseline_decay * self._baseline + (1 - self.baseline_decay) * reward
        )

        length, indices = self._last_choice
        # Length head update.
        length_probs = _softmax(self._length_logits)
        grad_length = -length_probs
        grad_length[length - 1] += 1.0
        entropy_grad = -(np.log(length_probs + 1e-12) + 1.0) * length_probs
        self._length_logits += self.learning_rate * (
            advantage * grad_length + self.entropy_weight * entropy_grad
        )

        # Per-position head updates (only for the positions actually used).
        for position, candidate in enumerate(indices):
            probs = _softmax(self._position_logits[position])
            grad = -probs
            grad[candidate] += 1.0
            entropy_grad = -(np.log(probs + 1e-12) + 1.0) * probs
            self._position_logits[position] += self.learning_rate * (
                advantage * grad + self.entropy_weight * entropy_grad
            )
        self._last_choice = None

    # --------------------------------------------------------- introspection
    def policy_probabilities(self) -> dict:
        """Return the current length and per-position probabilities (for tests)."""
        return {
            "length": _softmax(self._length_logits),
            "positions": np.stack([
                _softmax(row) for row in self._position_logits
            ]),
        }
