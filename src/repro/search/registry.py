"""Registry of the 15 Auto-FP search algorithms (Table 3 of the paper)."""

from __future__ import annotations

from typing import Any

from repro.exceptions import UnknownComponentError
from repro.search.asha import ASHA
from repro.search.bandit import BOHB, Hyperband
from repro.search.bandit_extra import ThompsonSamplingSearch, UCBSearch
from repro.search.base import SearchAlgorithm
from repro.search.enas import ENAS
from repro.search.evolution import PBT, TEVO_H, TEVO_Y, TournamentEvolution
from repro.search.pnas import PLE, PLNE, PME, PMNE, ProgressiveNAS
from repro.search.reinforce import Reinforce
from repro.search.smac import SMAC
from repro.search.tpe import TPE
from repro.search.traditional import Anneal, RandomSearch

#: all 15 algorithms keyed by their paper abbreviation
SEARCH_ALGORITHM_CLASSES: dict[str, type[SearchAlgorithm]] = {
    "rs": RandomSearch,
    "anneal": Anneal,
    "smac": SMAC,
    "tpe": TPE,
    "pmne": PMNE,
    "pme": PME,
    "plne": PLNE,
    "ple": PLE,
    "pbt": PBT,
    "tevo_h": TEVO_H,
    "tevo_y": TEVO_Y,
    "reinforce": Reinforce,
    "enas": ENAS,
    "hyperband": Hyperband,
    "bohb": BOHB,
}

#: the five categories of Section 4.1
ALGORITHM_CATEGORIES: dict[str, tuple[str, ...]] = {
    "traditional": ("rs", "anneal"),
    "surrogate": ("smac", "tpe", "pmne", "pme", "plne", "ple"),
    "evolution": ("pbt", "tevo_h", "tevo_y"),
    "rl": ("reinforce", "enas"),
    "bandit": ("hyperband", "bohb"),
}

ALL_ALGORITHM_NAMES: tuple[str, ...] = tuple(SEARCH_ALGORITHM_CLASSES)

#: extension algorithms beyond the paper's 15 (they never appear in the
#: regenerated Table 3 / Table 4 but are available to ablation studies)
EXTENSION_ALGORITHM_CLASSES: dict[str, type[SearchAlgorithm]] = {
    "ucb": UCBSearch,
    "thompson": ThompsonSamplingSearch,
    "asha": ASHA,
}


def get_search_algorithm_class(name: str) -> type[SearchAlgorithm]:
    """Return the algorithm class registered under ``name``.

    Both the paper's 15 algorithms and the extension algorithms
    (:data:`EXTENSION_ALGORITHM_CLASSES`) are resolvable.
    """
    if name in SEARCH_ALGORITHM_CLASSES:
        return SEARCH_ALGORITHM_CLASSES[name]
    if name in EXTENSION_ALGORITHM_CLASSES:
        return EXTENSION_ALGORITHM_CLASSES[name]
    raise UnknownComponentError(
        f"Unknown search algorithm {name!r}. Known names: "
        f"{sorted(SEARCH_ALGORITHM_CLASSES) + sorted(EXTENSION_ALGORITHM_CLASSES)}"
    )


def make_search_algorithm(name: str, **kwargs: Any) -> SearchAlgorithm:
    """Instantiate a search algorithm by its paper abbreviation."""
    return get_search_algorithm_class(name)(**kwargs)


def taxonomy_table() -> list[dict]:
    """Regenerate Table 3: one taxonomy row per algorithm."""
    return [cls.taxonomy_row() for cls in SEARCH_ALGORITHM_CLASSES.values()]


def category_of(name: str) -> str:
    """Return the category of algorithm ``name``."""
    for category, members in ALGORITHM_CATEGORIES.items():
        if name in members:
            return category
    raise UnknownComponentError(f"Unknown search algorithm {name!r}")
