"""Bandit-based search: Hyperband and BOHB.

Both algorithms trade the number of evaluated pipelines against the fidelity
of each evaluation.  Fidelity here is the fraction of the training rows used
to train the downstream model (the paper's "partial training"); successive
halving promotes the best-performing pipelines of each rung to the next,
higher-fidelity rung.  BOHB replaces Hyperband's uniform-random pipeline
generation with TPE-style sampling from a density fitted on the completed
high-fidelity trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.search.base import SearchAlgorithm
from repro.surrogates.kde import TwoDensityModel


@dataclass
class _Rung:
    """One successive-halving rung: pipelines evaluated at a common fidelity."""

    fidelity: float
    pipelines: list[Pipeline]
    results: dict = field(default_factory=dict)  # spec -> accuracy

    def complete(self) -> bool:
        # Duplicate configurations share one result entry, so completeness is
        # checked per unique specification rather than by count.
        return all(p.spec() in self.results for p in self.pipelines)

    def top(self, k: int) -> list[Pipeline]:
        ranked = sorted(
            self.pipelines,
            key=lambda p: self.results.get(p.spec(), -np.inf),
            reverse=True,
        )
        return ranked[:k]


class Hyperband(SearchAlgorithm):
    """Hyperband with successive halving over training-data fidelity.

    Parameters
    ----------
    eta:
        Halving factor (the paper sweeps 2, 3 and 5 in Figure 6).
    min_fidelity:
        Smallest fraction of the training data used in the lowest rung
        (the analogue of the paper's ``min_budget``).
    """

    name = "hyperband"
    category = "bandit"
    area = "hpo"
    surrogate_model = "None"
    initialization = "None"
    samples_per_iteration = ">1"
    evaluations_per_iteration = ">1"

    def __init__(self, eta: float = 3.0, min_fidelity: float = 1.0 / 9.0,
                 random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        if eta <= 1:
            from repro.exceptions import ValidationError

            raise ValidationError("eta must be greater than 1")
        if not 0.0 < min_fidelity <= 1.0:
            from repro.exceptions import ValidationError

            raise ValidationError("min_fidelity must be in (0, 1]")
        self.eta = float(eta)
        self.min_fidelity = float(min_fidelity)

    # ---------------------------------------------------------------- setup
    def _setup(self, problem, rng) -> None:
        self._s_max = max(0, int(math.floor(math.log(1.0 / self.min_fidelity, self.eta))))
        self._bracket_order = list(range(self._s_max, -1, -1))
        self._bracket_cursor = 0
        self._current_rung: _Rung | None = None
        self._pending_promotions: list[tuple[list[Pipeline], float]] = []

    # -------------------------------------------------------------- helpers
    def _generate_configurations(self, n: int, space: SearchSpace,
                                 rng: np.random.Generator) -> list[Pipeline]:
        """Uniform random configurations (overridden by BOHB)."""
        return space.sample_pipelines(n, rng)

    def _start_bracket(self, space: SearchSpace, rng: np.random.Generator) -> None:
        s = self._bracket_order[self._bracket_cursor % len(self._bracket_order)]
        self._bracket_cursor += 1
        n_configs = max(1, int(math.ceil((self._s_max + 1) / (s + 1) * self.eta ** s)))
        fidelity = min(1.0, self.min_fidelity * self.eta ** (self._s_max - s))
        configs = self._generate_configurations(n_configs, space, rng)
        self._current_rung = _Rung(fidelity=fidelity, pipelines=configs)
        self._remaining_halvings = s

    def _advance(self, space: SearchSpace, rng: np.random.Generator) -> None:
        """Promote the current rung or start a new bracket."""
        rung = self._current_rung
        if rung is None or not rung.complete():
            return
        if self._remaining_halvings > 0 and len(rung.pipelines) > 1:
            n_keep = max(1, int(len(rung.pipelines) / self.eta))
            survivors = rung.top(n_keep)
            next_fidelity = min(1.0, rung.fidelity * self.eta)
            self._current_rung = _Rung(fidelity=next_fidelity, pipelines=survivors)
            self._remaining_halvings -= 1
        else:
            self._current_rung = None

    # ----------------------------------------------------------------- hooks
    def _update(self, trials, space: SearchSpace, rng) -> None:
        self._advance(space, rng)
        if self._current_rung is None:
            self._start_bracket(space, rng)

    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        rung = self._current_rung
        if rung is None:
            return []
        pending = [p for p in rung.pipelines if p.spec() not in rung.results]
        return [(pipeline, rung.fidelity) for pipeline in pending]

    def _observe(self, record: TrialRecord) -> None:
        rung = self._current_rung
        if rung is None:
            return
        if abs(record.fidelity - rung.fidelity) < 1e-9:
            rung.results[record.pipeline.spec()] = record.accuracy


class BOHB(Hyperband):
    """BOHB: Hyperband whose configurations come from a TPE density model.

    A fraction ``random_fraction`` of configurations is still drawn uniformly
    to keep exploration, exactly as in the original algorithm.
    """

    name = "bohb"
    category = "bandit"
    surrogate_model = "KDE"
    initialization = "Random Search"

    def __init__(self, eta: float = 3.0, min_fidelity: float = 1.0 / 9.0,
                 gamma: float = 0.25, random_fraction: float = 0.3,
                 min_model_trials: int = 6, random_state: int | None = 0) -> None:
        super().__init__(eta=eta, min_fidelity=min_fidelity, random_state=random_state)
        self.gamma = float(gamma)
        self.random_fraction = float(random_fraction)
        self.min_model_trials = int(min_model_trials)

    def _setup(self, problem, rng) -> None:
        super()._setup(problem, rng)
        self._density: TwoDensityModel | None = None
        self._space = problem.space

    def _update(self, trials, space: SearchSpace, rng) -> None:
        # Fit the density on the highest-fidelity trials completed so far.
        if trials:
            max_fidelity = max(t.fidelity for t in trials)
            usable = [t for t in trials if t.fidelity >= max_fidelity]
            if len(usable) >= self.min_model_trials:
                self._density = TwoDensityModel(
                    space, gamma=self.gamma, min_trials=self.min_model_trials
                ).refit(usable)
        super()._update(trials, space, rng)

    def _generate_configurations(self, n: int, space: SearchSpace,
                                 rng: np.random.Generator) -> list[Pipeline]:
        configs: list[Pipeline] = []
        for _ in range(n):
            use_model = (
                self._density is not None
                and self._density.ready_
                and rng.random() > self.random_fraction
            )
            if use_model:
                configs.append(self._density.suggest(random_state=rng))
            else:
                configs.append(space.sample_pipeline(rng))
        return configs
