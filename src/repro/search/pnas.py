"""Progressive NAS adapted to Auto-FP (PMNE, PME, PLNE, PLE).

Progressive NAS starts from the simplest architectures — here the seven
single-preprocessor pipelines — evaluates them, trains a surrogate
(an MLP or an LSTM, optionally an ensemble of either) on the results, then
*progressively* expands the current beam by one position, uses the surrogate
to rank all expansions and evaluates only the predicted top-k.  The four
paper variants differ only in the surrogate:

==========  ==========================
PMNE        MLP, no ensemble
PME         MLP ensemble
PLNE        LSTM, no ensemble
PLE         LSTM ensemble
==========  ==========================
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.search.base import SearchAlgorithm
from repro.surrogates.base import EnsembleRegressor
from repro.surrogates.lstm_regressor import LSTMRegressor
from repro.surrogates.mlp_regressor import MLPRegressor


class ProgressiveNAS(SearchAlgorithm):
    """Beam-style progressive search guided by a learned surrogate.

    Parameters
    ----------
    surrogate:
        ``"mlp"`` or ``"lstm"``.
    ensemble:
        Whether to train a bootstrap ensemble of the surrogate.
    beam_width:
        Number of pipelines kept in the beam after each expansion (the
        "top-k" evaluated per iteration).
    n_ensemble:
        Ensemble size when ``ensemble`` is True.
    """

    name = "pnas"
    category = "surrogate"
    area = "nas"
    surrogate_model = "MLP/LSTM"
    initialization = "Single Preprocessors"
    samples_per_iteration = ">1"
    evaluations_per_iteration = ">1"

    def __init__(self, surrogate: str = "mlp", ensemble: bool = False,
                 beam_width: int = 5, n_ensemble: int = 3,
                 random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        if surrogate not in ("mlp", "lstm"):
            from repro.exceptions import ValidationError

            raise ValidationError("surrogate must be 'mlp' or 'lstm'")
        self.surrogate = surrogate
        self.ensemble = bool(ensemble)
        self.beam_width = int(beam_width)
        self.n_ensemble = int(n_ensemble)

    # ------------------------------------------------------------ internals
    def _make_surrogate(self, space: SearchSpace, seed: int):
        if self.surrogate == "mlp":
            factory = lambda k: MLPRegressor(hidden_size=24, epochs=60,
                                             random_state=seed + k)
        else:
            def factory(k):
                model = LSTMRegressor(hidden_size=12, epochs=25, random_state=seed + k)
                model.set_encoding_block(space.n_candidates + 1)
                return model
        if self.ensemble:
            return EnsembleRegressor(factory, n_members=self.n_ensemble,
                                     random_state=seed)
        return factory(0)

    def _setup(self, problem, rng) -> None:
        self._beam: list[Pipeline] = []
        self._current_length = 1
        self._model = None

    def _initial_pipelines(self, space: SearchSpace, rng) -> list[Pipeline]:
        singles = space.single_step_pipelines()
        self._beam = list(singles)
        return singles

    def _update(self, trials: list[TrialRecord], space: SearchSpace, rng) -> None:
        usable = [t for t in trials if t.fidelity >= 1.0]
        if len(usable) < 2:
            self._model = None
            return
        X = space.encode_many([t.pipeline for t in usable])
        y = np.asarray([t.accuracy for t in usable])
        self._model = self._make_surrogate(space, int(rng.integers(0, 2**31 - 1)))
        self._model.fit(X, y)

    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        # Keep only the best beam_width members of the current beam, ranked
        # by their observed accuracy.
        accuracy_by_spec = {}
        for trial in trials:
            if trial.fidelity >= 1.0:
                spec = trial.pipeline.spec()
                accuracy_by_spec[spec] = max(
                    accuracy_by_spec.get(spec, -np.inf), trial.accuracy
                )
        scored_beam = [
            (accuracy_by_spec.get(p.spec(), -np.inf), p) for p in self._beam
        ]
        scored_beam.sort(key=lambda pair: pair[0], reverse=True)
        survivors = [p for _, p in scored_beam[: self.beam_width]]

        # Expand each survivor by one position.
        expansions: list[Pipeline] = []
        for pipeline in survivors:
            expansions.extend(space.expand(pipeline))
        expansions = [p for p in expansions if p.spec() not in accuracy_by_spec]

        if not expansions:
            # Beam reached max length: restart from surrogate-ranked random samples.
            expansions = space.sample_pipelines(self.beam_width * 4, rng)
            expansions = [p for p in expansions if p.spec() not in accuracy_by_spec]
            if not expansions:
                return []

        if self._model is None:
            selected = expansions[: self.beam_width]
        else:
            predicted = self._model.predict(space.encode_many(expansions))
            order = np.argsort(predicted)[::-1]
            selected = [expansions[int(i)] for i in order[: self.beam_width]]

        self._beam = selected
        self._current_length += 1
        return selected


class PMNE(ProgressiveNAS):
    """Progressive NAS with a single MLP surrogate."""

    name = "pmne"
    surrogate_model = "MLP no ensemble"

    def __init__(self, beam_width: int = 5, random_state: int | None = 0) -> None:
        super().__init__(surrogate="mlp", ensemble=False, beam_width=beam_width,
                         random_state=random_state)


class PME(ProgressiveNAS):
    """Progressive NAS with an MLP ensemble surrogate."""

    name = "pme"
    surrogate_model = "MLP ensemble"

    def __init__(self, beam_width: int = 5, n_ensemble: int = 3,
                 random_state: int | None = 0) -> None:
        super().__init__(surrogate="mlp", ensemble=True, beam_width=beam_width,
                         n_ensemble=n_ensemble, random_state=random_state)


class PLNE(ProgressiveNAS):
    """Progressive NAS with a single LSTM surrogate."""

    name = "plne"
    surrogate_model = "LSTM no ensemble"

    def __init__(self, beam_width: int = 5, random_state: int | None = 0) -> None:
        super().__init__(surrogate="lstm", ensemble=False, beam_width=beam_width,
                         random_state=random_state)


class PLE(ProgressiveNAS):
    """Progressive NAS with an LSTM ensemble surrogate."""

    name = "ple"
    surrogate_model = "LSTM ensemble"

    def __init__(self, beam_width: int = 5, n_ensemble: int = 3,
                 random_state: int | None = 0) -> None:
        super().__init__(surrogate="lstm", ensemble=True, beam_width=beam_width,
                         n_ensemble=n_ensemble, random_state=random_state)
