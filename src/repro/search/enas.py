"""ENAS: an LSTM controller trained with policy gradients.

ENAS views the pipeline space as one large super-graph and uses an LSTM
controller to decide, token by token, which preprocessor to place next and
when to stop extending the pipeline.  The controller is trained with
REINFORCE on the downstream validation accuracy; gradients flow through the
LSTM via backpropagation through time using the same
:class:`~repro.surrogates.lstm_regressor.LSTMCell` as the PNAS surrogate.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.search.base import SearchAlgorithm
from repro.surrogates.lstm_regressor import LSTMCell


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


class ENAS(SearchAlgorithm):
    """LSTM-controller pipeline search (Efficient NAS adapted to Auto-FP).

    The controller emits, at each step, a distribution over the candidate
    preprocessors plus a STOP token.  Sampling proceeds until STOP is drawn
    or the maximum pipeline length is reached; at least one preprocessor is
    always emitted.

    Parameters
    ----------
    hidden_size:
        Controller LSTM width.
    learning_rate:
        Policy-gradient step size.
    baseline_decay:
        Exponential-moving-average factor for the reward baseline.
    """

    name = "enas"
    category = "rl"
    area = "nas"
    surrogate_model = "LSTM"
    initialization = "None"
    samples_per_iteration = "=1"
    evaluations_per_iteration = "=1"

    def __init__(self, hidden_size: int = 16, learning_rate: float = 0.05,
                 baseline_decay: float = 0.8, random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        self.hidden_size = int(hidden_size)
        self.learning_rate = float(learning_rate)
        self.baseline_decay = float(baseline_decay)

    # ------------------------------------------------------------- lifecycle
    def _setup(self, problem, rng) -> None:
        space = problem.space
        self._n_candidates = space.n_candidates
        self._n_actions = space.n_candidates + 1      # + STOP
        self._input_dim = space.n_candidates + 1      # previous action or START
        self._cell = LSTMCell(self._input_dim, self.hidden_size, rng)
        scale = 1.0 / np.sqrt(self.hidden_size)
        self._W_out = rng.uniform(-scale, scale, size=(self.hidden_size, self._n_actions))
        self._b_out = np.zeros(self._n_actions)
        self._baseline = 0.0
        self._baseline_initialised = False
        self._episode = None

    def _token(self, previous_action: int | None) -> np.ndarray:
        """One-hot input token: START when ``previous_action`` is None."""
        token = np.zeros(self._input_dim)
        if previous_action is None:
            token[-1] = 1.0
        else:
            token[previous_action] = 1.0
        return token

    # ------------------------------------------------------------- sampling
    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        h = np.zeros(self.hidden_size)
        c = np.zeros(self.hidden_size)
        previous = None
        actions: list[int] = []
        steps = []  # (input_token, cache, hidden_state, probs, action)

        for position in range(space.max_length):
            token = self._token(previous)
            h, c, cache = self._cell.forward(token, h, c)
            logits = h @ self._W_out + self._b_out
            if position == 0:
                # Force at least one preprocessor by masking STOP at step 0.
                logits = logits.copy()
                logits[-1] = -1e9
            probs = _softmax(logits)
            action = int(rng.choice(self._n_actions, p=probs))
            steps.append((token, cache, h.copy(), probs, action))
            if action == self._n_candidates:  # STOP
                break
            actions.append(action)
            previous = action

        self._episode = steps
        return [space.pipeline_from_indices(actions)]

    # --------------------------------------------------------------- update
    def _observe(self, record: TrialRecord) -> None:
        if self._episode is None:
            return
        reward = record.accuracy
        if not self._baseline_initialised:
            self._baseline = reward
            self._baseline_initialised = True
        advantage = reward - self._baseline
        self._baseline = (
            self.baseline_decay * self._baseline + (1 - self.baseline_decay) * reward
        )

        dW_out = np.zeros_like(self._W_out)
        db_out = np.zeros_like(self._b_out)
        dW_cell = np.zeros_like(self._cell.W)
        db_cell = np.zeros_like(self._cell.b)

        dh_next = np.zeros(self.hidden_size)
        dc_next = np.zeros(self.hidden_size)
        # Backward through time over the sampled episode.
        for token, cache, hidden, probs, action in reversed(self._episode):
            # Policy-gradient loss: -advantage * log pi(action); its gradient
            # w.r.t. the logits is advantage * (probs - onehot(action)) with a
            # sign that *descends* the loss, i.e. ascends the reward.
            dlogits = probs.copy()
            dlogits[action] -= 1.0
            dlogits *= advantage
            dW_out += np.outer(hidden, dlogits)
            db_out += dlogits
            dh = self._W_out @ dlogits + dh_next
            _, dh_next, dc_next, dW_step, db_step = self._cell.backward(dh, dc_next, cache)
            dW_cell += dW_step
            db_cell += db_step

        clip = lambda g: np.clip(g, -5.0, 5.0)
        self._W_out -= self.learning_rate * clip(dW_out)
        self._b_out -= self.learning_rate * clip(db_out)
        self._cell.W -= self.learning_rate * clip(dW_cell)
        self._cell.b -= self.learning_rate * clip(db_cell)
        self._episode = None
