"""Completion-driven search execution: overlap Pick with Prep/Train.

The synchronous skeleton in :mod:`repro.search.base` evaluates each
iteration's proposals as one *barrier*: the algorithm cannot propose again
until the whole batch has returned, so with a parallel backend the Pick
step idles while stragglers finish, and fast workers idle once their share
of the batch is done.  :class:`AsyncSearchDriver` removes the barrier: it
keeps up to ``n_workers`` evaluations in flight, feeds every completed
:class:`~repro.core.result.TrialRecord` back through the algorithm's
``_observe`` hook the moment it lands, and asks the algorithm for new
proposals (``_update`` + ``_propose_batch``) as soon as a worker slot
frees — the scheduling model of asynchronous successive halving (Li et
al., ASHA) generalised to every algorithm of the registry.

Determinism contract:

* On the serial backend (or with no engine attached) the driver is
  **bit-for-bit identical** to ``SearchAlgorithm.search``: with one
  in-flight slot, a proposal batch drains completely — each task evaluated
  and observed in proposal order — before the next ``_update`` /
  ``_propose_batch`` call, which is exactly the synchronous hook sequence,
  RNG consumption and budget arithmetic.
* On thread/process backends, results are reproducible given the same
  completion order (completions are always *observed* in submission
  order among those currently done); algorithms whose proposals depend
  only on completed trials — ASHA by construction — additionally keep
  every worker saturated.

Budget semantics are checked at *completion* granularity: admission
(``budget.admits`` / fractional ``admissible``) mirrors the synchronous
driver exactly, and a wall-clock budget is consulted after every observed
completion — the search stops within one completion of expiry, cancels the
admitted-but-never-dispatched backlog and refunds its charges.
"""

from __future__ import annotations

import time
from collections import deque

from repro.core.budget import Budget, TrialBudget
from repro.core.result import SearchResult
from repro.engine.engine import ExecutionEngine
from repro.engine.tasks import EvalTask
from repro.utils.random import check_random_state


class AsyncSearchDriver:
    """Run a :class:`~repro.search.base.SearchAlgorithm` completion-driven.

    Parameters
    ----------
    algorithm:
        The search algorithm whose hooks (``_setup``, ``_initial_pipelines``,
        ``_update``, ``_propose_batch``, ``_observe``) the driver calls.
    n_workers:
        Evaluations kept in flight.  Defaults to the worker count of the
        problem evaluator's execution engine (1 when evaluation is serial).
    """

    def __init__(self, algorithm, *, n_workers: int | None = None) -> None:
        self.algorithm = algorithm
        self.n_workers = n_workers

    # ----------------------------------------------------------------- API
    def search(self, problem, budget: Budget | None = None, *,
               max_trials: int = 50) -> SearchResult:
        """Run the search on ``problem``; same contract as the sync driver."""
        algorithm = self.algorithm
        budget = budget or TrialBudget(max_trials)
        rng = check_random_state(algorithm.random_state)
        space = problem.space
        evaluator = problem.evaluator
        result = SearchResult(algorithm=algorithm.name)

        engine = evaluator.engine
        own_engine = engine is None
        if own_engine:
            # No engine attached: completion-driven execution degenerates to
            # the serial reference via a private lazy-futures engine.
            engine = ExecutionEngine("serial")
        n_workers = self.n_workers or engine.n_workers
        interruptible = budget.can_interrupt()

        algorithm._setup(problem, rng)

        #: admitted (task, charge) pairs not yet handed to the engine
        queue: deque = deque()
        #: (PendingTask, charge) pairs in submission order
        inflight: list = []
        #: cache keys of queued/in-flight work, so a parallel run never
        #: re-dispatches (or re-charges) a proposal that is already running;
        #: empty whenever the serial driver proposes, preserving parity
        pending_keys: set = set()

        def admit(proposals, pick_per_proposal: float, iteration: int) -> int:
            """Mirror of the sync driver's batch admission.

            Duplicates *within* one proposal batch are admitted and charged
            exactly as the sync driver does (the engine aliases their
            execution); only proposals that duplicate work still pending
            from an earlier batch are skipped — a situation the sync driver
            can never be in, so serial parity is untouched.
            """
            already_pending = frozenset(pending_keys)
            admitted = 0
            for item in proposals:
                pipeline, fidelity = algorithm._unpack_proposal(item)
                key = evaluator.cache_key(pipeline, fidelity)
                if key in already_pending:
                    continue  # identical work already queued or in flight
                if budget.exhausted():
                    break
                if budget.admits(fidelity):
                    charge = fidelity
                elif not admitted and not queue and not inflight:
                    # Fractional leftover smaller than one proposal and no
                    # other work anywhere: spend it rather than stalling.
                    charge = budget.admissible(fidelity)
                else:
                    break
                queue.append((EvalTask(pipeline, fidelity=fidelity,
                                       pick_time=pick_per_proposal,
                                       iteration=iteration), key, charge))
                pending_keys.add(key)
                budget.consume(charge)
                admitted += 1
            return admitted

        admit(list(algorithm._initial_pipelines(space, rng)), 0.0, 0)

        iteration = 0
        stalled = 0
        interrupted = False
        #: proposals that could not be admitted yet (e.g. a fractional
        #: budget crumb only spendable once everything in flight drains);
        #: retried before the algorithm is asked again, so state the
        #: algorithm mutated while proposing (ASHA's promoted set) is
        #: never silently discarded.  Serial runs admit like the sync
        #: driver and never defer.
        deferred: tuple | None = None
        try:
            while True:
                # Fill free worker slots from the admitted backlog.
                while queue and len(inflight) < n_workers:
                    task, key, charge = queue.popleft()
                    inflight.append(
                        (engine.submit_task(evaluator, task), key, charge)
                    )

                # Pick overlaps Prep/Train: propose as soon as a slot would
                # go idle, even while other evaluations are still in flight.
                if not queue and len(inflight) < n_workers \
                        and not budget.exhausted():
                    if deferred is not None:
                        proposals, pick_time, deferred_iteration = deferred
                        if admit(proposals, pick_time, deferred_iteration):
                            deferred = None
                            continue
                        # Still unadmittable: wait for more completions.
                    else:
                        iteration += 1
                        pick_start = time.perf_counter()
                        algorithm._update(result.trials, space, rng)
                        proposals = list(
                            algorithm._propose_batch(space, rng, result.trials)
                        )
                        pick_time = time.perf_counter() - pick_start
                        if not proposals and not inflight:
                            stalled += 1
                            if stalled >= 3:
                                # Same fallback as the sync driver: keep
                                # honouring the budget with random samples
                                # once the algorithm has nothing left to
                                # propose.
                                proposals = [space.sample_pipeline(rng)]
                            else:
                                continue
                        # With work still in flight an empty proposal list is
                        # not a stall — the algorithm is waiting for results
                        # (e.g. a rung mid-flight); fall through and collect
                        # completions.
                        if proposals:
                            stalled = 0
                            pick_per = pick_time / len(proposals)
                            if admit(proposals, pick_per, iteration):
                                continue
                            if inflight:
                                # Nothing fit right now, but draining the
                                # in-flight work may free the fractional
                                # path: retry these proposals, don't re-ask.
                                deferred = (proposals, pick_per, iteration)

                if not inflight:
                    if queue:
                        continue
                    break

                # Observe completions in submission order among those done.
                ready = [entry for entry in inflight if entry[0].ready()]
                if not ready:
                    engine.wait_any([entry[0] for entry in inflight])
                    ready = [entry for entry in inflight if entry[0].ready()]
                for entry in ready:
                    inflight.remove(entry)
                    pending, key, _charge = entry
                    pending_keys.discard(key)
                    record = engine.resolve_task(evaluator, pending)
                    result.add(record)
                    algorithm._observe(record)
                    if interruptible and budget.interrupted():
                        interrupted = True
                        break
                if interrupted:
                    break
        finally:
            self._wind_down(engine, evaluator, budget, result,
                            queue, inflight)
            if own_engine:
                engine.close()
        return result

    # ------------------------------------------------------------ internals
    def _wind_down(self, engine, evaluator, budget, result, queue,
                   inflight) -> None:
        """Refund never-dispatched work; drain what is already running.

        On a normal exit both collections are empty and this is a no-op.
        After a wall-clock interruption (or an error) the admitted backlog
        is cancelled and refunded — ``budget.used`` then reflects exactly
        the work that ran, matching the sync driver's refund semantics —
        while evaluations a thread/process worker already started are
        allowed to finish and are observed like any other completion.
        """
        algorithm = self.algorithm
        while queue:
            _task, _key, charge = queue.popleft()
            budget.consume(-charge)
        for pending, _key, charge in inflight:
            if engine.cancel_task(evaluator, pending):
                budget.consume(-charge)
            else:
                record = engine.resolve_task(evaluator, pending)
                result.add(record)
                algorithm._observe(record)
        inflight.clear()

    def __repr__(self) -> str:
        return (f"AsyncSearchDriver({self.algorithm!r}, "
                f"n_workers={self.n_workers!r})")
