"""Completion-driven search execution: overlap Pick with Prep/Train.

The synchronous skeleton in :mod:`repro.search.session` evaluates each
iteration's proposals as one *barrier*: the algorithm cannot propose again
until the whole batch has returned, so with a parallel backend the Pick
step idles while stragglers finish, and fast workers idle once their share
of the batch is done.  :class:`AsyncSearchDriver` removes the barrier: it
keeps up to ``n_workers`` evaluations in flight, feeds every completed
:class:`~repro.core.result.TrialRecord` back through the algorithm's
``_observe`` hook the moment it lands, and asks the algorithm for new
proposals (``_update`` + ``_propose_batch``) as soon as a worker slot
frees — the scheduling model of asynchronous successive halving (Li et
al., ASHA) generalised to every algorithm of the registry.

Determinism contract:

* On the serial backend (or with no engine attached) the driver is
  **bit-for-bit identical** to ``SearchAlgorithm.search``: with one
  in-flight slot, a proposal batch drains completely — each task evaluated
  and observed in proposal order — before the next ``_update`` /
  ``_propose_batch`` call, which is exactly the synchronous hook sequence,
  RNG consumption and budget arithmetic.
* On thread/process backends, results are reproducible given the same
  completion order (completions are always *observed* in submission
  order among those currently done); algorithms whose proposals depend
  only on completed trials — ASHA by construction — additionally keep
  every worker saturated.

Budget semantics are checked at *completion* granularity: admission
(``budget.admits`` / fractional ``admissible``) mirrors the synchronous
driver exactly, and a wall-clock budget is consulted after every observed
completion — the search stops within one completion of expiry, cancels the
admitted-but-never-dispatched backlog and refunds its charges.

The loop core is :meth:`AsyncSearchDriver.drive`: it starts from an
explicit *loop state* (iteration counter, stall counter, the
admitted-but-undispatched queue, deferred proposals) and can hand that
state back when a :class:`~repro.search.session.SearchSession` asks it to
pause — which is what makes asynchronous runs checkpointable and
resumable.  :meth:`search` is the stateless wrapper for direct use.
"""

from __future__ import annotations

import time
from collections import deque

from repro.core.budget import Budget, TrialBudget
from repro.core.result import SearchResult
from repro.engine.engine import ExecutionEngine
from repro.engine.tasks import EvalTask
from repro.telemetry.metrics import get_registry
from repro.utils.log import get_logger
from repro.utils.random import check_random_state

log = get_logger("search.async_driver")


def fresh_loop_state() -> dict:
    """Loop state of a run that has not admitted anything yet."""
    return {"iteration": 0, "stalled": 0, "deferred": None, "queue": [],
            "initial_done": False}


class AsyncSearchDriver:
    """Run a :class:`~repro.search.base.SearchAlgorithm` completion-driven.

    Parameters
    ----------
    algorithm:
        The search algorithm whose hooks (``_setup``, ``_initial_pipelines``,
        ``_update``, ``_propose_batch``, ``_observe``) the driver calls.
    n_workers:
        Evaluations kept in flight.  Defaults to the worker count of the
        problem evaluator's execution engine (1 when evaluation is serial).
    """

    def __init__(self, algorithm, *, n_workers: int | None = None) -> None:
        self.algorithm = algorithm
        self.n_workers = n_workers

    # ----------------------------------------------------------------- API
    def search(self, problem, budget: Budget | None = None, *,
               max_trials: int = 50) -> SearchResult:
        """Run the search on ``problem``; same contract as the sync driver."""
        algorithm = self.algorithm
        budget = budget or TrialBudget(max_trials)
        rng = check_random_state(algorithm.random_state)
        result = SearchResult(algorithm=algorithm.name)
        algorithm._setup(problem, rng)
        self.drive(problem, budget, result, rng, fresh_loop_state())
        return result

    def drive(self, problem, budget: Budget, result: SearchResult, rng,
              state: dict, *, control=None) -> dict | None:
        """Run the completion-driven loop from ``state``.

        ``state`` is the serializable loop state (see
        :func:`fresh_loop_state`): the iteration and stall counters, the
        admitted-but-undispatched ``queue`` of ``(task, charge)`` pairs
        (their budget charges are already consumed), proposals ``deferred``
        by a fractional budget crumb, and whether the initial pipelines
        were already admitted.  ``_setup`` must have been called by the
        caller; trials already in ``result`` are treated as observed.

        ``control`` (a :class:`~repro.search.session.SearchSession`) gets
        two hooks: ``_driver_admitted(iteration, tasks)`` after each
        proposal-batch admission and ``_driver_observed(record, capture)``
        after each observed completion — ``capture`` is a zero-argument
        closure snapshotting the current loop state for a checkpoint, and
        a True return pauses the run.  On pause the still-cancellable
        in-flight work is folded back into the queue (charges intact),
        anything already running is drained and observed, and the loop
        state is returned: resuming with it continues the search exactly
        where it stopped.  A run that completes returns ``None``.
        """
        algorithm = self.algorithm
        space = problem.space
        evaluator = problem.evaluator

        engine = evaluator.engine
        own_engine = engine is None
        if own_engine:
            # No engine attached: completion-driven execution degenerates to
            # the serial reference via a private lazy-futures engine.
            engine = ExecutionEngine("serial")
        interruptible = budget.can_interrupt()

        iteration = int(state.get("iteration", 0))
        stalled = int(state.get("stalled", 0))
        #: proposals that could not be admitted yet (e.g. a fractional
        #: budget crumb only spendable once everything in flight drains);
        #: retried before the algorithm is asked again, so state the
        #: algorithm mutated while proposing (ASHA's promoted set) is
        #: never silently discarded.  Serial runs admit like the sync
        #: driver and never defer.
        deferred: tuple | None = state.get("deferred")
        initial_done = bool(state.get("initial_done", False))

        #: admitted (task, key, charge) triples not yet handed to the
        #: engine; restored entries keep their original charges (already
        #: consumed when they were first admitted)
        queue: deque = deque(
            (task, evaluator.cache_key(task.pipeline, task.fidelity), charge)
            for task, charge in state.get("queue", ())
        )
        #: (PendingTask, key, charge) triples in submission order
        inflight: list = []
        #: cache keys of queued/in-flight work, so a parallel run never
        #: re-dispatches (or re-charges) a proposal that is already running;
        #: empty whenever the serial driver proposes, preserving parity
        pending_keys: set = {key for _task, key, _charge in queue}

        def admit(proposals, pick_per_proposal: float,
                  admit_iteration: int) -> int:
            """Mirror of the sync driver's batch admission.

            Duplicates *within* one proposal batch are admitted and charged
            exactly as the sync driver does (the engine aliases their
            execution); only proposals that duplicate work still pending
            from an earlier batch are skipped — a situation the sync driver
            can never be in, so serial parity is untouched.
            """
            already_pending = frozenset(pending_keys)
            admitted_tasks: list[EvalTask] = []
            for item in proposals:
                pipeline, fidelity = algorithm._unpack_proposal(item)
                key = evaluator.cache_key(pipeline, fidelity)
                if key in already_pending:
                    continue  # identical work already queued or in flight
                if budget.exhausted():
                    break
                if budget.admits(fidelity):
                    charge = fidelity
                elif not admitted_tasks and not queue and not inflight:
                    # Fractional leftover smaller than one proposal and no
                    # other work anywhere: spend it rather than stalling.
                    charge = budget.admissible(fidelity)
                else:
                    break
                task = EvalTask(pipeline, fidelity=fidelity,
                                pick_time=pick_per_proposal,
                                iteration=admit_iteration)
                queue.append((task, key, charge))
                pending_keys.add(key)
                budget.consume(charge)
                admitted_tasks.append(task)
            if admitted_tasks and control is not None:
                control._driver_admitted(admit_iteration, admitted_tasks)
            return len(admitted_tasks)

        def capture() -> dict:
            """Serializable snapshot of the loop, for a mid-run checkpoint.

            Work in flight is recorded as queued (charges intact): a resume
            re-dispatches it in submission order, which on the deterministic
            configurations (serial evaluation, one worker) reproduces the
            uninterrupted observation order exactly.
            """
            outstanding = [(entry[0].task, entry[2]) for entry in inflight]
            outstanding += [(task, charge) for task, _key, charge in queue]
            return {"iteration": iteration, "stalled": stalled,
                    "deferred": deferred, "queue": outstanding,
                    "initial_done": True}

        if not initial_done:
            admit(list(algorithm._initial_pipelines(space, rng)), 0.0, 0)

        interrupted = False
        paused = False
        try:
            while True:
                # Re-read capacity every cycle: an elastic backend (the
                # remote fleet) grows and shrinks as workers join and
                # leave, and the in-flight depth must track it.  Fixed
                # backends return a constant, so this changes nothing
                # for them.
                n_workers = self.n_workers or engine.n_workers

                # Fill free worker slots from the admitted backlog.
                while queue and len(inflight) < n_workers:
                    task, key, charge = queue.popleft()
                    inflight.append(
                        (engine.submit_task(evaluator, task), key, charge)
                    )

                # Pick overlaps Prep/Train: propose as soon as a slot would
                # go idle, even while other evaluations are still in flight.
                if not queue and len(inflight) < n_workers \
                        and not budget.exhausted():
                    if deferred is not None:
                        proposals, pick_time, deferred_iteration = deferred
                        if admit(proposals, pick_time, deferred_iteration):
                            deferred = None
                            continue
                        # Still unadmittable: wait for more completions.
                    else:
                        iteration += 1
                        tracer = getattr(evaluator, "tracer", None)
                        pick_wall = time.time() if tracer is not None else 0.0
                        pick_start = time.perf_counter()
                        algorithm._update(result.trials, space, rng)
                        proposals = list(
                            algorithm._propose_batch(space, rng, result.trials)
                        )
                        pick_time = time.perf_counter() - pick_start
                        if tracer is not None:
                            tracer.emit("propose", ts=pick_wall, dur=pick_time,
                                        algorithm=algorithm.name,
                                        iteration=iteration,
                                        proposals=len(proposals))
                        if not proposals and not inflight:
                            stalled += 1
                            if stalled >= 3:
                                # Same fallback as the sync driver: keep
                                # honouring the budget with random samples
                                # once the algorithm has nothing left to
                                # propose.
                                proposals = [space.sample_pipeline(rng)]
                            else:
                                continue
                        # With work still in flight an empty proposal list is
                        # not a stall — the algorithm is waiting for results
                        # (e.g. a rung mid-flight); fall through and collect
                        # completions.
                        if proposals:
                            stalled = 0
                            pick_per = pick_time / len(proposals)
                            if admit(proposals, pick_per, iteration):
                                continue
                            if inflight:
                                # Nothing fit right now, but draining the
                                # in-flight work may free the fractional
                                # path: retry these proposals, don't re-ask.
                                deferred = (proposals, pick_per, iteration)

                if not inflight:
                    if queue:
                        continue
                    break

                # Observe completions in submission order among those done.
                ready = [entry for entry in inflight if entry[0].ready()]
                if not ready:
                    engine.wait_any([entry[0] for entry in inflight])
                    ready = [entry for entry in inflight if entry[0].ready()]
                for entry in ready:
                    inflight.remove(entry)
                    pending, key, _charge = entry
                    pending_keys.discard(key)
                    record = engine.resolve_task(evaluator, pending)
                    result.add(record)
                    algorithm._observe(record)
                    if control is not None \
                            and control._driver_observed(record, capture):
                        paused = True
                        break
                    if interruptible and budget.interrupted():
                        interrupted = True
                        break
                if interrupted or paused:
                    break

            if paused:
                return self._pause(engine, evaluator, result, control,
                                   queue, inflight, capture)
            return None
        finally:
            self._wind_down(engine, evaluator, budget, result,
                            queue, inflight)
            if own_engine:
                engine.close()

    # ------------------------------------------------------------ internals
    def _pause(self, engine, evaluator, result, control, queue, inflight,
               capture) -> dict:
        """Suspend the loop, folding outstanding work back into the queue.

        In-flight evaluations that never started are cancelled and re-queued
        with their original charges (nothing is refunded: the serialized
        queue still owns those charges); evaluations a worker already
        started are drained and observed like any other completion.  The
        returned loop state resumes the search exactly where it stopped.
        """
        algorithm = self.algorithm
        drained: list = []
        requeue: list = []
        for pending, key, charge in inflight:
            if engine.cancel_task(evaluator, pending):
                requeue.append((pending.task, key, charge))
            else:
                drained.append((pending, key, charge))
        inflight.clear()
        for task, key, charge in reversed(requeue):
            queue.appendleft((task, key, charge))
        for pending, _key, _charge in drained:
            record = engine.resolve_task(evaluator, pending)
            result.add(record)
            algorithm._observe(record)
            if control is not None:
                control._driver_observed(record, None)
        state = capture()
        queue.clear()
        return state

    def _wind_down(self, engine, evaluator, budget, result, queue,
                   inflight) -> None:
        """Refund never-dispatched work; drain what is already running.

        On a normal (or paused) exit both collections are empty and this is
        a no-op.  After a wall-clock interruption (or an error) the admitted
        backlog is cancelled and refunded — ``budget.used`` then reflects
        exactly the work that ran, matching the sync driver's refund
        semantics — while evaluations a thread/process worker already
        started are allowed to finish and are observed like any other
        completion.
        """
        algorithm = self.algorithm
        refunded = 0
        while queue:
            _task, _key, charge = queue.popleft()
            budget.consume(-charge)
            refunded += 1
        for pending, _key, charge in inflight:
            if engine.cancel_task(evaluator, pending):
                budget.consume(-charge)
                refunded += 1
            else:
                record = engine.resolve_task(evaluator, pending)
                result.add(record)
                algorithm._observe(record)
        inflight.clear()
        if refunded:
            get_registry().counter("budget.refunded_trials").inc(refunded)
            log.debug("refunded %d admitted-but-undispatched task(s)",
                      refunded)

    def __repr__(self) -> str:
        return (f"AsyncSearchDriver({self.algorithm!r}, "
                f"n_workers={self.n_workers!r})")
