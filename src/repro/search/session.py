"""The search-lifecycle facade: :class:`SearchSession`.

``SearchAlgorithm.search`` answers "run this search to completion"; a
production service needs more — progress events while the search runs,
graceful interruption, and the ability to persist a long run's state so a
killed process can pick up exactly where it left off.  ``SearchSession``
is that lifecycle object, in the spirit of scikit-learn's ``BaseSearchCV``
facade over its search loops:

* **step-wise driving** — the session owns the canonical synchronous
  search loop (``SearchAlgorithm.search`` delegates here) and drives the
  asynchronous loop through
  :meth:`~repro.search.async_driver.AsyncSearchDriver.drive`, observing
  every trial as it completes;
* **events** — ``on_trial(session, record)`` after every observed trial,
  ``on_batch(session, iteration, tasks)`` after every proposal-batch
  admission, ``on_checkpoint(session, path)`` after every checkpoint
  write;
* **checkpoint / resume** — :meth:`checkpoint` snapshots the run after
  any completed trial (trial history, budget remainder, RNG stream and
  the algorithm's internal state) into one JSON document;
  :meth:`SearchSession.resume` restores it — in the same process or a
  fresh one — and :meth:`run` continues the search **bit-for-bit
  identically** to a run that was never interrupted (enforced by the
  determinism matrix in ``tests/engine/test_determinism.py``);
* **interruption** — :meth:`stop` ends the run after the current trial,
  leaving the session resumable in memory or via a checkpoint.

Checkpointing requires a :class:`~repro.core.budget.TrialBudget` (the
deterministic budget): a wall-clock budget's remainder is not meaningful
to freeze.  The trial history and all scalars serialize as plain JSON
through :mod:`repro.io.serialization`; the algorithm's internal state
(surrogates, populations, rungs) is arbitrary Python and rides along as a
pickled blob — see :func:`repro.io.serialization.encode_state_blob` for
the trust model.  Checkpoints can also live inside a
:class:`~repro.io.store.ResultStore` next to their run's result file
(``store.save_checkpoint``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path

import numpy as np

from repro.core.budget import Budget, TrialBudget
from repro.core.context import ExecutionContext
from repro.core.result import SearchResult, TrialRecord
from repro.engine.tasks import EvalTask
from repro.exceptions import ValidationError
from repro.io.serialization import (
    atomic_write_text,
    decode_state_blob,
    encode_state_blob,
    load_session_checkpoint,
    save_session_checkpoint,
    trial_from_dict,
    trial_to_dict,
)
from repro.telemetry import HEARTBEAT_FILE_NAME, heartbeat_file_name
from repro.telemetry.metrics import MetricsSnapshot, get_registry
from repro.telemetry.tracing import make_tracer
from repro.utils.log import get_logger
from repro.utils.random import check_random_state

log = get_logger("search.session")

#: telemetry dirs -> ids of the sessions writing heartbeats there (this
#: process).  Concurrent sessions sharing one dir each own a
#: ``heartbeat-<session_id>.json``; the legacy ``heartbeat.json`` alias is
#: refreshed only while a dir has exactly one registered session, so two
#: tenants can never clobber each other's liveness document.
_HEARTBEAT_WRITERS: dict = {}
_HEARTBEAT_WRITERS_LOCK = threading.Lock()


def _register_heartbeat_writer(telemetry_dir, session_id: str) -> None:
    key = os.path.abspath(os.fspath(telemetry_dir))
    with _HEARTBEAT_WRITERS_LOCK:
        _HEARTBEAT_WRITERS.setdefault(key, set()).add(session_id)


def _sole_heartbeat_writer(telemetry_dir, session_id: str) -> bool:
    key = os.path.abspath(os.fspath(telemetry_dir))
    with _HEARTBEAT_WRITERS_LOCK:
        return _HEARTBEAT_WRITERS.get(key) == {session_id}


class SearchSession:
    """Drive one search run through its whole lifecycle.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.AutoFPProblem` to search.
    algorithm:
        The :class:`~repro.search.base.SearchAlgorithm` instance (its
        internal state belongs to this session once the run starts).
    context:
        Runtime configuration; defaults to the problem's own context.
        Decides the driver (``async_mode``) and the default budget.
    on_trial / on_batch / on_checkpoint:
        Optional event callbacks (see the module docstring).
    on_metrics:
        Optional callback ``on_metrics(session, snapshot)`` fired after
        every observed trial when the context's ``telemetry_mode`` is not
        ``"off"``; ``snapshot`` is a
        :class:`~repro.telemetry.metrics.MetricsSnapshot` combining the
        process registry with the evaluator's cache counters (see
        :meth:`metrics_snapshot`).
    checkpoint_path:
        Default path for :meth:`checkpoint` and automatic checkpoints.
    checkpoint_every:
        With ``checkpoint_path`` set, automatically checkpoint after every
        N observed trials — the knob behind the kill-and-resume story.
    session_id:
        Stable identifier of this session, used to label its registry
        metric series and name its heartbeat file so concurrent sessions
        in one process (or one telemetry dir) never collide.  Generated
        when omitted; checkpoints carry it, so a resumed session keeps
        streaming under the identity it was submitted with.
    """

    def __init__(self, problem, algorithm, context: ExecutionContext | None = None,
                 *, on_trial=None, on_batch=None, on_checkpoint=None,
                 on_metrics=None, checkpoint_path=None,
                 checkpoint_every: int | None = None,
                 session_id: str | None = None) -> None:
        self.problem = problem
        self.algorithm = algorithm
        if context is None:
            context = getattr(problem, "context", None) or ExecutionContext()
        self.context = context
        self.session_id = str(session_id) if session_id \
            else f"s{uuid.uuid4().hex[:12]}"
        if context.telemetry_dir is not None and context.telemetry_mode != "off":
            # Registering at construction (not at first write) makes the
            # one-session-or-many decision deterministic for sessions
            # created before either starts running.
            _register_heartbeat_writer(context.telemetry_dir, self.session_id)
        self.on_trial = on_trial
        self.on_batch = on_batch
        self.on_checkpoint = on_checkpoint
        self.on_metrics = on_metrics
        #: the session's own handle on the trace sink (same JSONL file the
        #: evaluator appends to — O_APPEND keeps concurrent writers safe);
        #: None unless the context enables tracing
        self._tracer = make_tracer(context.telemetry_mode,
                                   context.telemetry_dir)
        self.checkpoint_path = None if checkpoint_path is None \
            else Path(checkpoint_path)
        if checkpoint_every is not None:
            checkpoint_every = int(checkpoint_every)
            if checkpoint_every < 1:
                raise ValidationError(
                    f"checkpoint_every must be at least 1, got {checkpoint_every}"
                )
        self.checkpoint_every = checkpoint_every

        self.result = SearchResult(algorithm=algorithm.name)
        self.stopped = False
        self._driver: str | None = None
        self._budget: Budget | None = None
        self._rng = None
        self._iteration = 0
        self._stalled = 0
        self._initialized = False
        self._running = False
        #: records of the current sync batch that were evaluated (and
        #: charged) but not yet observed when the run stopped mid-batch
        self._pending_records: list[TrialRecord] = []
        #: paused async loop state (queue of charged tasks, deferred
        #: proposals), as returned by ``AsyncSearchDriver.drive``
        self._async_state: dict | None = None
        self._checkpoint_request: Path | None = None
        self._stop_request = False
        self._trials_since_checkpoint = 0
        self.last_checkpoint_path: Path | None = None

    # ----------------------------------------------------------------- API
    def run(self, budget: Budget | None = None, *,
            max_trials: int | None = None,
            driver: str | None = None) -> SearchResult:
        """Run (or continue) the search and return the result so far.

        ``budget`` defaults to the restored budget on a resumed session,
        else to ``TrialBudget(max_trials)`` with ``max_trials`` falling
        back to the context's ``default_budget`` (then 50).  ``driver``
        (``"sync"``/``"async"``) defaults to the session's earlier choice,
        then to the context/problem ``async_mode`` flag.  Calling ``run``
        again after :meth:`stop` continues the same search.
        """
        if self._running:
            raise ValidationError("this session is already running")
        if budget is not None:
            if self._budget is not None and budget is not self._budget:
                raise ValidationError(
                    "a resumed/continued session already has a budget; "
                    "run() must not replace it mid-search"
                )
            self._budget = budget
        elif self._budget is None:
            self._budget = self.context.trial_budget(max_trials)
        if driver is None:
            driver = self._driver
        if driver is None:
            driver = "async" if (self.context.async_mode
                                 or getattr(self.problem, "async_mode", False)) \
                else "sync"
        if driver not in ("sync", "async"):
            raise ValidationError(
                f"driver must be 'sync' or 'async', got {driver!r}"
            )
        if self._driver is not None and driver != self._driver:
            raise ValidationError(
                f"this session ran under the {self._driver!r} driver and "
                f"cannot switch to {driver!r} mid-search"
            )
        self._driver = driver
        if self.checkpoint_every is not None and self.checkpoint_path is not None:
            # Fail before the search starts, not at the first periodic
            # snapshot deep inside the loop.
            self._check_checkpointable(self._budget)
        if self._rng is None:
            self._rng = check_random_state(self.algorithm.random_state)
        self.stopped = False
        self._stop_request = False
        self._running = True
        log.debug("run: algorithm=%s driver=%s budget=%r context=[%s]",
                  self.algorithm.name, driver, self._budget,
                  self.context.describe())
        try:
            if driver == "async":
                self._run_async()
            else:
                self._run_sync()
        finally:
            # A hard interruption (Ctrl-C, kill) does not write a
            # checkpoint here: a snapshot taken mid-batch would not be at
            # a trial boundary, and overwriting the last *consistent*
            # periodic checkpoint (``checkpoint_every``) with it would
            # break the resume guarantee.
            self._running = False
        if self._checkpoint_request is not None:
            # A request that arrived too late to be serviced inside the
            # loop (e.g. during an async pause drain): the run is at rest
            # now, so snapshot the final state.
            path, self._checkpoint_request = self._checkpoint_request, None
            self._write_checkpoint(path, pending_records=self._pending_records,
                                   async_capture=None)
        self.stopped = self._stop_request
        return self.result

    def stop(self) -> None:
        """Request a graceful stop after the currently observed trial.

        The run returns its partial result; the session stays resumable —
        call :meth:`run` again to continue in-process, or
        :meth:`checkpoint` to persist and continue elsewhere.
        """
        self._stop_request = True

    def checkpoint(self, path=None) -> Path:
        """Write (or, mid-run, schedule) a checkpoint; returns its path.

        Outside a run the snapshot is written immediately.  During a run
        (i.e. called from an event callback) the write happens right after
        the current trial completes — "after any completed trial" is the
        natural consistency point of the search loop.
        """
        path = Path(path) if path is not None else self.checkpoint_path
        if path is None:
            raise ValidationError(
                "no checkpoint path: pass one to checkpoint() or set "
                "checkpoint_path on the session"
            )
        self._check_checkpointable(self._budget)
        if self._running:
            self._checkpoint_request = path
            return path
        self._write_checkpoint(path, pending_records=self._pending_records,
                               async_capture=None)
        return path

    @classmethod
    def resume(cls, path, *, problem=None,
               context: ExecutionContext | None = None,
               on_trial=None, on_batch=None, on_checkpoint=None,
               on_metrics=None, checkpoint_path=None,
               checkpoint_every: int | None = None,
               ) -> "SearchSession":
        """Restore a session from a checkpoint written by :meth:`checkpoint`.

        ``problem`` may be omitted for registry-built problems (the
        checkpoint carries their provenance and the problem is rebuilt);
        problems built from raw arrays must be re-supplied by the caller.
        Either way the problem's evaluator fingerprint is verified against
        the checkpoint, so a run can never silently continue against
        different data, model or seed.  The restored session's
        :meth:`run` continues bit-for-bit identically to a run that was
        never interrupted.
        """
        document = load_session_checkpoint(path)
        stored_context = ExecutionContext.from_dict(document["context"])
        if context is None:
            context = stored_context
        blob = decode_state_blob(document["state_blob"])
        algorithm = blob["algorithm"]
        problem_info = document.get("problem") or {}
        if problem is None:
            provenance = problem_info.get("provenance")
            if provenance is None:
                raise ValidationError(
                    "this checkpoint's problem was built from raw arrays "
                    "and cannot be rebuilt automatically; pass problem="
                )
            from repro.core.problem import AutoFPProblem

            problem = AutoFPProblem.from_provenance(provenance,
                                                    context=context)
        expected = problem_info.get("fingerprint")
        if expected and problem.evaluator.fingerprint() != expected:
            raise ValidationError(
                "checkpoint fingerprint mismatch: the supplied problem has "
                "different data, model or seed than the interrupted run"
            )
        session = cls(problem, algorithm, context=context,
                      on_trial=on_trial, on_batch=on_batch,
                      on_checkpoint=on_checkpoint, on_metrics=on_metrics,
                      checkpoint_path=(checkpoint_path
                                       if checkpoint_path is not None
                                       else path),
                      checkpoint_every=checkpoint_every,
                      # Keep the interrupted run's identity: its metric
                      # labels and heartbeat file continue seamlessly
                      # (older checkpoints without an id get a fresh one).
                      session_id=document.get("session_id"))
        session._driver = document.get("driver") or "sync"
        budget_info = document["budget"]
        budget = TrialBudget(budget_info["max_trials"])
        budget.used = float(budget_info["used"])
        session._budget = budget
        rng = blob.get("rng")
        if rng is None:
            # Older checkpoints carried only the JSON state (safe for every
            # algorithm that does not alias the session generator).  The
            # fresh generator is a shell: its state is overwritten from the
            # checkpoint on the next line, so resume stays bit-for-bit.
            rng = np.random.default_rng()  # repro: lint-ignore[RPR001]
            rng.bit_generator.state = document["rng_state"]
        session._rng = rng
        loop = document.get("loop") or {}
        session._iteration = int(loop.get("iteration", 0))
        session._stalled = int(loop.get("stalled", 0))
        session._initialized = bool(loop.get("initialized", True))
        for entry in document.get("trials", []):
            session.result.add(trial_from_dict(entry))
        session.result.baseline_accuracy = document.get("baseline_accuracy")
        session._pending_records = list(blob.get("pending_records") or [])
        session._async_state = blob.get("async_state")
        return session

    # ------------------------------------------------------------ sync loop
    def _run_sync(self) -> None:
        """The canonical barrier loop (Algorithm 1 of the paper).

        ``SearchAlgorithm.search`` delegates here, so the session *is* the
        synchronous driver: one implementation of admission, budget
        accounting and the stall fallback serves plain searches and
        checkpointable sessions alike.
        """
        problem, algorithm, budget = self.problem, self.algorithm, self._budget
        space = problem.space
        if not self._initialized:
            algorithm._setup(problem, self._rng)
            self._initialized = True
            # Step 1: initial pipelines, evaluated as one batch.
            if self._evaluate_batch(
                    list(algorithm._initial_pipelines(space, self._rng)),
                    0.0, 0):
                return
        elif self._pending_records:
            # Resumed mid-batch: observe the already-evaluated remainder of
            # the interrupted batch before asking the algorithm again.
            if self._drain_pending():
                return

        # Steps 2-4: the iterative loop.  Each iteration's proposals form
        # one evaluation batch; the evaluator's engine (if any) decides
        # whether the batch runs serially or on parallel workers.
        while not budget.exhausted():
            if self._stop_request:
                return
            self._iteration += 1
            pick_wall = time.time() if self._tracer is not None else 0.0
            pick_start = time.perf_counter()
            algorithm._update(self.result.trials, space, self._rng)
            proposals = list(
                algorithm._propose_batch(space, self._rng, self.result.trials)
            )
            pick_time = time.perf_counter() - pick_start
            if self._tracer is not None:
                self._tracer.emit("propose", ts=pick_wall, dur=pick_time,
                                  algorithm=algorithm.name,
                                  iteration=self._iteration,
                                  proposals=len(proposals))

            if not proposals:
                self._stalled += 1
                if self._stalled >= 3:
                    # The algorithm has nothing left to propose (e.g. PNAS
                    # exhausted its beam); fall back to random sampling so the
                    # budget is still honoured, as the paper's framework does.
                    proposals = [space.sample_pipeline(self._rng)]
                else:
                    continue
            self._stalled = 0

            if self._evaluate_batch(proposals, pick_time / len(proposals),
                                    self._iteration):
                return

    def _evaluate_batch(self, proposals, pick_per_proposal: float,
                        iteration: int) -> bool:
        """Admit, evaluate and observe one proposal batch; True if stopped.

        Admission clips the batch to what the budget actually has left
        (``budget.admits``): a batch of k proposals can never over-admit a
        count budget, no matter how large k is.  The one exception is the
        first proposal of a batch when only a fractional trial remains — it
        still runs, charged only the remainder, so the search always makes
        progress and ``TrialBudget.used`` never exceeds ``max_trials``.

        Dispatch then goes through ``evaluator.evaluate_tasks(budget=...)``:
        serially the wall clock is checked between trials; with an engine it
        is checked between chunks of ``n_workers`` tasks — one parallel
        wave, the granularity at which running work can actually stop.
        Tasks cut off by an expired time budget are refunded, so trial
        accounting reflects what really ran.
        """
        budget = self._budget
        evaluator = self.problem.evaluator
        algorithm = self.algorithm
        tasks: list[EvalTask] = []
        for item in proposals:
            pipeline, fidelity = algorithm._unpack_proposal(item)
            if budget.exhausted():
                break
            if budget.admits(fidelity):
                charge = fidelity
            elif not tasks:
                # Fractional leftover smaller than one proposal: spend it on
                # the first proposal rather than stalling the search loop.
                charge = budget.admissible(fidelity)
            else:
                break
            tasks.append(EvalTask(pipeline, fidelity=fidelity,
                                  pick_time=pick_per_proposal,
                                  iteration=iteration))
            budget.consume(charge)
        if tasks and self.on_batch is not None:
            self.on_batch(self, iteration, list(tasks))
        records = evaluator.evaluate_tasks(tasks, budget=budget)
        stopped = self._drain_records(records)
        refunded = tasks[len(records):]
        for task in refunded:
            # Admitted but never dispatched (time budget expired mid-batch).
            budget.consume(-task.fidelity)
        if refunded:
            # Labelled per session: without the label one tenant's refunds
            # would bleed into every other tenant's metrics_snapshot().
            get_registry().counter("budget.refunded_trials",
                                   session=self.session_id).inc(len(refunded))
            log.debug("refunded %d undispatched task(s) after budget expiry",
                      len(refunded))
        return stopped

    def _drain_records(self, records) -> bool:
        """Observe evaluated records one at a time; True when stopped early.

        Between any two observations the session is at a consistent
        boundary: checkpoint requests are serviced here (the not-yet-
        observed remainder of the batch rides along in the document), and
        a stop request parks that remainder in ``_pending_records`` so a
        later :meth:`run` call continues exactly where this one stopped.
        """
        records = list(records)
        for position, record in enumerate(records):
            self.result.add(record)
            self.algorithm._observe(record)
            pending = records[position + 1:]
            self._after_trial(record, pending_records=pending,
                              async_capture=None)
            if self._stop_request:
                self._pending_records = pending
                return True
        return False

    def _drain_pending(self) -> bool:
        pending, self._pending_records = self._pending_records, []
        return self._drain_records(pending)

    # ----------------------------------------------------------- async loop
    def _run_async(self) -> None:
        from repro.search.async_driver import AsyncSearchDriver, fresh_loop_state

        algorithm = self.algorithm
        state = self._async_state
        if not self._initialized:
            algorithm._setup(self.problem, self._rng)
            self._initialized = True
            state = fresh_loop_state()
        elif state is None:
            state = fresh_loop_state()
            state["initial_done"] = True
        state.setdefault("iteration", self._iteration)
        state.setdefault("stalled", self._stalled)
        self._async_state = None
        driver = AsyncSearchDriver(algorithm)
        paused = driver.drive(self.problem, self._budget, self.result,
                              self._rng, state, control=self)
        if paused is not None:
            self._async_state = paused
            self._iteration = int(paused.get("iteration", self._iteration))
            self._stalled = int(paused.get("stalled", self._stalled))

    # ------------------------------------------------- driver control hooks
    def _driver_admitted(self, iteration: int, tasks) -> None:
        """AsyncSearchDriver hook: a proposal batch was admitted."""
        self._iteration = iteration
        if self.on_batch is not None:
            self.on_batch(self, iteration, list(tasks))

    def _driver_observed(self, record: TrialRecord, capture) -> bool:
        """AsyncSearchDriver hook: one completion was observed.

        ``capture`` snapshots the driver's loop state for a checkpoint;
        ``None`` means the driver is already pausing (drain notifications).
        Returns True to pause the driver.
        """
        self._after_trial(record, pending_records=[], async_capture=capture)
        return capture is not None and self._stop_request

    # ------------------------------------------------------------ internals
    def _after_trial(self, record: TrialRecord, *, pending_records,
                     async_capture) -> None:
        """Shared per-trial bookkeeping: events, auto/requested checkpoints."""
        self._trials_since_checkpoint += 1
        if self.on_trial is not None:
            self.on_trial(self, record)
        if self.context.telemetry_mode != "off":
            self._emit_trial_telemetry(record)
        path = None
        if self._checkpoint_request is not None:
            path, self._checkpoint_request = self._checkpoint_request, None
        elif (self.checkpoint_every is not None
                and self.checkpoint_path is not None
                and self._trials_since_checkpoint >= self.checkpoint_every):
            path = self.checkpoint_path
        if path is not None and async_capture is None and self._driver == "async":
            # Drain notification during an async pause: defer the request
            # to the post-run checkpoint rather than snapshotting a loop
            # that is mid-teardown.
            self._checkpoint_request = path
            return
        if path is not None:
            self._write_checkpoint(path, pending_records=pending_records,
                                   async_capture=async_capture)

    # ------------------------------------------------------------ telemetry
    def metrics_snapshot(self) -> MetricsSnapshot:
        """One flat reading of everything observable about this run.

        Combines the process-wide registry (engine in-flight depth, budget
        refunds, ...) with the evaluator's per-instance cache counters,
        namespaced ``evaluator.*`` / ``prefix.*``, plus the session's own
        progress gauges.  This is the payload handed to ``on_metrics`` and
        written to the heartbeat file.  Registry series labelled with a
        session id are filtered to *this* session's, so a multi-tenant
        process never leaks one tenant's counters into another's snapshot.
        """
        snapshot = get_registry().snapshot_for(session=self.session_id)
        evaluator = getattr(self.problem, "evaluator", None)
        if evaluator is not None:
            snapshot = snapshot.merge({
                f"evaluator.{name}": value
                for name, value in evaluator.metrics.snapshot().items()
            })
            if evaluator.prefix_cache is not None:
                snapshot = snapshot.merge({
                    f"prefix.{name}": value
                    for name, value in evaluator.prefix_cache.counters().items()
                })
            snapshot = snapshot.merge(evaluator._worker_metrics.snapshot())
        snapshot["session.trials"] = len(self.result)
        snapshot["session.iteration"] = self._iteration
        return snapshot

    def _emit_trial_telemetry(self, record: TrialRecord) -> None:
        """Per-trial observability: trial span, metrics event, heartbeat.

        The ``trial`` trace event carries the algorithm attribution the
        evaluator cannot know (workers see pipelines, not algorithms) and
        the per-phase split ``repro trace summary`` aggregates into the
        paper's Table-5 shape.  Purely observational: nothing here feeds
        back into the search.
        """
        if self._tracer is not None:
            self._tracer.emit(
                "trial", ts=time.time() - record.total_time,
                dur=record.total_time, algorithm=self.algorithm.name,
                iteration=record.iteration, accuracy=record.accuracy,
                fidelity=record.fidelity, pick=record.pick_time,
                prep=record.prep_time, train=record.train_time,
            )
        snapshot = None
        if self.on_metrics is not None:
            snapshot = self.metrics_snapshot()
            self.on_metrics(self, snapshot)
        if self.context.telemetry_dir is not None:
            if snapshot is None:
                snapshot = self.metrics_snapshot()
            self._write_heartbeat(snapshot)

    def _write_heartbeat(self, snapshot: MetricsSnapshot) -> None:
        """Atomically refresh this session's heartbeat file.

        Liveness-probe shaped: one small JSON document a supervisor (or a
        human with ``watch cat``) can poll without touching the trace sink.
        Atomic replace means a reader never sees a torn document.  Each
        session owns ``heartbeat-<session_id>.json``; the legacy
        ``heartbeat.json`` is kept as an alias only while this session is
        the telemetry dir's sole writer, so concurrent sessions can never
        clobber each other's heartbeat.
        """
        heartbeat = {
            "session_id": self.session_id,
            "algorithm": self.algorithm.name,
            "trials": len(self.result),
            "iteration": self._iteration,
            "best_accuracy": (self.result.best_accuracy
                              if len(self.result) else None),
            "budget_used": getattr(self._budget, "used", None),
            "time": time.time(),
            "metrics": snapshot.to_dict(),
        }
        directory = Path(self.context.telemetry_dir)
        document = json.dumps(heartbeat, indent=2, default=str)
        try:
            atomic_write_text(
                directory / heartbeat_file_name(self.session_id), document
            )
            if _sole_heartbeat_writer(directory, self.session_id):
                atomic_write_text(directory / HEARTBEAT_FILE_NAME, document)
        except OSError as error:
            # Telemetry must never kill a search: an unwritable heartbeat
            # (full disk, revoked permissions) degrades to a log line.
            log.warning("heartbeat write failed: %s", error)

    @staticmethod
    def _check_checkpointable(budget) -> None:
        """Checkpointing freezes a trial count; other budgets cannot resume.

        Raised from :meth:`checkpoint` and at ``run()`` start when periodic
        checkpoints are configured, so an impossible snapshot is rejected
        at request time instead of aborting the search mid-loop.
        """
        if budget is None:
            raise ValidationError(
                "nothing to checkpoint: the session has not started a run"
            )
        if not isinstance(budget, TrialBudget):
            raise ValidationError(
                "checkpointing requires a TrialBudget (deterministic trial "
                f"accounting); this session runs under {budget!r}"
            )

    def _write_checkpoint(self, path, *, pending_records,
                          async_capture) -> Path:
        budget = self._budget
        self._check_checkpointable(budget)
        async_state = async_capture() if async_capture is not None \
            else self._async_state
        if async_state is not None:
            iteration = int(async_state.get("iteration", self._iteration))
            stalled = int(async_state.get("stalled", self._stalled))
        else:
            iteration, stalled = self._iteration, self._stalled
        problem = self.problem
        document = {
            "algorithm": self.algorithm.name,
            "session_id": self.session_id,
            "driver": self._driver or "sync",
            "context": self.context.to_dict(),
            "problem": {
                "name": problem.name,
                "fingerprint": problem.evaluator.fingerprint(),
                "provenance": getattr(problem, "provenance", None),
            },
            "budget": {"max_trials": budget.max_trials, "used": budget.used},
            "loop": {"iteration": iteration, "stalled": stalled,
                     "initialized": self._initialized},
            "rng_state": self._rng.bit_generator.state,
            "baseline_accuracy": self.result.baseline_accuracy,
            "trials": [trial_to_dict(trial) for trial in self.result.trials],
            # The RNG rides in the SAME pickle as the algorithm: some
            # algorithms capture the session generator in _setup (Anneal's
            # acceptance draws interleave with the propose draws on one
            # stream), and pickling them together preserves that object
            # identity — two separate restores would fork the stream and
            # break bit-for-bit resume.  The JSON ``rng_state`` above is
            # informational.
            "state_blob": encode_state_blob({
                "algorithm": self.algorithm,
                "rng": self._rng,
                "pending_records": list(pending_records),
                "async_state": async_state,
            }),
        }
        path = Path(path)
        save_session_checkpoint(document, path)
        log.debug("checkpoint written: %s (%d trials)", path,
                  len(self.result))
        self._trials_since_checkpoint = 0
        self.last_checkpoint_path = path
        if self.on_checkpoint is not None:
            self.on_checkpoint(self, path)
        return path

    def __repr__(self) -> str:
        return (f"SearchSession(problem={self.problem.name!r}, "
                f"algorithm={self.algorithm!r}, "
                f"trials={len(self.result)}, driver={self._driver!r})")
