"""TPE: the Tree-structured Parzen Estimator adapted to pipeline search.

TPE models two densities over the pipeline space — one over the best
``gamma`` fraction of trials and one over the rest — and proposes the
candidate (sampled from the "good" density) that maximises the density
ratio.  Densities are products of per-position categorical distributions
(see :mod:`repro.surrogates.kde`), which is the natural analogue of the KDE
TPE uses for continuous hyperparameters.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.search.base import SearchAlgorithm
from repro.surrogates.kde import TwoDensityModel


class TPE(SearchAlgorithm):
    """Tree-structured Parzen Estimator for Auto-FP.

    Parameters
    ----------
    n_init:
        Random pipelines evaluated before the density model is used.
    gamma:
        Fraction of trials considered "good".
    n_candidates:
        Candidates sampled from the good density per iteration.
    """

    name = "tpe"
    category = "surrogate"
    area = "hpo"
    surrogate_model = "KDE"
    initialization = "Random Search"
    samples_per_iteration = ">1"
    evaluations_per_iteration = "=1"

    def __init__(self, n_init: int = 8, gamma: float = 0.25, n_candidates: int = 24,
                 random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        self.n_init = int(n_init)
        self.gamma = float(gamma)
        self.n_candidates = int(n_candidates)

    def _setup(self, problem, rng) -> None:
        self._model: TwoDensityModel | None = None

    def _update(self, trials: list[TrialRecord], space: SearchSpace, rng) -> None:
        if self._model is None:
            self._model = TwoDensityModel(
                space, gamma=self.gamma, min_trials=max(4, self.n_init)
            )
        usable = [t for t in trials if t.fidelity >= 1.0]
        self._model.refit(usable)

    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        if self._model is None or not self._model.ready_:
            return [space.sample_pipeline(rng)]
        return [self._model.suggest(self.n_candidates, rng)]
