"""The 15 Auto-FP search algorithms, extensions, and their unified framework."""

from repro.search.asha import ASHA
from repro.search.async_driver import AsyncSearchDriver
from repro.search.bandit import BOHB, Hyperband
from repro.search.bandit_extra import ThompsonSamplingSearch, UCBSearch
from repro.search.base import SearchAlgorithm
from repro.search.enas import ENAS
from repro.search.evolution import PBT, TEVO_H, TEVO_Y, TournamentEvolution
from repro.search.pnas import PLE, PLNE, PME, PMNE, ProgressiveNAS
from repro.search.registry import (
    ALGORITHM_CATEGORIES,
    ALL_ALGORITHM_NAMES,
    EXTENSION_ALGORITHM_CLASSES,
    SEARCH_ALGORITHM_CLASSES,
    category_of,
    get_search_algorithm_class,
    make_search_algorithm,
    taxonomy_table,
)
from repro.search.reinforce import Reinforce
from repro.search.session import SearchSession
from repro.search.smac import SMAC, expected_improvement
from repro.search.tpe import TPE
from repro.search.traditional import Anneal, RandomSearch

__all__ = [
    "SearchAlgorithm",
    "SearchSession",
    "AsyncSearchDriver",
    "ASHA",
    "RandomSearch",
    "Anneal",
    "SMAC",
    "expected_improvement",
    "TPE",
    "ProgressiveNAS",
    "PMNE",
    "PME",
    "PLNE",
    "PLE",
    "TournamentEvolution",
    "TEVO_H",
    "TEVO_Y",
    "PBT",
    "Reinforce",
    "ENAS",
    "Hyperband",
    "BOHB",
    "UCBSearch",
    "ThompsonSamplingSearch",
    "EXTENSION_ALGORITHM_CLASSES",
    "SEARCH_ALGORITHM_CLASSES",
    "ALGORITHM_CATEGORIES",
    "ALL_ALGORITHM_NAMES",
    "get_search_algorithm_class",
    "make_search_algorithm",
    "taxonomy_table",
    "category_of",
]
