"""SMAC: sequential model-based optimisation with a random-forest surrogate.

SMAC fits a random-forest regressor mapping the one-hot pipeline encoding to
the observed validation accuracy.  Each iteration it scores a pool of
candidate pipelines (random samples plus mutations of the incumbent) with an
expected-improvement acquisition function derived from the forest's mean and
across-tree spread, and evaluates the single best-scoring candidate.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.models.forest import RandomForestRegressor
from repro.search.base import SearchAlgorithm


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                         xi: float = 0.01) -> np.ndarray:
    """Expected improvement of maximising candidates over the incumbent ``best``."""
    std = np.maximum(std, 1e-9)
    improvement = mean - best - xi
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


class SMAC(SearchAlgorithm):
    """Random-forest-based Bayesian optimisation for Auto-FP.

    Parameters
    ----------
    n_init:
        Random pipelines evaluated before the surrogate is first trained.
    n_candidates:
        Size of the candidate pool scored per iteration.
    n_trees:
        Number of trees in the surrogate forest.
    refit_interval:
        Refit the surrogate every this many evaluations (1 = every
        iteration, larger values trade model freshness for speed).
    """

    name = "smac"
    category = "surrogate"
    area = "hpo"
    surrogate_model = "Random Forest"
    initialization = "Random Search"
    samples_per_iteration = ">1"
    evaluations_per_iteration = "=1"

    def __init__(self, n_init: int = 8, n_candidates: int = 30, n_trees: int = 10,
                 refit_interval: int = 1, random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        self.n_init = int(n_init)
        self.n_candidates = int(n_candidates)
        self.n_trees = int(n_trees)
        self.refit_interval = max(1, int(refit_interval))

    def _setup(self, problem, rng) -> None:
        self._surrogate: RandomForestRegressor | None = None
        self._n_seen = 0

    def _update(self, trials: list[TrialRecord], space: SearchSpace, rng) -> None:
        usable = [t for t in trials if t.fidelity >= 1.0]
        if len(usable) < 2:
            self._surrogate = None
            return
        if self._surrogate is not None and len(usable) - self._n_seen < self.refit_interval:
            return
        X = space.encode_many([t.pipeline for t in usable])
        y = np.asarray([t.accuracy for t in usable])
        self._surrogate = RandomForestRegressor(
            n_estimators=self.n_trees,
            max_depth=8,
            random_state=int(rng.integers(0, 2**31 - 1)),
        ).fit(X, y)
        self._n_seen = len(usable)

    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        if self._surrogate is None:
            return [space.sample_pipeline(rng)]

        usable = [t for t in trials if t.fidelity >= 1.0]
        incumbent = max(usable, key=lambda t: t.accuracy)
        candidates = space.sample_pipelines(self.n_candidates // 2, rng)
        candidates += [
            space.mutate(incumbent.pipeline, rng)
            for _ in range(self.n_candidates - len(candidates))
        ]
        encoded = space.encode_many(candidates)
        mean, std = self._surrogate.predict_with_std(encoded)
        scores = expected_improvement(mean, std, incumbent.accuracy)
        return [candidates[int(np.argmax(scores))]]
