"""Extension bandit searchers: UCB and Thompson sampling for Auto-FP.

Section 4.1.5 of the paper notes that Thompson sampling and the Upper
Confidence Bound rule are the classical answers to multi-armed bandit
problems but were left out of the 15-algorithm study because Hyperband and
BOHB are the bandit algorithms used in HPO practice.  These two searchers
fill that gap as an *ablation*: they treat Auto-FP itself as a factored
bandit problem instead of trading evaluation fidelity.

The factored formulation mirrors the HPO view of Figure 3: one bandit picks
the pipeline length, and for every position there is a bandit over the
candidate preprocessors.  After each evaluation the observed validation
accuracy is credited to the arms that produced the pipeline, so arms that
participate in good pipelines are pulled more often.  ``UCBSearch`` selects
arms with the UCB1 rule; ``ThompsonSamplingSearch`` samples from a Gaussian
posterior per arm.

Both are registered as *extension* algorithms (see
:data:`repro.search.registry.EXTENSION_ALGORITHM_CLASSES`) so the paper's
15-algorithm tables are unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import Pipeline
from repro.core.result import TrialRecord
from repro.core.search_space import SearchSpace
from repro.exceptions import ValidationError
from repro.search.base import SearchAlgorithm


class _ArmStatistics:
    """Pull counts and reward sums for one family of arms."""

    def __init__(self, n_arms: int) -> None:
        self.counts = np.zeros(n_arms, dtype=np.float64)
        self.sums = np.zeros(n_arms, dtype=np.float64)
        self.sums_of_squares = np.zeros(n_arms, dtype=np.float64)

    def update(self, arm: int, reward: float) -> None:
        self.counts[arm] += 1.0
        self.sums[arm] += reward
        self.sums_of_squares[arm] += reward * reward

    def means(self) -> np.ndarray:
        counts = np.maximum(self.counts, 1.0)
        return self.sums / counts

    def variances(self) -> np.ndarray:
        counts = np.maximum(self.counts, 1.0)
        means = self.sums / counts
        return np.maximum(self.sums_of_squares / counts - means ** 2, 1e-6)


class _FactoredBanditSearch(SearchAlgorithm):
    """Shared machinery of the UCB / Thompson-sampling searchers.

    Subclasses implement :meth:`_select_arm`, which picks one arm index given
    that arm family's statistics and the total number of pulls so far.
    """

    category = "bandit"
    area = "hpo"
    surrogate_model = "None"
    initialization = "Random Search"
    samples_per_iteration = "=1"
    evaluations_per_iteration = "=1"
    n_init = 5

    def __init__(self, random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)

    # ---------------------------------------------------------------- setup
    def _setup(self, problem, rng) -> None:
        space = problem.space
        self._space = space
        self._length_arms = _ArmStatistics(space.max_length)
        self._position_arms = [
            _ArmStatistics(space.n_candidates) for _ in range(space.max_length)
        ]
        self._total_pulls = 0

    # ---------------------------------------------------------------- hooks
    def _propose(self, space: SearchSpace, rng: np.random.Generator, trials):
        length_index = self._select_arm(self._length_arms, rng)
        length = length_index + 1
        indices = [
            self._select_arm(self._position_arms[position], rng)
            for position in range(length)
        ]
        return [space.pipeline_from_indices(indices)]

    def _observe(self, record: TrialRecord) -> None:
        if not hasattr(self, "_length_arms"):
            return
        reward = record.accuracy
        indices = self._space.indices_of(record.pipeline)
        self._total_pulls += 1
        self._length_arms.update(len(indices) - 1, reward)
        for position, arm in enumerate(indices):
            self._position_arms[position].update(arm, reward)

    # ------------------------------------------------------------ selection
    def _select_arm(self, arms: _ArmStatistics, rng: np.random.Generator) -> int:
        raise NotImplementedError


class UCBSearch(_FactoredBanditSearch):
    """UCB1 over the factored (length, per-position preprocessor) arms.

    Parameters
    ----------
    exploration:
        Multiplier on the confidence radius; larger values explore more.
    """

    name = "ucb"

    def __init__(self, exploration: float = 1.0, random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        if exploration <= 0:
            raise ValidationError("exploration must be positive")
        self.exploration = float(exploration)

    def _select_arm(self, arms: _ArmStatistics, rng: np.random.Generator) -> int:
        unexplored = np.flatnonzero(arms.counts == 0)
        if unexplored.size:
            return int(unexplored[int(rng.integers(0, unexplored.size))])
        total = max(self._total_pulls, 1)
        radius = self.exploration * np.sqrt(2.0 * np.log(total) / arms.counts)
        scores = arms.means() + radius
        best = np.flatnonzero(scores == scores.max())
        return int(best[int(rng.integers(0, best.size))])


class ThompsonSamplingSearch(_FactoredBanditSearch):
    """Gaussian Thompson sampling over the factored Auto-FP arms.

    Each arm keeps a running mean and variance of the accuracies it
    participated in; selection draws one sample per arm from
    ``Normal(mean, variance / count)`` (plus a weak prior) and plays the
    arm with the largest draw.

    Parameters
    ----------
    prior_variance:
        Variance of the zero-pull prior; larger values explore more.
    """

    name = "thompson"

    def __init__(self, prior_variance: float = 0.25,
                 random_state: int | None = 0) -> None:
        super().__init__(random_state=random_state)
        if prior_variance <= 0:
            raise ValidationError("prior_variance must be positive")
        self.prior_variance = float(prior_variance)

    def _select_arm(self, arms: _ArmStatistics, rng: np.random.Generator) -> int:
        counts = arms.counts
        means = arms.means()
        posterior_variance = np.where(
            counts > 0,
            arms.variances() / np.maximum(counts, 1.0),
            self.prior_variance,
        )
        posterior_mean = np.where(counts > 0, means, 0.5)
        draws = rng.normal(posterior_mean, np.sqrt(posterior_variance))
        best = np.flatnonzero(draws == draws.max())
        return int(best[int(rng.integers(0, best.size))])
