"""Parameter-extended Auto-FP search (Section 6) and budget allocation (Section 8)."""

from repro.extensions.allocation import (
    AllocatedTwoStepSearch,
    AllocationStrategy,
    FixedAllocation,
    GreedyAdaptiveAllocation,
    HalvingAllocation,
    RoundOutcome,
    RoundPlan,
    compare_allocations,
    make_allocation,
)
from repro.extensions.param_space import (
    ParameterizedSpace,
    high_cardinality_space,
    low_cardinality_space,
)
from repro.extensions.strategies import (
    ExtendedSearchOutcome,
    OneStepSearch,
    TwoStepSearch,
    compare_one_step_two_step,
)

__all__ = [
    "ParameterizedSpace",
    "low_cardinality_space",
    "high_cardinality_space",
    "OneStepSearch",
    "TwoStepSearch",
    "ExtendedSearchOutcome",
    "compare_one_step_two_step",
    "AllocationStrategy",
    "FixedAllocation",
    "HalvingAllocation",
    "GreedyAdaptiveAllocation",
    "AllocatedTwoStepSearch",
    "RoundPlan",
    "RoundOutcome",
    "make_allocation",
    "compare_allocations",
]
