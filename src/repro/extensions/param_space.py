"""Parameter-extended search spaces (Section 6.1, Tables 6 and 7).

The default Auto-FP space fixes every preprocessor to its default
parameters.  The extended spaces let each preprocessor expose a grid of
parameter values; their key property is the *cardinality* of the largest
grid, which determines whether One-step or Two-step extension works better.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.search_space import SearchSpace
from repro.preprocessing.registry import expand_parameter_grid, make_preprocessor
from repro.utils.random import check_random_state


@dataclass
class ParameterizedSpace:
    """A per-preprocessor parameter grid plus pipeline-length bound.

    ``grid`` maps preprocessor names to ``{parameter: candidate values}``;
    an empty inner mapping means the preprocessor has no parameters.
    """

    grid: Mapping[str, Mapping[str, tuple]]
    max_length: int = 7

    def max_cardinality(self) -> int:
        """Cardinality of the largest single-parameter grid (Tables 6/7 captions)."""
        cardinalities = [
            len(tuple(values))
            for params in self.grid.values()
            for values in params.values()
        ]
        return max(cardinalities) if cardinalities else 1

    def n_parameterized_preprocessors(self) -> int:
        """Number of concrete preprocessors after One-step expansion."""
        total = 0
        for params in self.grid.values():
            count = 1
            for values in params.values():
                count *= len(tuple(values))
            total += count
        return total

    # ----------------------------------------------------------- expansions
    def one_step_space(self) -> SearchSpace:
        """The One-step view: every parameterisation becomes its own preprocessor.

        For the low-cardinality space this grows the candidate count from 7
        to 31 (Section 6.2); any pipeline search algorithm can then be run
        unchanged on the enlarged space.
        """
        candidates = expand_parameter_grid(self.grid)
        return SearchSpace(candidates, max_length=self.max_length)

    def sample_configuration(self, random_state=None) -> SearchSpace:
        """The Two-step view: fix one random parameter value per preprocessor.

        Returns a 7-candidate search space in which each preprocessor uses
        the sampled parameter values; Two-step repeats this sampling between
        short pipeline searches.
        """
        rng = check_random_state(random_state)
        candidates = []
        for name, params in self.grid.items():
            chosen = {}
            for parameter, values in params.items():
                values = tuple(values)
                chosen[parameter] = values[int(rng.integers(0, len(values)))]
            candidates.append(make_preprocessor(name, **chosen))
        return SearchSpace(candidates, max_length=self.max_length)


def low_cardinality_space(max_length: int = 7) -> ParameterizedSpace:
    """The extended low-cardinality search space of Table 6 (max cardinality 8)."""
    grid = {
        "binarizer": {"threshold": (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)},
        "minmax_scaler": {},
        "maxabs_scaler": {},
        "normalizer": {"norm": ("l1", "l2", "max")},
        "standard_scaler": {"with_mean": (True, False)},
        "power_transformer": {"standardize": (True, False)},
        "quantile_transformer": {
            "n_quantiles": (10, 100, 200, 500, 1000, 1200, 1500, 2000),
            "output_distribution": ("uniform", "normal"),
        },
    }
    return ParameterizedSpace(grid=grid, max_length=max_length)


def high_cardinality_space(max_length: int = 7) -> ParameterizedSpace:
    """The extended high-cardinality search space of Table 7 (max cardinality 1990).

    ``threshold`` becomes a 21-value grid (0 to 1 in steps of 0.05) and
    ``n_quantiles`` a 1990-value grid (10 to 2000 in steps of 1), so the
    QuantileTransformer dominates the One-step expansion with ~99% of all
    concrete preprocessors — the pathology Section 6.3 describes.
    """
    thresholds = tuple(np.round(np.arange(0.0, 1.0001, 0.05), 2).tolist())
    n_quantiles = tuple(range(10, 2000))
    grid = {
        "binarizer": {"threshold": thresholds},
        "minmax_scaler": {},
        "maxabs_scaler": {},
        "normalizer": {"norm": ("l1", "l2", "max")},
        "standard_scaler": {"with_mean": (True, False)},
        "power_transformer": {"standardize": (True, False)},
        "quantile_transformer": {
            "n_quantiles": n_quantiles,
            "output_distribution": ("uniform", "normal"),
        },
    }
    return ParameterizedSpace(grid=grid, max_length=max_length)
