"""One-step and Two-step parameter-search strategies (Section 6.2).

*One-step* treats every parameterisation of a preprocessor as a separate
preprocessor and runs a single pipeline search over the enlarged space.

*Two-step* alternates: sample one parameter value per preprocessor, run a
short pipeline search with those values fixed, then resample — repeating
until the overall budget is exhausted and returning the best pipeline seen
across all rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import TrialBudget
from repro.core.problem import AutoFPProblem
from repro.core.result import SearchResult
from repro.extensions.param_space import ParameterizedSpace
from repro.search.base import SearchAlgorithm
from repro.utils.random import check_random_state


@dataclass
class ExtendedSearchOutcome:
    """Result of a parameter-extended search plus bookkeeping."""

    strategy: str
    result: SearchResult
    n_rounds: int = 1

    @property
    def best_accuracy(self) -> float:
        return self.result.best_accuracy

    @property
    def best_pipeline(self):
        return self.result.best_pipeline


class OneStepSearch:
    """Combine parameter and pipeline search in a single enlarged space.

    Parameters
    ----------
    algorithm:
        Any Auto-FP search algorithm instance (the paper uses PBT).
    parameter_space:
        The extended space (Table 6 or Table 7).
    """

    strategy_name = "one_step"

    def __init__(self, algorithm: SearchAlgorithm,
                 parameter_space: ParameterizedSpace) -> None:
        self.algorithm = algorithm
        self.parameter_space = parameter_space

    def search(self, problem: AutoFPProblem, *, max_trials: int = 60) -> ExtendedSearchOutcome:
        """Run one search over the One-step expansion of the parameter space."""
        enlarged = self.parameter_space.one_step_space()
        extended_problem = AutoFPProblem(
            evaluator=problem.evaluator, space=enlarged,
            name=f"{problem.name}/one-step",
        )
        result = self.algorithm.search(extended_problem, max_trials=max_trials)
        result.baseline_accuracy = problem.evaluator.baseline_accuracy()
        return ExtendedSearchOutcome(self.strategy_name, result, n_rounds=1)


class TwoStepSearch:
    """Alternate parameter sampling and short pipeline searches.

    Parameters
    ----------
    algorithm_factory:
        Callable ``seed -> SearchAlgorithm`` producing a fresh searcher per
        round (so rounds are independent).
    parameter_space:
        The extended space (Table 6 or Table 7).
    trials_per_round:
        Evaluation budget of each inner pipeline search (the paper uses a
        60-second inner limit; here it is an evaluation count).
    """

    strategy_name = "two_step"

    def __init__(self, algorithm_factory, parameter_space: ParameterizedSpace,
                 trials_per_round: int = 15, random_state: int | None = 0) -> None:
        self.algorithm_factory = algorithm_factory
        self.parameter_space = parameter_space
        self.trials_per_round = int(trials_per_round)
        self.random_state = random_state

    def search(self, problem: AutoFPProblem, *, max_trials: int = 60) -> ExtendedSearchOutcome:
        """Repeat (sample parameters, short pipeline search) until the budget ends."""
        rng = check_random_state(self.random_state)
        merged = SearchResult(algorithm=f"two_step[{self.strategy_name}]")
        merged.baseline_accuracy = problem.evaluator.baseline_accuracy()
        budget = TrialBudget(max_trials)
        n_rounds = 0

        while not budget.exhausted():
            n_rounds += 1
            configured_space = self.parameter_space.sample_configuration(rng)
            round_problem = AutoFPProblem(
                evaluator=problem.evaluator, space=configured_space,
                name=f"{problem.name}/two-step-round-{n_rounds}",
            )
            round_trials = int(min(self.trials_per_round, budget.remaining()))
            if round_trials < 1:
                break
            algorithm = self.algorithm_factory(int(rng.integers(0, 2**31 - 1)))
            round_result = algorithm.search(round_problem, max_trials=round_trials)
            merged.extend(round_result.trials)
            budget.consume(len(round_result.trials))

        return ExtendedSearchOutcome(self.strategy_name, merged, n_rounds=n_rounds)


def compare_one_step_two_step(problem: AutoFPProblem,
                              parameter_space: ParameterizedSpace,
                              algorithm_factory, *, max_trials: int = 60,
                              trials_per_round: int = 15,
                              random_state: int | None = 0) -> dict:
    """Run both strategies on the same problem and return their outcomes.

    ``algorithm_factory`` is a callable ``seed -> SearchAlgorithm`` so both
    strategies use the same underlying search algorithm (the paper uses PBT).
    """
    rng = check_random_state(random_state)
    one_step = OneStepSearch(
        algorithm_factory(int(rng.integers(0, 2**31 - 1))), parameter_space
    ).search(problem, max_trials=max_trials)
    two_step = TwoStepSearch(
        algorithm_factory, parameter_space,
        trials_per_round=trials_per_round,
        random_state=int(rng.integers(0, 2**31 - 1)),
    ).search(problem, max_trials=max_trials)
    return {"one_step": one_step, "two_step": two_step}
