"""Budget allocation between parameter search and pipeline search.

Section 8 of the paper ("Allocate pipeline and parameter search time budget
reasonably") observes that the Two-step extension has an inherent trade-off:
spending more of the budget on each inner pipeline search means fine-tuning
fewer parameter configurations, while spending less per round explores many
configurations shallowly.  This module makes that trade-off explicit through
pluggable *allocation strategies* used by :class:`AllocatedTwoStepSearch`:

* :class:`FixedAllocation` — the plain Two-step scheme of Section 6.2: every
  round gets the same number of trials and a fresh random configuration.
* :class:`HalvingAllocation` — a successive-halving scheme over parameter
  configurations: a screening phase gives many configurations a small
  budget, then the best configurations are re-searched with progressively
  larger budgets.
* :class:`GreedyAdaptiveAllocation` — exploit-on-improvement: when a round
  improves the overall best accuracy its configuration is kept and its next
  round budget doubles, otherwise a fresh configuration is sampled at the
  minimum round size.

``compare_allocations`` runs all strategies on one problem so the ablation
benchmark can rank them under an equal total budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.budget import TrialBudget
from repro.core.problem import AutoFPProblem
from repro.core.result import SearchResult
from repro.exceptions import ValidationError
from repro.extensions.param_space import ParameterizedSpace
from repro.extensions.strategies import ExtendedSearchOutcome
from repro.utils.random import check_random_state


@dataclass
class RoundPlan:
    """What :class:`AllocatedTwoStepSearch` should do in the next round.

    Attributes
    ----------
    trials:
        Number of pipeline evaluations granted to the round.
    reuse_configuration:
        When True the previous round's parameter configuration is searched
        again (with the new budget) instead of sampling a fresh one.
    """

    trials: int
    reuse_configuration: bool = False


@dataclass
class RoundOutcome:
    """What actually happened in one completed round."""

    round_index: int
    trials_used: int
    best_accuracy: float
    improved_overall_best: bool
    configuration_id: int


class AllocationStrategy:
    """Protocol: decide the budget (and configuration reuse) of each round."""

    name = "allocation"

    def plan_round(self, history: list[RoundOutcome],
                   remaining_trials: int) -> RoundPlan:
        """Return the plan for the next round given past rounds and the budget left."""
        raise NotImplementedError


class FixedAllocation(AllocationStrategy):
    """Constant round size with a fresh configuration every round (plain Two-step)."""

    name = "fixed"

    def __init__(self, trials_per_round: int = 15) -> None:
        if trials_per_round < 1:
            raise ValidationError("trials_per_round must be at least 1")
        self.trials_per_round = int(trials_per_round)

    def plan_round(self, history: list[RoundOutcome],
                   remaining_trials: int) -> RoundPlan:
        return RoundPlan(trials=min(self.trials_per_round, remaining_trials))


class HalvingAllocation(AllocationStrategy):
    """Successive halving over parameter configurations.

    The first ``n_screening`` rounds give fresh configurations a small
    ``screening_trials`` budget each.  After screening, every subsequent
    round re-searches the best configuration seen so far with an
    ``eta``-times larger budget than the previous exploitation round.
    """

    name = "halving"

    def __init__(self, n_screening: int = 4, screening_trials: int = 5,
                 eta: float = 2.0) -> None:
        if n_screening < 1:
            raise ValidationError("n_screening must be at least 1")
        if screening_trials < 1:
            raise ValidationError("screening_trials must be at least 1")
        if eta <= 1.0:
            raise ValidationError("eta must be greater than 1")
        self.n_screening = int(n_screening)
        self.screening_trials = int(screening_trials)
        self.eta = float(eta)

    def plan_round(self, history: list[RoundOutcome],
                   remaining_trials: int) -> RoundPlan:
        if len(history) < self.n_screening:
            return RoundPlan(trials=min(self.screening_trials, remaining_trials))
        exploitation_rounds = len(history) - self.n_screening
        trials = int(round(self.screening_trials * self.eta ** (exploitation_rounds + 1)))
        return RoundPlan(trials=min(max(trials, 1), remaining_trials),
                         reuse_configuration=True)


class GreedyAdaptiveAllocation(AllocationStrategy):
    """Exploit configurations that improve the overall best accuracy.

    A round that improves the overall best keeps its configuration and gets
    twice the budget next time (capped at ``max_trials_per_round``); a round
    that does not improve falls back to a fresh configuration at
    ``min_trials`` evaluations.
    """

    name = "greedy"

    def __init__(self, min_trials: int = 5, max_trials_per_round: int = 30) -> None:
        if min_trials < 1:
            raise ValidationError("min_trials must be at least 1")
        if max_trials_per_round < min_trials:
            raise ValidationError("max_trials_per_round must be >= min_trials")
        self.min_trials = int(min_trials)
        self.max_trials_per_round = int(max_trials_per_round)

    def plan_round(self, history: list[RoundOutcome],
                   remaining_trials: int) -> RoundPlan:
        if not history or not history[-1].improved_overall_best:
            return RoundPlan(trials=min(self.min_trials, remaining_trials))
        doubled = min(history[-1].trials_used * 2, self.max_trials_per_round)
        return RoundPlan(trials=min(doubled, remaining_trials),
                         reuse_configuration=True)


class AllocatedTwoStepSearch:
    """Two-step parameter/pipeline search driven by an allocation strategy.

    Parameters
    ----------
    algorithm_factory:
        Callable ``seed -> SearchAlgorithm`` producing a fresh searcher for
        each round.
    parameter_space:
        The extended parameter space (Table 6 or Table 7).
    allocation:
        An :class:`AllocationStrategy` deciding each round's budget and
        whether to reuse the best configuration.
    random_state:
        Seed for configuration sampling and per-round searcher seeds.
    """

    def __init__(self, algorithm_factory, parameter_space: ParameterizedSpace,
                 allocation: AllocationStrategy | None = None,
                 random_state: int | None = 0) -> None:
        self.algorithm_factory = algorithm_factory
        self.parameter_space = parameter_space
        self.allocation = allocation or FixedAllocation()
        self.random_state = random_state

    def search(self, problem: AutoFPProblem, *,
               max_trials: int = 60) -> ExtendedSearchOutcome:
        """Run the allocated Two-step search until ``max_trials`` evaluations."""
        rng = check_random_state(self.random_state)
        merged = SearchResult(algorithm=f"two_step[{self.allocation.name}]")
        merged.baseline_accuracy = problem.evaluator.baseline_accuracy()
        budget = TrialBudget(max_trials)

        history: list[RoundOutcome] = []
        overall_best = -np.inf
        best_space = None
        best_configuration_id = -1
        next_configuration_id = 0

        while not budget.exhausted():
            plan = self.allocation.plan_round(history, int(budget.remaining()))
            if plan.trials < 1:
                break
            if plan.reuse_configuration and best_space is not None:
                configured_space = best_space
                configuration_id = best_configuration_id
            else:
                configured_space = self.parameter_space.sample_configuration(rng)
                configuration_id = next_configuration_id
                next_configuration_id += 1

            round_problem = AutoFPProblem(
                evaluator=problem.evaluator, space=configured_space,
                name=f"{problem.name}/round-{len(history) + 1}",
            )
            algorithm = self.algorithm_factory(int(rng.integers(0, 2**31 - 1)))
            round_result = algorithm.search(round_problem, max_trials=plan.trials)
            merged.extend(round_result.trials)
            budget.consume(len(round_result.trials))

            round_best = round_result.best_accuracy
            improved = round_best > overall_best
            if improved:
                overall_best = round_best
                best_space = configured_space
                best_configuration_id = configuration_id
            history.append(RoundOutcome(
                round_index=len(history) + 1,
                trials_used=len(round_result.trials),
                best_accuracy=round_best,
                improved_overall_best=improved,
                configuration_id=configuration_id,
            ))

        outcome = ExtendedSearchOutcome(
            f"two_step[{self.allocation.name}]", merged, n_rounds=len(history)
        )
        outcome.rounds = history
        return outcome


#: the allocation strategies compared by the ablation benchmark
DEFAULT_ALLOCATIONS = ("fixed", "halving", "greedy")


def make_allocation(name: str, **kwargs) -> AllocationStrategy:
    """Instantiate an allocation strategy by name."""
    classes = {
        FixedAllocation.name: FixedAllocation,
        HalvingAllocation.name: HalvingAllocation,
        GreedyAdaptiveAllocation.name: GreedyAdaptiveAllocation,
    }
    if name not in classes:
        from repro.exceptions import UnknownComponentError

        raise UnknownComponentError(
            f"Unknown allocation strategy {name!r}. Known names: {sorted(classes)}"
        )
    return classes[name](**kwargs)


def compare_allocations(problem: AutoFPProblem, parameter_space: ParameterizedSpace,
                        algorithm_factory, *, max_trials: int = 60,
                        allocations=DEFAULT_ALLOCATIONS,
                        random_state: int | None = 0) -> dict[str, ExtendedSearchOutcome]:
    """Run every allocation strategy on the same problem under an equal budget."""
    rng = check_random_state(random_state)
    outcomes: dict[str, ExtendedSearchOutcome] = {}
    for name in allocations:
        searcher = AllocatedTwoStepSearch(
            algorithm_factory, parameter_space,
            allocation=make_allocation(name),
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
        outcomes[name] = searcher.search(problem, max_trials=max_trials)
    return outcomes
