"""Registry of the 45 benchmark datasets (synthetic stand-ins).

Each entry mirrors one of the paper's 45 datasets (Table 9): the name, the
binary/multi-class nature and the *relative* size and dimensionality are
preserved, but row and column counts are scaled down so that the full
benchmark suite runs on a laptop.  The ``scale`` argument of
:func:`load_dataset` lets callers move between the quick defaults and
larger instances.

Every dataset is generated deterministically from its name, so two calls
with the same arguments return identical arrays.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import (
    DistortionSpec,
    SyntheticSpec,
    make_distorted_classification,
)
from repro.exceptions import UnknownComponentError


@dataclass(frozen=True)
class DatasetInfo:
    """Catalogue entry describing one benchmark dataset.

    ``paper_rows`` / ``paper_cols`` record the size of the original public
    dataset (Table 9) for reference; ``n_samples`` / ``n_features`` are the
    scaled-down sizes actually generated.
    """

    name: str
    n_samples: int
    n_features: int
    n_classes: int
    paper_rows: int
    paper_cols: int
    paper_size_mb: float
    class_sep: float = 1.5
    label_noise: float = 0.05
    scale_spread: float = 2.0
    skew_fraction: float = 0.3
    imbalance: float = 0.0

    @property
    def is_binary(self) -> bool:
        return self.n_classes == 2

    @property
    def size_category(self) -> str:
        """Small / medium / large bucket used by the bottleneck analysis (Table 5)."""
        if self.paper_cols > 100:
            return "high_dimensional"
        if self.paper_size_mb <= 1.6:
            return "small"
        if self.paper_size_mb <= 4.0:
            return "medium"
        return "large"


def _scaled(rows: int, cols: int) -> tuple[int, int]:
    """Scale the paper's row/column counts down to laptop-friendly sizes."""
    n_samples = int(np.clip(60 + rows ** 0.5 * 4, 80, 400))
    n_features = int(np.clip(cols, 4, 40))
    return n_samples, n_features


# (name, paper_size_mb, paper_rows, paper_cols, n_classes) straight from Table 9.
_TABLE9 = [
    ("ada", 0.34, 3317, 48, 2),
    ("australian", 0.02, 552, 14, 2),
    ("blood", 0.01, 598, 4, 2),
    ("christine", 32.5, 4334, 1636, 2),
    ("click_prediction_small", 2.4, 31958, 11, 2),
    ("covtype", 75.2, 464809, 54, 7),
    ("credit", 2.7, 24000, 23, 2),
    ("eeg", 1.7, 11984, 14, 2),
    ("electricity", 3.0, 36249, 8, 2),
    ("emotion", 0.2431, 312, 77, 2),
    ("fibert", 13.7, 6589, 800, 7),
    ("forex", 3.6, 35060, 10, 2),
    ("gesture", 3.5, 7898, 32, 5),
    ("heart", 0.01, 242, 13, 2),
    ("helena", 15.2, 52156, 27, 100),
    ("higgs", 31.4, 78439, 28, 2),
    ("house_data", 1.8, 17290, 18, 12),
    ("jannis", 38.4, 66986, 54, 4),
    ("jasmine", 1.0, 2387, 144, 2),
    ("kc1", 0.14, 1687, 21, 2),
    ("madeline", 3.3, 2512, 259, 2),
    ("numerai28_6", 24.3, 77056, 21, 2),
    ("pd", 5.3, 604, 753, 2),
    ("philippine", 14.2, 4665, 308, 2),
    ("phoneme", 0.26, 4323, 5, 2),
    ("thyroid", 0.2, 2240, 26, 5),
    ("vehicle", 0.05, 676, 18, 4),
    ("volkert", 68.1, 46648, 180, 10),
    ("wine", 0.35, 5197, 11, 7),
    ("analcatdata_authorship", 0.13, 672, 70, 4),
    ("gas_drift", 17.3, 11128, 128, 6),
    ("har", 55.4, 8239, 561, 6),
    ("hill", 1.3, 969, 100, 2),
    ("ionosphere", 0.08, 280, 34, 2),
    ("isolet", 2.4, 480, 617, 2),
    ("mobile_price", 0.12, 1600, 20, 4),
    ("mozilla4", 0.39, 12436, 5, 2),
    ("nasa", 1.6, 3749, 33, 2),
    ("page", 0.24, 4378, 10, 5),
    ("robot", 0.8, 4364, 24, 4),
    ("run_or_walk", 4.2, 70870, 6, 2),
    ("spambase", 0.7, 3680, 57, 2),
    ("sylvine", 0.42, 4099, 20, 2),
    ("wall_robot", 0.71, 4364, 24, 4),
    ("wilt", 0.25, 3871, 5, 2),
]


def _build_registry() -> dict[str, DatasetInfo]:
    registry: dict[str, DatasetInfo] = {}
    for name, size_mb, rows, cols, classes in _TABLE9:
        n_samples, n_features = _scaled(rows, cols)
        # Class count capped so every class keeps a handful of samples.
        n_classes = int(min(classes, max(2, n_samples // 25)))
        digest = zlib.crc32(name.encode("utf-8"))
        # Per-dataset variation in separability / noise, derived from the name
        # so the registry stays deterministic without storing 45 seeds.
        class_sep = 1.0 + (digest % 7) * 0.25
        label_noise = 0.02 + (digest % 5) * 0.02
        scale_spread = 1.0 + (digest % 4)
        skew_fraction = 0.15 + (digest % 6) * 0.1
        imbalance = 0.0 if classes > 2 else (digest % 3) * 0.15
        registry[name] = DatasetInfo(
            name=name,
            n_samples=n_samples,
            n_features=n_features,
            n_classes=n_classes,
            paper_rows=rows,
            paper_cols=cols,
            paper_size_mb=size_mb,
            class_sep=class_sep,
            label_noise=label_noise,
            scale_spread=scale_spread,
            skew_fraction=skew_fraction,
            imbalance=imbalance,
        )
    return registry


DATASET_REGISTRY: dict[str, DatasetInfo] = _build_registry()

#: datasets used in the paper's motivating experiment (Figure 2 / Table 2)
MOTIVATION_DATASETS: tuple[str, ...] = ("heart", "forex", "pd", "wine")

#: datasets used in the overhead breakdown of Figure 7
BOTTLENECK_DATASETS: tuple[str, ...] = (
    "australian", "forex", "gesture", "higgs", "helena", "wine", "madeline",
)


def list_datasets() -> list[str]:
    """Return all registered dataset names in registry order."""
    return list(DATASET_REGISTRY)


def get_dataset_info(name: str) -> DatasetInfo:
    """Return the catalogue entry for ``name``."""
    try:
        return DATASET_REGISTRY[name]
    except KeyError as exc:
        raise UnknownComponentError(
            f"Unknown dataset {name!r}. Known datasets: {sorted(DATASET_REGISTRY)}"
        ) from exc


def load_dataset(name: str, *, scale: float = 1.0):
    """Generate the synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    name:
        One of the registry names (see :func:`list_datasets`).
    scale:
        Multiplier applied to the default row count, e.g. ``scale=2`` doubles
        the dataset.  Feature and class counts are unaffected.

    Returns
    -------
    X : ndarray of shape (n_samples, n_features)
    y : ndarray of integer labels
    """
    info = get_dataset_info(name)
    n_samples = max(info.n_classes * 10, int(round(info.n_samples * scale)))
    weights = None
    if info.imbalance > 0 and info.n_classes == 2:
        weights = (0.5 + info.imbalance, 0.5 - info.imbalance)
    spec = SyntheticSpec(
        n_samples=n_samples,
        n_features=info.n_features,
        n_classes=info.n_classes,
        class_sep=info.class_sep,
        label_noise=info.label_noise,
        weights=weights,
        distortion=DistortionSpec(
            scale_spread=info.scale_spread,
            skew_fraction=info.skew_fraction,
        ),
        random_state=zlib.crc32(name.encode("utf-8")) % (2**31),
    )
    return make_distorted_classification(spec)


def dataset_statistics() -> list[dict]:
    """Summary statistics of the registry, the data behind Figure 5."""
    stats = []
    for info in DATASET_REGISTRY.values():
        stats.append(
            {
                "name": info.name,
                "paper_size_mb": info.paper_size_mb,
                "paper_rows": info.paper_rows,
                "paper_cols": info.paper_cols,
                "n_samples": info.n_samples,
                "n_features": info.n_features,
                "n_classes": info.n_classes,
                "binary": info.is_binary,
                "size_category": info.size_category,
            }
        )
    return stats
