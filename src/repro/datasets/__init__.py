"""Synthetic dataset generators and the 45-dataset benchmark registry."""

from repro.datasets.registry import (
    BOTTLENECK_DATASETS,
    DATASET_REGISTRY,
    MOTIVATION_DATASETS,
    DatasetInfo,
    dataset_statistics,
    get_dataset_info,
    list_datasets,
    load_dataset,
)
from repro.datasets.synthetic import (
    DistortionSpec,
    SyntheticSpec,
    distort_features,
    make_classification,
    make_distorted_classification,
)

__all__ = [
    "DatasetInfo",
    "DATASET_REGISTRY",
    "MOTIVATION_DATASETS",
    "BOTTLENECK_DATASETS",
    "list_datasets",
    "get_dataset_info",
    "load_dataset",
    "dataset_statistics",
    "DistortionSpec",
    "SyntheticSpec",
    "make_classification",
    "distort_features",
    "make_distorted_classification",
]
