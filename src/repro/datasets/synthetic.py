"""Synthetic tabular-classification dataset generators.

The paper evaluates on 45 public datasets (AutoML challenge, OpenML AutoML
benchmark, Kaggle).  Those files are not available offline, so this module
generates synthetic stand-ins whose *controllable* characteristics mirror
what matters to the study:

* diverse sizes, dimensionalities and class counts (Figure 5 / Table 9),
* heterogeneous feature scales (some features in ``[0, 1]``, others in the
  thousands) so distance/gradient based models suffer without scaling,
* skewed and heavy-tailed features so PowerTransformer / Quantile-
  Transformer have something to fix,
* irrelevant noise features and label noise so accuracy does not saturate.

``make_classification`` is the core generator; ``distort_features`` applies
the scale/skew/outlier distortions that make feature preprocessing matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import check_random_state


@dataclass
class DistortionSpec:
    """How strongly a generated dataset's features are distorted.

    Attributes
    ----------
    scale_spread:
        Exponent range for per-feature multiplicative scales (a value of 3
        means scales span roughly six orders of magnitude, ``10**-3..10**3``).
    skew_fraction:
        Fraction of features passed through ``exp`` to induce right skew.
    heavy_tail_fraction:
        Fraction of features cubed to induce heavy tails / outliers.
    shift_spread:
        Range of additive offsets applied per feature.
    """

    scale_spread: float = 2.0
    skew_fraction: float = 0.3
    heavy_tail_fraction: float = 0.2
    shift_spread: float = 5.0


@dataclass
class SyntheticSpec:
    """Full specification of one synthetic classification dataset."""

    n_samples: int = 200
    n_features: int = 10
    n_informative: int | None = None
    n_classes: int = 2
    class_sep: float = 1.5
    label_noise: float = 0.05
    weights: tuple | None = None
    distortion: DistortionSpec = field(default_factory=DistortionSpec)
    random_state: int = 0


def make_classification(n_samples: int = 200, n_features: int = 10,
                        n_informative: int | None = None, n_classes: int = 2,
                        class_sep: float = 1.5, label_noise: float = 0.0,
                        weights=None, random_state=None):
    """Generate a Gaussian-blob classification problem.

    Each class gets a centroid drawn on a hypersphere of radius
    ``class_sep`` in the informative subspace; samples are the centroid plus
    unit Gaussian noise.  Remaining features are pure noise.  ``weights``
    optionally skews the class proportions; ``label_noise`` flips that
    fraction of labels uniformly at random.

    Returns
    -------
    X : ndarray of shape (n_samples, n_features)
    y : ndarray of shape (n_samples,) with integer labels in [0, n_classes)
    """
    if n_samples < n_classes:
        raise ValidationError("n_samples must be at least n_classes")
    if n_classes < 2:
        raise ValidationError("n_classes must be at least 2")
    if n_features < 1:
        raise ValidationError("n_features must be at least 1")
    rng = check_random_state(random_state)
    if n_informative is None:
        n_informative = max(2, int(np.ceil(n_features * 0.6)))
    n_informative = min(n_informative, n_features)

    if weights is None:
        proportions = np.full(n_classes, 1.0 / n_classes)
    else:
        proportions = np.asarray(weights, dtype=np.float64)
        if proportions.shape[0] != n_classes:
            raise ValidationError("weights must have one entry per class")
        proportions = proportions / proportions.sum()

    counts = np.maximum(1, np.round(proportions * n_samples).astype(int))
    # Adjust so counts sum exactly to n_samples.
    while counts.sum() > n_samples:
        counts[np.argmax(counts)] -= 1
    while counts.sum() < n_samples:
        counts[np.argmin(counts)] += 1

    # Draw centroids, centre them, and push each to radius ``class_sep``.
    # Centring makes the two-class case antipodal (distance ~ 2 * class_sep)
    # and spreads multi-class centroids around the origin, so ``class_sep``
    # controls separability directly.
    centroids = rng.normal(size=(n_classes, n_informative))
    centroids = centroids - centroids.mean(axis=0)
    norms = np.linalg.norm(centroids, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    centroids = centroids / norms * class_sep

    rows = []
    labels = []
    for label, count in enumerate(counts):
        informative = centroids[label] + rng.normal(size=(count, n_informative))
        noise = rng.normal(size=(count, n_features - n_informative))
        rows.append(np.hstack([informative, noise]))
        labels.extend([label] * int(count))
    X = np.vstack(rows)
    y = np.asarray(labels, dtype=np.int64)

    permutation = rng.permutation(n_samples)
    X, y = X[permutation], y[permutation]

    if label_noise > 0.0:
        flip = rng.random(n_samples) < label_noise
        y[flip] = rng.integers(0, n_classes, size=int(flip.sum()))
    return X, y


def distort_features(X, spec: DistortionSpec | None = None, random_state=None):
    """Apply scale/skew/heavy-tail/shift distortions column-wise to ``X``.

    The distortions are monotone per feature so the class structure is
    preserved (a tree can still separate the classes) while scale-sensitive
    models degrade unless an appropriate preprocessing pipeline undoes the
    distortion — exactly the regime the Auto-FP study operates in.
    """
    spec = spec or DistortionSpec()
    rng = check_random_state(random_state)
    X = np.asarray(X, dtype=np.float64).copy()
    n_features = X.shape[1]

    skewed = rng.random(n_features) < spec.skew_fraction
    heavy = rng.random(n_features) < spec.heavy_tail_fraction
    exponents = rng.uniform(-spec.scale_spread, spec.scale_spread, size=n_features)
    shifts = rng.uniform(-spec.shift_spread, spec.shift_spread, size=n_features)

    for j in range(n_features):
        column = X[:, j]
        if skewed[j]:
            column = np.exp(np.clip(column, -10.0, 10.0))
        if heavy[j]:
            column = column ** 3
        column = column * (10.0 ** exponents[j]) + shifts[j]
        X[:, j] = column
    return X


def make_distorted_classification(spec: SyntheticSpec):
    """Generate a classification dataset and apply its distortion spec."""
    rng = check_random_state(spec.random_state)
    X, y = make_classification(
        n_samples=spec.n_samples,
        n_features=spec.n_features,
        n_informative=spec.n_informative,
        n_classes=spec.n_classes,
        class_sep=spec.class_sep,
        label_noise=spec.label_noise,
        weights=spec.weights,
        random_state=rng,
    )
    X = distort_features(X, spec.distortion, random_state=rng)
    return X, y
