"""Experiment configurations for the benchmark harnesses.

The paper's full grid (15 algorithms x 45 datasets x 3 models x 6 time
limits x 5 repetitions) took a 110-vCPU machine; the configurations here
define laptop-scale defaults (small dataset subsets, trial budgets instead
of hours) and a ``full()`` variant that covers every dataset for users with
more time.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.core.context import ExecutionContext
from repro.datasets.registry import list_datasets
from repro.exceptions import ReproDeprecationWarning
from repro.search.registry import ALL_ALGORITHM_NAMES


@dataclass
class ExperimentConfig:
    """Grid definition for one ranking/bottleneck experiment run.

    Attributes
    ----------
    datasets:
        Dataset names from the registry.
    models:
        Downstream models ("lr", "xgb", "mlp").
    algorithms:
        Search-algorithm names (paper abbreviations).
    max_trials:
        Evaluation budget per (dataset, model, algorithm) run.
    n_repeats:
        Independent repetitions (different seeds) averaged per run.
    random_state:
        Base seed; repetition ``r`` of algorithm ``a`` derives its own seed.
    fast_models:
        Use reduced-capacity downstream models (recommended for laptops).
    context:
        The run's :class:`~repro.core.context.ExecutionContext`: its
        ``n_jobs``/``backend`` fan the independent (dataset, model,
        algorithm, repeat) grid cells out across workers (results are
        identical for every worker count and backend), ``cache_dir``
        persists every evaluation across runs, ``async_mode`` runs each
        cell's search completion-driven and ``prefix_cache_bytes`` gives
        each cell evaluator a prefix-transform cache.  Defaults to a
        plain serial context.
    n_jobs / backend / cache_dir / async_mode / prefix_cache_bytes:
        Deprecated per-knob spellings of the context fields.  Setting one
        warns and folds it into :attr:`context`; after construction they
        mirror the context's values, so existing readers keep working.
    """

    datasets: tuple[str, ...]
    models: tuple[str, ...] = ("lr", "xgb", "mlp")
    algorithms: tuple[str, ...] = ALL_ALGORITHM_NAMES
    max_trials: int = 25
    n_repeats: int = 1
    random_state: int = 0
    fast_models: bool = True
    dataset_scale: float = 1.0
    context: ExecutionContext | None = None
    n_jobs: int = 1
    backend: str | None = None
    cache_dir: str | None = None
    async_mode: bool = False
    prefix_cache_bytes: int | None = None

    def __post_init__(self) -> None:
        context = self.context if self.context is not None else ExecutionContext()
        # Only values that *deviate* from the context count as caller-passed
        # legacy spellings: a config round-tripped through
        # ``dataclasses.replace`` carries consistent mirrored fields and
        # must not re-warn.
        legacy: dict = {}
        if self.n_jobs != 1 and self.n_jobs != (context.n_jobs or 1):
            legacy["n_jobs"] = self.n_jobs
        if self.backend is not None and self.backend != context.backend:
            legacy["backend"] = self.backend
        if self.cache_dir is not None and str(self.cache_dir) != context.cache_dir:
            legacy["cache_dir"] = str(self.cache_dir)
        if bool(self.async_mode) != context.async_mode and self.async_mode:
            legacy["async_mode"] = True
        if self.prefix_cache_bytes is not None \
                and self.prefix_cache_bytes != context.prefix_cache_bytes:
            legacy["prefix_cache_bytes"] = int(self.prefix_cache_bytes)
        if legacy:
            names = ", ".join(f"{name}=" for name in sorted(legacy))
            warnings.warn(
                f"ExperimentConfig: the field(s) {names} are deprecated; "
                f"pass context=ExecutionContext(...) instead",
                ReproDeprecationWarning, stacklevel=3,
            )
            context = context.replace(**legacy)
        self.context = context
        # Mirror the context back into the legacy fields (reads stay warning
        # free and consistent with the context, whichever spelling was used).
        self.n_jobs = context.n_jobs if context.n_jobs is not None else 1
        self.backend = context.backend
        self.cache_dir = context.cache_dir
        self.async_mode = context.async_mode
        self.prefix_cache_bytes = context.prefix_cache_bytes

    def with_context(self, context: ExecutionContext) -> "ExperimentConfig":
        """A copy of this config running under ``context``.

        Keeps the mirrored legacy fields consistent, so the copy never
        trips the deprecation shim.
        """
        return replace(
            self, context=context,
            n_jobs=context.n_jobs if context.n_jobs is not None else 1,
            backend=context.backend, cache_dir=context.cache_dir,
            async_mode=context.async_mode,
            prefix_cache_bytes=context.prefix_cache_bytes,
        )

    def cell_context(self) -> ExecutionContext:
        """The context each grid *cell* evaluates under.

        ``n_jobs``/``backend`` describe the grid fan-out, not within-cell
        evaluation (a cell nesting its own worker pool inside a grid
        worker would oversubscribe the machine), so they are stripped;
        the cache and scheduling knobs pass through.
        """
        return self.context.replace(n_jobs=None, backend=None)

    def n_runs(self) -> int:
        """Total number of search runs the configuration implies."""
        return (
            len(self.datasets) * len(self.models) * len(self.algorithms) * self.n_repeats
        )


#: datasets used for quick laptop-scale rankings (diverse sizes / class counts)
QUICK_DATASETS: tuple[str, ...] = (
    "heart", "australian", "blood", "wine", "vehicle", "ionosphere",
)


def quick_config(**overrides) -> ExperimentConfig:
    """Small configuration used by the test-suite and default benchmarks."""
    defaults = dict(
        datasets=QUICK_DATASETS,
        models=("lr",),
        algorithms=ALL_ALGORITHM_NAMES,
        max_trials=20,
        n_repeats=1,
        random_state=0,
        fast_models=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def full_config(**overrides) -> ExperimentConfig:
    """All 45 datasets and all three models (takes considerably longer)."""
    defaults = dict(
        datasets=tuple(list_datasets()),
        models=("lr", "xgb", "mlp"),
        algorithms=ALL_ALGORITHM_NAMES,
        max_trials=40,
        n_repeats=3,
        random_state=0,
        fast_models=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
