"""Experiment configurations for the benchmark harnesses.

The paper's full grid (15 algorithms x 45 datasets x 3 models x 6 time
limits x 5 repetitions) took a 110-vCPU machine; the configurations here
define laptop-scale defaults (small dataset subsets, trial budgets instead
of hours) and a ``full()`` variant that covers every dataset for users with
more time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.registry import list_datasets
from repro.search.registry import ALL_ALGORITHM_NAMES


@dataclass
class ExperimentConfig:
    """Grid definition for one ranking/bottleneck experiment run.

    Attributes
    ----------
    datasets:
        Dataset names from the registry.
    models:
        Downstream models ("lr", "xgb", "mlp").
    algorithms:
        Search-algorithm names (paper abbreviations).
    max_trials:
        Evaluation budget per (dataset, model, algorithm) run.
    n_repeats:
        Independent repetitions (different seeds) averaged per run.
    random_state:
        Base seed; repetition ``r`` of algorithm ``a`` derives its own seed.
    fast_models:
        Use reduced-capacity downstream models (recommended for laptops).
    n_jobs:
        Parallel workers used to fan out the independent
        (dataset, model, algorithm, repeat) grid cells.  ``1`` (default)
        runs the grid serially; ``-1`` uses one worker per CPU core.
        Results are identical for every worker count.
    backend:
        Execution backend for the fan-out: ``"serial"``, ``"thread"`` or
        ``"process"`` (see :mod:`repro.engine`).  The default ``None``
        auto-selects: process when ``n_jobs != 1``, serial otherwise; an
        explicit choice (including ``"serial"``) is always honoured.
    cache_dir:
        Optional root of the persistent cross-run evaluation cache
        (:mod:`repro.io.evalcache`).  Grid cells write every evaluation
        through to disk and answer repeats from it, so re-running the same
        configuration — or any configuration sharing (dataset, model, seed)
        cells — performs zero uncached evaluations, with bit-for-bit
        identical results.  ``None`` (default) disables persistence.
    async_mode:
        When True every cell's search runs under the completion-driven
        :class:`~repro.search.async_driver.AsyncSearchDriver` instead of
        the synchronous barrier loop.  With serial within-cell evaluation
        (the grid default) results are bit-for-bit identical either way.
    prefix_cache_bytes:
        Optional byte budget for each cell evaluator's prefix-transform
        cache (:mod:`repro.core.prefixcache`): pipelines sharing a step
        prefix only pay Prep for their uncached suffix, with bit-for-bit
        identical results.  ``None`` (default) disables prefix reuse.
    """

    datasets: tuple[str, ...]
    models: tuple[str, ...] = ("lr", "xgb", "mlp")
    algorithms: tuple[str, ...] = ALL_ALGORITHM_NAMES
    max_trials: int = 25
    n_repeats: int = 1
    random_state: int = 0
    fast_models: bool = True
    dataset_scale: float = 1.0
    n_jobs: int = 1
    backend: str | None = None
    cache_dir: str | None = None
    async_mode: bool = False
    prefix_cache_bytes: int | None = None

    def n_runs(self) -> int:
        """Total number of search runs the configuration implies."""
        return (
            len(self.datasets) * len(self.models) * len(self.algorithms) * self.n_repeats
        )


#: datasets used for quick laptop-scale rankings (diverse sizes / class counts)
QUICK_DATASETS: tuple[str, ...] = (
    "heart", "australian", "blood", "wine", "vehicle", "ionosphere",
)


def quick_config(**overrides) -> ExperimentConfig:
    """Small configuration used by the test-suite and default benchmarks."""
    defaults = dict(
        datasets=QUICK_DATASETS,
        models=("lr",),
        algorithms=ALL_ALGORITHM_NAMES,
        max_trials=20,
        n_repeats=1,
        random_state=0,
        fast_models=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def full_config(**overrides) -> ExperimentConfig:
    """All 45 datasets and all three models (takes considerably longer)."""
    defaults = dict(
        datasets=tuple(list_datasets()),
        models=("lr", "xgb", "mlp"),
        algorithms=ALL_ALGORITHM_NAMES,
        max_trials=40,
        n_repeats=3,
        random_state=0,
        fast_models=True,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
