"""Plain-text reporting of tables and figure series.

The paper's artefacts are tables and line/bar charts; in an offline,
text-only reproduction the equivalent output is an aligned text table per
artefact.  These helpers format the analysis results the benchmark harness
produces so a run's console output can be compared side by side with the
paper's tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *,
                 float_format: str = "{:.4f}") -> str:
    """Render an aligned text table.

    Floats are formatted with ``float_format``; every other value uses
    ``str``.  Column widths adapt to the longest cell.
    """
    def render(value) -> str:
        if isinstance(value, float) or isinstance(value, np.floating):
            if np.isnan(value):
                return "-"
            return float_format.format(float(value))
        return str(value)

    rendered = [[render(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_ranking_table(rankings: Mapping, algorithms: Sequence[str]) -> str:
    """Format the Table 4 layout: per-model and overall average ranks."""
    headers = ["algorithm", *sorted(rankings["per_model"]), "overall"]
    rows = []
    for name in algorithms:
        row = [name]
        for model in sorted(rankings["per_model"]):
            row.append(rankings["per_model"][model].get(name, float("nan")))
        row.append(rankings["overall"].get(name, float("nan")))
        rows.append(row)
    return format_table(headers, rows, float_format="{:.2f}")


def format_breakdown_table(reports) -> str:
    """Format Pick/Prep/Train percentages (the Figure 7 bars as numbers)."""
    headers = ["dataset", "model", "algorithm", "pick %", "prep %", "train %", "bottleneck"]
    rows = [
        [r.dataset, r.model, r.algorithm, r.pick_percent, r.prep_percent,
         r.train_percent, r.bottleneck]
        for r in reports
    ]
    return format_table(headers, rows, float_format="{:.1f}")


def format_comparison_table(comparisons) -> str:
    """Format the AutoML-context comparison (Figures 10/11 as numbers)."""
    headers = ["dataset", "model", "baseline", "auto_fp", "tpot_fp", "hpo"]
    rows = [
        [c.dataset, c.model, c.baseline_accuracy, c.auto_fp_accuracy,
         c.tpot_fp_accuracy, c.hpo_accuracy]
        for c in comparisons
    ]
    return format_table(headers, rows)


def format_series(name: str, x_values: Sequence, series: Mapping[str, Sequence[float]]) -> str:
    """Format one figure's line series (x-axis plus one column per line)."""
    headers = [name, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(values[i] for values in series.values())])
    return format_table(headers, rows)


def histogram(values: Sequence[float], *, bins: int = 10,
              value_range: tuple[float, float] | None = None) -> str:
    """Text histogram used for the Figure 2 accuracy distributions."""
    values = np.asarray(list(values), dtype=np.float64)
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    peak = counts.max() if counts.size and counts.max() > 0 else 1
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(40 * count / peak))
        lines.append(f"[{edges[i]:.3f}, {edges[i + 1]:.3f}) {count:5d} {bar}")
    return "\n".join(lines)
