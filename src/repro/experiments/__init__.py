"""Experiment configurations, the grid runner and text reporting."""

from repro.experiments.config import (
    QUICK_DATASETS,
    ExperimentConfig,
    full_config,
    quick_config,
)
from repro.experiments.reporting import (
    format_breakdown_table,
    format_comparison_table,
    format_ranking_table,
    format_series,
    format_table,
    histogram,
)
from repro.experiments.runner import (
    ExperimentOutcome,
    no_fp_vs_random_search,
    run_experiment,
    run_single,
)

__all__ = [
    "ExperimentConfig",
    "quick_config",
    "full_config",
    "QUICK_DATASETS",
    "run_experiment",
    "run_single",
    "no_fp_vs_random_search",
    "ExperimentOutcome",
    "format_table",
    "format_ranking_table",
    "format_breakdown_table",
    "format_comparison_table",
    "format_series",
    "histogram",
]
