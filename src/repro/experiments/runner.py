"""Experiment runner: execute search-algorithm grids and collect scenarios.

The runner turns an :class:`~repro.experiments.config.ExperimentConfig` into
the raw material of the paper's tables: one :class:`Scenario` per
(dataset, model) pair with the best accuracy of every algorithm, plus
per-run :class:`BottleneckReport` objects and the underlying
:class:`SearchResult` objects for deeper analysis.

Every (dataset, model, algorithm, repeat) cell of the grid is independent:
it loads its own data, builds its own problem and derives its own seed from
the configuration.  ``run_experiment`` therefore fans the cells out across
an :class:`~repro.engine.engine.ExecutionEngine` (the context's ``n_jobs``
workers on a serial/thread/process backend).  Cells are *submitted* as
individual futures and collected as they complete — no whole-grid barrier —
with ``cell_callback`` reporting each completed cell in completion order,
while the results are still merged in grid order: the outcome is
bit-for-bit identical for every worker count and backend.

Runtime configuration flows through one
:class:`~repro.core.context.ExecutionContext` (``config.context`` or the
``context=`` override); the per-knob keywords of earlier releases keep
working via the deprecation shim.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.bottleneck import BottleneckReport, analyze_result
from repro.analysis.ranking import Scenario, average_rankings
from repro.core.context import _UNSET, ExecutionContext, fold_legacy_kwargs
from repro.core.problem import AutoFPProblem
from repro.core.result import SearchResult
from repro.core.search_space import SearchSpace
from repro.datasets.registry import load_dataset
from repro.engine import ExecutionEngine
from repro.experiments.config import ExperimentConfig
from repro.models.registry import make_classifier
from repro.search.registry import make_search_algorithm


@dataclass
class ExperimentOutcome:
    """Everything produced by one grid run."""

    config: ExperimentConfig
    scenarios: list[Scenario] = field(default_factory=list)
    bottlenecks: list[BottleneckReport] = field(default_factory=list)
    results: dict[tuple[str, str, str], SearchResult] = field(default_factory=dict)
    #: pipeline evaluations that were actually executed (not answered by any
    #: cache layer) across the whole grid; 0 on a fully warm ``cache_dir`` run
    uncached_evaluations: int = 0

    def rankings(self, *, min_improvement: float = 1.5) -> dict:
        """Average rankings over the collected scenarios (Table 4)."""
        return average_rankings(self.scenarios, min_improvement=min_improvement)

    def best_pipelines(self, algorithm: str) -> list:
        """Best pipeline found by ``algorithm`` in every (dataset, model) run."""
        pipelines = []
        for (dataset, model, name), result in self.results.items():
            if name == algorithm and len(result) > 0:
                pipelines.append(result.best_pipeline)
        return pipelines


def run_single(dataset: str, model: str, algorithm: str, *, max_trials: int = 25,
               random_state=_UNSET, fast_model: bool = True,
               dataset_scale: float = 1.0,
               space: SearchSpace | None = None,
               context: ExecutionContext | None = None,
               n_jobs=_UNSET, backend=_UNSET, cache_dir=_UNSET,
               async_mode=_UNSET,
               prefix_cache_bytes=_UNSET) -> tuple[SearchResult, float]:
    """Run one search and return ``(result, baseline_accuracy)``.

    ``context`` carries every runtime knob: its engine parallelises the
    *within-search* evaluation batches (generations, rungs),
    ``async_mode`` schedules them completion-driven, ``cache_dir``
    persists every evaluation so a repeated run is answered from disk and
    ``prefix_cache_bytes`` reuses fitted pipeline prefixes.  The per-knob
    keywords are deprecated spellings folded into the context.
    """
    context = fold_legacy_kwargs(
        context, where="run_single", n_jobs=n_jobs, backend=backend,
        cache_dir=cache_dir, async_mode=async_mode,
        prefix_cache_bytes=prefix_cache_bytes,
    )
    if random_state is _UNSET:
        random_state = context.seed_or(0)
    X, y = load_dataset(dataset, scale=dataset_scale)
    classifier = make_classifier(model, fast=fast_model)
    problem = AutoFPProblem.from_arrays(
        X, y, classifier, space=space, random_state=random_state,
        name=f"{dataset}/{model}", context=context,
    )
    try:
        baseline = problem.baseline_accuracy()
        searcher = make_search_algorithm(algorithm, random_state=random_state)
        result = searcher.search(problem, max_trials=max_trials)
    finally:
        if problem.evaluator.engine is not None:
            problem.evaluator.engine.close()
    result.baseline_accuracy = baseline
    return result, baseline


def _cell_seed(config: ExperimentConfig, algorithm: str, repeat: int) -> int:
    # zlib.crc32 keeps the per-algorithm seed deterministic across
    # processes (Python's hash() is salted per run).
    return config.random_state + 1000 * repeat + zlib.crc32(algorithm.encode()) % 97


#: per-thread memo of (problem, baseline) per (dataset, model) so cells of
#: the same group share one evaluator — and hence its memoization cache —
#: exactly like the pre-fan-out serial runner did.  Thread-local because an
#: evaluator's cache is not safe to mutate from concurrent grid workers;
#: process workers each get their own copy of the module state anyway.
_CELL_PROBLEMS = threading.local()
_CELL_PROBLEM_MEMO_SIZE = 8


def _cell_problem(config: ExperimentConfig, dataset: str, model: str):
    """Return ``(problem, baseline, fresh_evals)`` for one grid group.

    ``fresh_evals`` is the number of uncached evaluations spent creating
    the problem (the baseline evaluation; 0 when the memo already held the
    problem or a warm ``cache_dir`` answered the baseline from disk), so
    the caller can attribute them to exactly one cell.
    """
    memo = getattr(_CELL_PROBLEMS, "memo", None)
    if memo is None:
        memo = _CELL_PROBLEMS.memo = OrderedDict()
    cell_context = config.cell_context()
    key = (dataset, model, config.dataset_scale, config.fast_models,
           config.random_state, cell_context)
    cached = memo.get(key)
    if cached is not None:
        memo.move_to_end(key)
        problem, baseline = cached
        return problem, baseline, 0
    X, y = load_dataset(dataset, scale=config.dataset_scale)
    classifier = make_classifier(model, fast=config.fast_models)
    problem = AutoFPProblem.from_arrays(
        X, y, classifier, random_state=config.random_state,
        name=f"{dataset}/{model}", context=cell_context,
    )
    baseline = problem.baseline_accuracy()
    memo[key] = (problem, baseline)
    while len(memo) > _CELL_PROBLEM_MEMO_SIZE:
        memo.popitem(last=False)
    return problem, baseline, problem.evaluator.n_evaluations


def _run_cell(cell: tuple) -> tuple:
    """Run one independent (dataset, model, algorithm, repeat) grid cell.

    Module-level so a process backend can pickle it.  Returns
    ``(baseline, best_accuracy, result-or-None, uncached)``; the full
    search result is only shipped back for the first repeat (the only one
    the outcome retains), keeping inter-process traffic small.
    ``uncached`` counts the evaluations this cell actually executed — zero
    when a warm persistent cache (``config.cache_dir``) answered them all.
    """
    config, dataset, model, algorithm, repeat = cell
    problem, baseline, fresh_evals = _cell_problem(config, dataset, model)
    evals_before = problem.evaluator.n_evaluations
    searcher = make_search_algorithm(
        algorithm, random_state=_cell_seed(config, algorithm, repeat)
    )
    result = searcher.search(problem, max_trials=config.max_trials)
    result.baseline_accuracy = baseline
    uncached = fresh_evals + problem.evaluator.n_evaluations - evals_before
    return (baseline, result.best_accuracy,
            (result if repeat == 0 else None), uncached)


def _collect_cells(engine: ExecutionEngine, cells, cell_callback=None) -> list:
    """Submit every grid cell as its own future; collect as they complete.

    Unlike a barrier ``map``, a long-running cell cannot hold progress
    reporting hostage: ``cell_callback(dataset, model, algorithm, repeat,
    n_done, n_total)`` fires the moment each cell finishes, in completion
    order.  Outputs still come back in submission (grid) order, so the
    merge downstream is deterministic.  On the serial backend futures are
    lazy and complete in submission order — the deterministic reference.
    """
    backend = engine.backend
    futures = [backend.submit(_run_cell, cell) for cell in cells]
    outputs: list = [None] * len(futures)
    remaining = dict(enumerate(futures))
    done = 0
    while remaining:
        ready = sorted(index for index, future in remaining.items()
                       if future.done())
        if not ready:
            backend.wait_any(list(remaining.values()))
            continue
        for index in ready:
            outputs[index] = remaining.pop(index).result()
            done += 1
            if cell_callback is not None:
                _config, dataset, model, algorithm, repeat = cells[index]
                cell_callback(dataset, model, algorithm, repeat,
                              done, len(futures))
    return outputs


def run_experiment(config: ExperimentConfig, *, progress_callback=None,
                   cell_callback=None,
                   context: ExecutionContext | None = None,
                   n_jobs=_UNSET,
                   backend=_UNSET,
                   cache_dir=_UNSET,
                   prefix_cache_bytes=_UNSET) -> ExperimentOutcome:
    """Run the full (dataset x model x algorithm x repeat) grid of ``config``.

    Repetitions of the same (dataset, model, algorithm) cell are averaged:
    the scenario stores the mean best accuracy, and only the first repeat's
    search result / bottleneck report is retained.

    The independent grid cells are fanned out across the context's
    ``n_jobs`` workers on its execution backend (``context=`` overrides
    ``config.context``); cells are dispatched as individual futures and
    collected per completion — ``cell_callback(dataset, model, algorithm,
    repeat, n_done, n_total)`` fires as each cell lands, in completion
    order.  Cell seeds are derived from the configuration and results are
    merged in grid order, so the outcome does not depend on the worker
    count or backend.  ``progress_callback(dataset, model, algorithm,
    mean_accuracy)`` fires in grid order during the merge, as before.

    The context's ``cache_dir`` turns on the persistent cross-run
    evaluation cache: every worker writes its evaluations through to disk
    and reads previous runs' entries back, so repeating a grid performs
    zero uncached evaluations (``outcome.uncached_evaluations``) while
    producing bit-for-bit identical scenarios.  Its
    ``prefix_cache_bytes`` gives every cell evaluator a prefix-transform
    cache of that byte budget — same scenarios, less Prep time.  The
    per-knob keywords are deprecated spellings folded into the context.
    """
    effective = fold_legacy_kwargs(
        context if context is not None else config.context,
        where="run_experiment", n_jobs=n_jobs, backend=backend,
        cache_dir=cache_dir, prefix_cache_bytes=prefix_cache_bytes,
    )
    if effective is not config.context:
        config = config.with_context(effective)
    # An unset n_jobs means ONE grid worker even under an explicit
    # parallel backend (matching the pre-context behaviour of
    # config.n_jobs defaulting to 1); only -1 asks for every core.
    n_jobs = config.context.n_jobs
    engine = ExecutionEngine(
        config.context.backend_name(),
        n_workers=1 if n_jobs is None else (None if n_jobs == -1 else n_jobs),
    )

    cells = [
        (config, dataset, model, algorithm, repeat)
        for dataset in config.datasets
        for model in config.models
        for algorithm in config.algorithms
        for repeat in range(config.n_repeats)
    ]
    outcome = ExperimentOutcome(config=config)
    try:
        cell_outputs = dict(zip(
            ((d, m, a, r) for _, d, m, a, r in cells),
            _collect_cells(engine, cells, cell_callback),
        ))
        outcome.uncached_evaluations = sum(
            output[3] for output in cell_outputs.values()
        )
        for dataset in config.datasets:
            for model in config.models:
                if config.algorithms:
                    baseline = cell_outputs[
                        (dataset, model, config.algorithms[0], 0)
                    ][0]
                else:
                    # No algorithms: still report baseline-only scenarios.
                    _, baseline, fresh = _cell_problem(config, dataset, model)
                    outcome.uncached_evaluations += fresh
                scenario = Scenario(dataset=dataset, model=model,
                                    baseline_accuracy=baseline)
                for algorithm in config.algorithms:
                    accuracies = []
                    for repeat in range(config.n_repeats):
                        _, best_accuracy, result, _ = cell_outputs[
                            (dataset, model, algorithm, repeat)
                        ]
                        accuracies.append(best_accuracy)
                        if repeat == 0:
                            outcome.results[(dataset, model, algorithm)] = result
                            outcome.bottlenecks.append(
                                analyze_result(result, dataset=dataset,
                                               model=model)
                            )
                    scenario.accuracies[algorithm] = float(np.mean(accuracies))
                    if progress_callback is not None:
                        progress_callback(dataset, model, algorithm,
                                          scenario.accuracies[algorithm])
                outcome.scenarios.append(scenario)
    finally:
        engine.close()
        # Release this thread's (problem, baseline) memo: the datasets and
        # warm evaluator caches should not outlive the experiment.  Worker
        # threads/processes release theirs when the pool winds down.
        _CELL_PROBLEMS.memo = OrderedDict()
    return outcome


def no_fp_vs_random_search(datasets, models=("lr", "xgb", "mlp"), *,
                           max_trials: int = 25, fast_models: bool = True,
                           random_state: int = 0) -> list[dict]:
    """Reproduce Table 11: no-preprocessing accuracy vs random-search accuracy."""
    rows = []
    for dataset in datasets:
        row: dict = {"dataset": dataset}
        for model in models:
            result, baseline = run_single(
                dataset, model, "rs", max_trials=max_trials,
                random_state=random_state, fast_model=fast_models,
            )
            row[f"{model}_no_fp"] = baseline
            row[f"{model}_rs"] = result.best_accuracy
        rows.append(row)
    return rows
