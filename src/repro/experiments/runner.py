"""Experiment runner: execute search-algorithm grids and collect scenarios.

The runner turns an :class:`~repro.experiments.config.ExperimentConfig` into
the raw material of the paper's tables: one :class:`Scenario` per
(dataset, model) pair with the best accuracy of every algorithm, plus
per-run :class:`BottleneckReport` objects and the underlying
:class:`SearchResult` objects for deeper analysis.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.bottleneck import BottleneckReport, analyze_result
from repro.analysis.ranking import Scenario, average_rankings
from repro.core.problem import AutoFPProblem
from repro.core.result import SearchResult
from repro.core.search_space import SearchSpace
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentConfig
from repro.models.registry import make_classifier
from repro.search.registry import make_search_algorithm


@dataclass
class ExperimentOutcome:
    """Everything produced by one grid run."""

    config: ExperimentConfig
    scenarios: list[Scenario] = field(default_factory=list)
    bottlenecks: list[BottleneckReport] = field(default_factory=list)
    results: dict[tuple[str, str, str], SearchResult] = field(default_factory=dict)

    def rankings(self, *, min_improvement: float = 1.5) -> dict:
        """Average rankings over the collected scenarios (Table 4)."""
        return average_rankings(self.scenarios, min_improvement=min_improvement)

    def best_pipelines(self, algorithm: str) -> list:
        """Best pipeline found by ``algorithm`` in every (dataset, model) run."""
        pipelines = []
        for (dataset, model, name), result in self.results.items():
            if name == algorithm and len(result) > 0:
                pipelines.append(result.best_pipeline)
        return pipelines


def run_single(dataset: str, model: str, algorithm: str, *, max_trials: int = 25,
               random_state: int = 0, fast_model: bool = True,
               dataset_scale: float = 1.0,
               space: SearchSpace | None = None) -> tuple[SearchResult, float]:
    """Run one search and return ``(result, baseline_accuracy)``."""
    X, y = load_dataset(dataset, scale=dataset_scale)
    classifier = make_classifier(model, fast=fast_model)
    problem = AutoFPProblem.from_arrays(
        X, y, classifier, space=space, random_state=random_state,
        name=f"{dataset}/{model}",
    )
    baseline = problem.baseline_accuracy()
    searcher = make_search_algorithm(algorithm, random_state=random_state)
    result = searcher.search(problem, max_trials=max_trials)
    result.baseline_accuracy = baseline
    return result, baseline


def run_experiment(config: ExperimentConfig, *, progress_callback=None) -> ExperimentOutcome:
    """Run the full (dataset x model x algorithm x repeat) grid of ``config``.

    Repetitions of the same (dataset, model, algorithm) cell are averaged:
    the scenario stores the mean best accuracy, and only the first repeat's
    search result / bottleneck report is retained.
    """
    outcome = ExperimentOutcome(config=config)

    for dataset in config.datasets:
        X, y = load_dataset(dataset, scale=config.dataset_scale)
        for model in config.models:
            classifier = make_classifier(model, fast=config.fast_models)
            problem = AutoFPProblem.from_arrays(
                X, y, classifier, random_state=config.random_state,
                name=f"{dataset}/{model}",
            )
            baseline = problem.baseline_accuracy()
            scenario = Scenario(dataset=dataset, model=model,
                                baseline_accuracy=baseline)

            for algorithm in config.algorithms:
                accuracies = []
                for repeat in range(config.n_repeats):
                    # zlib.crc32 keeps the per-algorithm seed deterministic
                    # across processes (Python's hash() is salted per run).
                    seed = config.random_state + 1000 * repeat + zlib.crc32(algorithm.encode()) % 97
                    searcher = make_search_algorithm(algorithm, random_state=seed)
                    result = searcher.search(problem, max_trials=config.max_trials)
                    result.baseline_accuracy = baseline
                    accuracies.append(result.best_accuracy)
                    if repeat == 0:
                        outcome.results[(dataset, model, algorithm)] = result
                        outcome.bottlenecks.append(
                            analyze_result(result, dataset=dataset, model=model)
                        )
                scenario.accuracies[algorithm] = float(np.mean(accuracies))
                if progress_callback is not None:
                    progress_callback(dataset, model, algorithm,
                                      scenario.accuracies[algorithm])

            outcome.scenarios.append(scenario)
    return outcome


def no_fp_vs_random_search(datasets, models=("lr", "xgb", "mlp"), *,
                           max_trials: int = 25, fast_models: bool = True,
                           random_state: int = 0) -> list[dict]:
    """Reproduce Table 11: no-preprocessing accuracy vs random-search accuracy."""
    rows = []
    for dataset in datasets:
        row: dict = {"dataset": dataset}
        for model in models:
            result, baseline = run_single(
                dataset, model, "rs", max_trials=max_trials,
                random_state=random_state, fast_model=fast_models,
            )
            row[f"{model}_no_fp"] = baseline
            row[f"{model}_rs"] = result.best_accuracy
        rows.append(row)
    return rows
