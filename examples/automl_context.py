"""Auto-FP in an AutoML context (Section 7 of the paper).

Run with::

    python examples/automl_context.py

The example pits three contenders against each other under the same
evaluation budget on several datasets:

* Auto-FP  — PBT over the full seven-preprocessor pipeline space,
* TPOT-FP  — genetic programming over the five preprocessors TPOT exposes,
* HPO      — hyperparameter tuning of the downstream model on raw features.

Expect Auto-FP to beat TPOT-FP on most datasets (larger space + better
search algorithm) and to be comparable to HPO for the scale-sensitive
models — the paper's argument that feature preprocessing deserves its own
specialised search inside AutoML systems.
"""

from __future__ import annotations

from repro.automl import (
    AUTOML_FP_CAPABILITIES,
    compare_automl_context,
    summarize_comparisons,
)
from repro.datasets import load_dataset
from repro.experiments import format_comparison_table


def main() -> None:
    print("FP capabilities of popular AutoML systems (Table 8):")
    for system, capabilities in AUTOML_FP_CAPABILITIES.items():
        print(f"  {system:<13s} preprocessors={capabilities['n_preprocessors']} "
              f"pipeline length={capabilities['pipeline_length']:<10s} "
              f"search={capabilities['search']}")
    print()

    comparisons = []
    for dataset in ("heart", "forex", "pd", "wine"):
        X, y = load_dataset(dataset, scale=0.7)
        for model in ("lr", "mlp"):
            comparison = compare_automl_context(
                X, y, model, dataset_name=dataset, max_trials=20, random_state=0
            )
            comparisons.append(comparison)
            print(f"{dataset:<8s} {model:<4s} baseline={comparison.baseline_accuracy:.4f} "
                  f"auto_fp={comparison.auto_fp_accuracy:.4f} "
                  f"tpot_fp={comparison.tpot_fp_accuracy:.4f} "
                  f"hpo={comparison.hpo_accuracy:.4f}")

    print("\n=== summary ===")
    print(format_comparison_table(comparisons))
    summary = summarize_comparisons(comparisons)
    print(f"\nAuto-FP >= TPOT-FP on {summary['auto_fp_beats_tpot']}/{summary['n']} runs")
    print(f"Auto-FP >= HPO     on {summary['auto_fp_beats_hpo']}/{summary['n']} runs")
    print(f"Auto-FP >= no-FP   on {summary['auto_fp_beats_baseline']}/{summary['n']} runs")


if __name__ == "__main__":
    main()
