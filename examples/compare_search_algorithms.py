"""Compare all 15 Auto-FP search algorithms on a small dataset grid.

Run with::

    python examples/compare_search_algorithms.py

This is a miniature version of the paper's Table 4 experiment: every search
algorithm gets the same evaluation budget on every (dataset, model) pair,
the algorithms are ranked by the best validation accuracy they reach, and
the per-algorithm average rank plus the Pick/Prep/Train time breakdown is
printed.  Expect evolution-based algorithms (PBT, TEVO) near the top and
random search close behind — the paper's headline finding.
"""

from __future__ import annotations

from repro.analysis import category_average_ranks
from repro.experiments import (
    format_breakdown_table,
    format_ranking_table,
    quick_config,
    run_experiment,
)
from repro.search import ALGORITHM_CATEGORIES, ALL_ALGORITHM_NAMES


def main() -> None:
    config = quick_config(
        datasets=("heart", "australian", "wine", "blood"),
        models=("lr",),
        algorithms=ALL_ALGORITHM_NAMES,
        max_trials=20,
    )
    print(f"running {config.n_runs()} search runs "
          f"({len(config.datasets)} datasets x {len(config.models)} models x "
          f"{len(config.algorithms)} algorithms)...\n")

    outcome = run_experiment(
        config,
        progress_callback=lambda dataset, model, algorithm, acc: print(
            f"  {dataset:<12s} {model:<4s} {algorithm:<10s} best accuracy = {acc:.4f}"
        ),
    )

    rankings = outcome.rankings(min_improvement=0.0)
    print("\n=== average ranking (lower is better) ===")
    print(format_ranking_table(rankings, list(ALL_ALGORITHM_NAMES)))

    print("\n=== category averages ===")
    for category, rank in sorted(
        category_average_ranks(rankings["overall"], ALGORITHM_CATEGORIES).items(),
        key=lambda kv: kv[1],
    ):
        print(f"  {category:<12s} {rank:.2f}")

    print("\n=== time breakdown (Pick / Prep / Train) ===")
    print(format_breakdown_table(outcome.bottlenecks[:12]))


if __name__ == "__main__":
    main()
