"""Auto-FP for deep recommendation models (Section 8 extension).

Run with::

    python examples/deep_recommendation.py

The paper's Section 8 observes that feature preprocessing also matters for
deep models: on a Tmall-style click-through-rate task random FP pipelines
*improved* the DeepFM validation AUC, while on an Instacart-style basket
task they *hurt* it.  This example reruns that contrast on the synthetic
stand-ins shipped with the library and then lets a proper search algorithm
(PBT) look for a pipeline on the dataset where preprocessing helps.
"""

from __future__ import annotations

import numpy as np

from repro import AutoFPProblem, SearchSpace, make_search_algorithm
from repro.deep import DeepFMClassifier, list_ctr_datasets, load_ctr_dataset
from repro.models import roc_auc_score, train_test_split


def auc_without_and_with_random_fp(name: str, n_pipelines: int = 15) -> None:
    """Compare the no-FP AUC against random FP pipelines on one dataset."""
    X, y = load_ctr_dataset(name, scale=0.4, random_state=0)
    X_train, X_valid, y_train, y_valid = train_test_split(
        X, y, test_size=0.2, random_state=0
    )
    model = DeepFMClassifier(max_iter=12, n_factors=4, hidden_layer_sizes=(16,),
                             random_state=0)

    baseline = model.clone().fit(X_train, y_train)
    baseline_auc = roc_auc_score(y_valid, baseline.predict_proba(X_valid)[:, 1])

    space = SearchSpace(max_length=4)
    rng = np.random.default_rng(0)
    aucs = []
    for _ in range(n_pipelines):
        pipeline = space.sample_pipeline(rng)
        fitted = pipeline.fit(X_train)
        trained = model.clone().fit(fitted.transform(X_train), y_train)
        aucs.append(
            roc_auc_score(y_valid, trained.predict_proba(fitted.transform(X_valid))[:, 1])
        )
    print(f"\n{name}: no-FP AUC = {baseline_auc:.4f}")
    print(f"{name}: random FP pipelines — best {max(aucs):.4f}, "
          f"median {np.median(aucs):.4f}, worst {min(aucs):.4f}")


def search_pipeline_for_deepfm() -> None:
    """Run PBT with DeepFM as the downstream model on the Tmall stand-in."""
    X, y = load_ctr_dataset("tmall", scale=0.4, random_state=0)
    model = DeepFMClassifier(max_iter=10, n_factors=4, hidden_layer_sizes=(16,),
                             random_state=0)
    problem = AutoFPProblem.from_arrays(X, y, model, random_state=0,
                                        name="tmall/deepfm")
    print(f"\nsearching pipelines for DeepFM on tmall "
          f"(baseline accuracy {problem.baseline_accuracy():.4f})")
    result = make_search_algorithm("pbt", random_state=0).search(problem, max_trials=20)
    print(f"best pipeline: {result.best_pipeline.describe()}")
    print(f"best validation accuracy: {result.best_accuracy:.4f}")


def main() -> None:
    print("available recommendation datasets:", ", ".join(list_ctr_datasets()))
    for name in list_ctr_datasets():
        auc_without_and_with_random_fp(name)
    search_pipeline_for_deepfm()


if __name__ == "__main__":
    main()
