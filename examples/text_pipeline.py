"""Auto-FP on text data: vectorize first, then search a preprocessing pipeline.

Run with::

    python examples/text_pipeline.py

Section 8 of the paper points out that text data needs its own feature
preprocessors (TF-IDF, embeddings, ...) before tabular Auto-FP applies.
This example shows that flow end to end:

1. generate a synthetic labelled corpus,
2. turn the documents into numeric features with three different
   vectorizers (counts, TF-IDF, hashing),
3. for each encoding, run an Auto-FP search over the usual seven
   preprocessors and compare against the no-preprocessing baseline.
"""

from __future__ import annotations

from repro import AutoFPProblem, make_search_algorithm
from repro.text import (
    CountVectorizer,
    HashingVectorizer,
    TfidfVectorizer,
    load_text_dataset,
)


def main() -> None:
    documents, labels = load_text_dataset("reviews", scale=0.6, random_state=0)
    print(f"corpus: {len(documents)} documents, "
          f"{len(set(labels.tolist()))} classes")

    vectorizers = {
        "counts": CountVectorizer(max_features=60),
        "tf-idf": TfidfVectorizer(max_features=60),
        "hashing": HashingVectorizer(n_features=60),
    }

    for name, vectorizer in vectorizers.items():
        features = vectorizer.fit_transform(documents)
        problem = AutoFPProblem.from_arrays(
            features, labels, model="lr", random_state=0, name=f"reviews/{name}"
        )
        baseline = problem.baseline_accuracy()
        result = make_search_algorithm("tevo_h", random_state=0).search(
            problem, max_trials=25
        )
        print(f"\n[{name}] encoded shape {features.shape}")
        print(f"  no preprocessing : {baseline:.4f}")
        print(f"  best pipeline    : {result.best_accuracy:.4f} "
              f"({result.best_pipeline.describe()})")


if __name__ == "__main__":
    main()
