"""Quickstart: search for a feature-preprocessing pipeline on one dataset.

Run with::

    python examples/quickstart.py

The example loads a small tabular dataset from the benchmark registry,
builds an Auto-FP problem with a logistic-regression downstream model,
runs the paper's best-ranked search algorithm (PBT) for a small evaluation
budget, and compares the found pipeline against the no-preprocessing
baseline and a plain random search.
"""

from __future__ import annotations

from repro import AutoFPProblem, make_search_algorithm
from repro.datasets import load_dataset


def main() -> None:
    # 1. Load a dataset (synthetic stand-in for the paper's "heart" dataset).
    X, y = load_dataset("heart")
    print(f"dataset: heart — {X.shape[0]} rows, {X.shape[1]} features, "
          f"{len(set(y.tolist()))} classes")

    # 2. Build the Auto-FP problem: an 80/20 train/validation split plus the
    #    default search space of 7 preprocessors and pipelines up to length 7.
    problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0, name="heart/lr")
    baseline = problem.baseline_accuracy()
    print(f"validation accuracy without preprocessing: {baseline:.4f}")

    # 3. Search with PBT (the paper's top-ranked algorithm) and random search.
    for algorithm_name in ("pbt", "rs"):
        algorithm = make_search_algorithm(algorithm_name, random_state=0)
        result = algorithm.search(problem, max_trials=40)
        improvement = (result.best_accuracy - baseline) * 100
        print(f"\n[{algorithm_name}] best pipeline after {len(result)} evaluations:")
        print(f"  {result.best_pipeline.describe()}")
        print(f"  validation accuracy: {result.best_accuracy:.4f} "
              f"({improvement:+.2f} points vs no-FP)")

    # 4. Reuse the winning pipeline like any fit/transform preprocessor.
    best = make_search_algorithm("pbt", random_state=0).search(problem, max_trials=40)
    fitted = best.best_pipeline.fit(problem.evaluator.X_train)
    transformed_valid = fitted.transform(problem.evaluator.X_valid)
    print(f"\ntransformed validation set shape: {transformed_valid.shape}")

    # 5. Parallel evaluation: pass n_jobs/backend to fan batched evaluations
    #    (PBT generations, Hyperband rungs, batched random search) out to
    #    worker threads or processes.  Results are bit-for-bit identical to
    #    the serial run — only the wall-clock time changes.  The same
    #    options exist on the CLI (`python -m repro search --n-jobs 4`) and
    #    on run_experiment() for whole (dataset x model x algorithm) grids.
    parallel_problem = AutoFPProblem.from_arrays(
        X, y, model="lr", random_state=0, name="heart/lr",
        n_jobs=2, backend="thread",
    )
    parallel = make_search_algorithm("pbt", random_state=0).search(
        parallel_problem, max_trials=40
    )
    print(f"parallel search matches serial: "
          f"{parallel.best_accuracy == best.best_accuracy}")

    # 6. Asynchronous (completion-driven) search: async_mode=True keeps all
    #    n_jobs workers saturated — the algorithm proposes the next pipeline
    #    while earlier evaluations are still in flight, instead of waiting
    #    at a batch barrier.  With serial evaluation async results are
    #    bit-for-bit identical to sync; with workers the scheduling is
    #    completion-driven (per-pipeline results never change).  ASHA
    #    (asynchronous successive halving, `--algorithm asha` on the CLI)
    #    is designed for exactly this mode: it promotes promising pipelines
    #    to higher training fidelities per completion, with no rung
    #    barriers.  The same switch exists on the CLI
    #    (`python -m repro search --n-jobs 4 --async`).
    async_problem = AutoFPProblem.from_arrays(
        X, y, model="lr", random_state=0, name="heart/lr",
        n_jobs=4, backend="thread", async_mode=True,
    )
    asha = make_search_algorithm("asha", random_state=0)
    async_result = asha.search(async_problem, max_trials=20)
    print(f"\n[asha, async x4] {len(async_result)} evaluations across "
          f"training fidelities, best accuracy "
          f"{async_result.best_accuracy:.4f}")

    # 7. Persistent caching: pass cache_dir= to keep every evaluation on
    #    disk.  Re-running the same search (same data, model and seed) —
    #    even in a new process — answers every pipeline from the cache
    #    instead of re-training: zero uncached evaluations, identical
    #    results.  The same option exists on the CLI
    #    (`python -m repro search --cache-dir .eval-cache`) and on
    #    run_experiment() for whole grids.
    cached_problem = AutoFPProblem.from_arrays(
        X, y, model="lr", random_state=0, name="heart/lr",
        cache_dir=".eval-cache",
    )
    cached = make_search_algorithm("pbt", random_state=0).search(
        cached_problem, max_trials=40
    )
    info = cached_problem.evaluator.cache_info()
    print(f"cached search matches serial: "
          f"{cached.best_accuracy == best.best_accuracy} "
          f"({info['misses']} uncached evaluations, "
          f"{info['disk_hits']} answered from disk — rerun me!)")

    # 8. Prefix-transform reuse: search algorithms overwhelmingly propose
    #    pipelines sharing long step prefixes (evolution mutates/appends a
    #    step, PNAS grows pipelines one position at a time).  With
    #    prefix_cache_bytes set, the evaluator caches every fitted prefix
    #    (steps + transformed train/valid arrays, up to the byte budget)
    #    and each new pipeline only pays Prep — the dominant search cost —
    #    for its uncached suffix.  Results are bit-for-bit identical; the
    #    budget is the memory/speed trade-off knob (bigger budget = more
    #    prefixes held = more reuse, at the cost of RAM).  The same option
    #    is `--prefix-cache-mb` on the CLI.
    prefix_problem = AutoFPProblem.from_arrays(
        X, y, model="lr", random_state=0, name="heart/lr",
        prefix_cache_bytes=64 * 1024 * 1024,  # 64 MiB of fitted prefixes
    )
    reused = make_search_algorithm("pbt", random_state=0).search(
        prefix_problem, max_trials=40
    )
    info = prefix_problem.evaluator.cache_info()
    print(f"prefix-cached search matches serial: "
          f"{reused.best_accuracy == best.best_accuracy} "
          f"({info['prefix_hits']} prefix hits, {info['steps_reused']} steps "
          f"reused, {info['bytes_held'] / 1e6:.1f} MB held)")


if __name__ == "__main__":
    main()
