"""Quickstart: search for a feature-preprocessing pipeline on one dataset.

Run with::

    python examples/quickstart.py

The example loads a small tabular dataset from the benchmark registry,
builds an Auto-FP problem with a logistic-regression downstream model,
runs the paper's best-ranked search algorithm (PBT) against the
no-preprocessing baseline, and then tours the runtime surface: one
:class:`~repro.core.context.ExecutionContext` object carries every
performance knob (parallel backend, persistent evaluation cache, prefix
reuse, async scheduling), and one
:class:`~repro.search.session.SearchSession` object carries the run's
lifecycle — progress callbacks, interruption, checkpoint and bit-for-bit
resume.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import AutoFPProblem, ExecutionContext, SearchSession, make_search_algorithm
from repro.datasets import load_dataset


def main() -> None:
    # 1. Load a dataset (synthetic stand-in for the paper's "heart" dataset).
    X, y = load_dataset("heart")
    print(f"dataset: heart — {X.shape[0]} rows, {X.shape[1]} features, "
          f"{len(set(y.tolist()))} classes")

    # 2. Build the Auto-FP problem: an 80/20 train/validation split plus the
    #    default search space of 7 preprocessors and pipelines up to length 7.
    problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0, name="heart/lr")
    baseline = problem.baseline_accuracy()
    print(f"validation accuracy without preprocessing: {baseline:.4f}")

    # 3. Search with PBT (the paper's top-ranked algorithm) and random search.
    for algorithm_name in ("pbt", "rs"):
        algorithm = make_search_algorithm(algorithm_name, random_state=0)
        result = algorithm.search(problem, max_trials=40)
        improvement = (result.best_accuracy - baseline) * 100
        print(f"\n[{algorithm_name}] best pipeline after {len(result)} evaluations:")
        print(f"  {result.best_pipeline.describe()}")
        print(f"  validation accuracy: {result.best_accuracy:.4f} "
              f"({improvement:+.2f} points vs no-FP)")

    # 4. Reuse the winning pipeline like any fit/transform preprocessor.
    best = make_search_algorithm("pbt", random_state=0).search(problem, max_trials=40)
    fitted = best.best_pipeline.fit(problem.evaluator.X_train)
    transformed_valid = fitted.transform(problem.evaluator.X_valid)
    print(f"\ntransformed validation set shape: {transformed_valid.shape}")

    # 5. ExecutionContext: ONE object for every runtime knob.  Earlier
    #    releases threaded n_jobs/backend/cache_dir/prefix_cache_bytes/
    #    async_mode separately through every layer; those keywords still
    #    work but are deprecated.  A context is frozen, hashable and
    #    JSON-serializable (to_dict/from_dict), can be read from REPRO_*
    #    environment variables (ExecutionContext.from_env()) or a JSON
    #    file (`repro search --context run.json`), and configures
    #    problems, searches, whole experiment grids and the CLI alike:
    #
    #    * n_jobs/backend fan evaluation batches (PBT generations,
    #      Hyperband rungs) out to worker threads or processes — results
    #      are bit-for-bit identical to serial, only wall-clock changes;
    #    * cache_dir persists every evaluation across runs (a repeated
    #      search answers from disk: zero re-training);
    #    * prefix_cache_bytes resumes each pipeline from its longest
    #      already-fitted prefix (Prep dominates search cost, and under
    #      the process backend the workers' reuse counters are merged
    #      back into cache_info());
    #    * async_mode schedules completion-driven (the algorithm proposes
    #      while earlier evaluations are still in flight — pair with the
    #      "asha" extension algorithm).
    context = ExecutionContext(
        n_jobs=2, backend="thread",
        prefix_cache_bytes=64 * 1024 * 1024,
        cache_dir=".eval-cache",
    )
    fast_problem = AutoFPProblem.from_arrays(
        X, y, model="lr", random_state=0, name="heart/lr", context=context,
    )
    parallel = make_search_algorithm("pbt", random_state=0).search(
        fast_problem, max_trials=40
    )
    info = fast_problem.evaluator.cache_info()
    print(f"\n[context] {context.describe()}")
    print(f"parallel+cached search matches serial: "
          f"{parallel.best_accuracy == best.best_accuracy} "
          f"({info['misses']} uncached, {info.get('disk_hits', 0)} from disk, "
          f"{info['prefix_hits']} prefix hits, {info['steps_reused']} steps "
          f"reused — rerun me!)")
    fast_problem.evaluator.engine.close()

    # 6. Async mode rides the same context.  ASHA (asynchronous successive
    #    halving) is built for it: per completed evaluation it promotes
    #    promising pipelines to higher training fidelities, no rung
    #    barriers, every worker saturated.
    async_problem = AutoFPProblem.from_arrays(
        X, y, model="lr", random_state=0, name="heart/lr",
        context=ExecutionContext(n_jobs=4, backend="thread", async_mode=True),
    )
    async_result = make_search_algorithm("asha", random_state=0).search(
        async_problem, max_trials=20
    )
    print(f"\n[asha, async x4] {len(async_result)} evaluations across "
          f"training fidelities, best accuracy "
          f"{async_result.best_accuracy:.4f}")
    async_problem.evaluator.engine.close()

    # 7. SearchSession: the lifecycle facade for long-running searches.
    #    It drives any algorithm step-wise (sync or async), fires
    #    callbacks per observed trial / per proposal batch / per
    #    checkpoint, and can snapshot the whole run — trial history,
    #    budget remainder, RNG stream and the algorithm's internal state —
    #    after any completed trial.
    #
    #    Walkthrough: checkpoint -> kill -> resume.  We run a 40-trial PBT
    #    search that auto-checkpoints every 5 trials and abort it after
    #    trial 12 (session.stop() here; a real `kill -9` behaves the same,
    #    because the checkpoint is already on disk).  Resuming in a fresh
    #    process rebuilds everything from the document and finishes
    #    **bit-for-bit identical** to a run that was never interrupted.
    checkpoint = Path(tempfile.mkdtemp()) / "heart-pbt.checkpoint"

    def abort_after_twelve(session, record):
        if len(session.result) == 12:
            session.stop()  # simulate the process dying here

    session = SearchSession(
        AutoFPProblem.from_arrays(X, y, model="lr", random_state=0,
                                  name="heart/lr"),
        make_search_algorithm("pbt", random_state=0),
        on_trial=abort_after_twelve,
        checkpoint_path=checkpoint, checkpoint_every=5,
    )
    partial = session.run(max_trials=40)
    print(f"\n[session] interrupted after {len(partial)} trials; "
          f"last checkpoint: {session.last_checkpoint_path.name}")

    #    A new process would run exactly this line (the checkpoint knows
    #    the dataset for registry problems; array-built problems are
    #    re-supplied, and a fingerprint guard refuses mismatched data).
    resumed = SearchSession.resume(
        checkpoint,
        problem=AutoFPProblem.from_arrays(X, y, model="lr", random_state=0,
                                          name="heart/lr"),
    )
    restored_trials = len(resumed.result)
    finished = resumed.run()
    print(f"[session] resumed from trial {restored_trials} "
          f"-> finished with {len(finished)} trials, "
          f"best accuracy {finished.best_accuracy:.4f}")
    print(f"resumed run identical to uninterrupted: "
          f"{[t.accuracy for t in finished.trials] == [t.accuracy for t in best.trials]}")
    #    The same story on the CLI:
    #      repro search --dataset heart --algorithm pbt --max-trials 40 \
    #          --checkpoint run.checkpoint --checkpoint-every 5
    #      ...kill it...
    #      repro search --resume --checkpoint run.checkpoint

    # 8. Observing a search.  Telemetry rides the same context: "counters"
    #    keeps cheap cross-backend metrics (cache hit rates, prefix steps
    #    reused, budget refunds) readable via session.metrics_snapshot() or
    #    the on_metrics callback; "trace" additionally writes per-trial
    #    phase spans (propose -> cache lookup -> prep -> train) to a
    #    process-safe JSONL sink under telemetry_dir, plus a heartbeat
    #    file a dashboard can poll.  Telemetry never changes search
    #    results — "off" vs "trace" runs are bit-for-bit identical.
    trace_dir = Path(tempfile.mkdtemp())
    observed = SearchSession(
        AutoFPProblem.from_arrays(
            X, y, model="lr", random_state=0, name="heart/lr",
            context=ExecutionContext(telemetry_mode="trace",
                                     telemetry_dir=trace_dir),
        ),
        make_search_algorithm("rs", random_state=0),
        on_metrics=lambda session, snapshot: None,  # live counters per trial
    )
    traced = observed.run(max_trials=10)
    snapshot = observed.metrics_snapshot()
    print(f"\n[telemetry] {int(snapshot['session.trials'])} trials traced, "
          f"{int(snapshot.get('evaluator.cache_hits', 0))} cache hits; "
          f"trace + heartbeat in {trace_dir}")
    #    Aggregate the trace into the paper's Table-5 pick/prep/train
    #    breakdown (or export --chrome for chrome://tracing):
    #      repro trace summary --trace <telemetry_dir>
    from repro.telemetry import read_trace, summarize_trace
    overall = summarize_trace(read_trace(trace_dir / "trace.jsonl"))["overall"]
    print(f"[telemetry] prep {overall['prep_pct']:.0f}% vs train "
          f"{overall['train_pct']:.0f}% of trial time over "
          f"{len(traced)} trials (the paper's Table-5 shape)")

    # 9. Keeping the contracts.  Everything above leans on invariants the
    #    code can silently lose: seeded generators threaded as parameters
    #    (else resume stops being bit-for-bit), copy-on-write transforms
    #    (else the prefix cache hands out corrupted arrays), MetricSet
    #    counters (else telemetry goes blind), atomic writes (else a
    #    killed run poisons its own checkpoint).  `repro lint` is an AST
    #    pass that enforces them statically:
    #      RPR001 determinism   RPR002 copy-on-write  RPR003 counter dicts
    #      RPR004 silent except RPR005 lock discipline
    #      RPR006 atomic writes RPR007 explicit encoding
    #      RPR008 bounded retry loops
    #    Run `repro lint src/repro tests` (or `--json` in CI); suppress a
    #    justified exception inline with `# repro: lint-ignore[RPR001]`.
    from repro.lint import lint_paths
    repo_root = Path(__file__).resolve().parents[1]
    report = lint_paths([repo_root / "src" / "repro"])
    print(f"\n[lint] {report.files_checked} library files, "
          f"{len(report.findings)} findings -> "
          f"{'clean' if report.clean else 'VIOLATIONS'}")

    # 10. Serving searches.  Everything above composes into a service:
    #     `repro serve` runs a SessionManager — many concurrent sessions
    #     over ONE shared engine and cache root, per-tenant trial quotas
    #     enforced through Budget.admits() at submission, and a durable
    #     state directory where every session checkpoints itself.  Kill
    #     the server mid-search and restart it on the same --state-dir:
    #     every in-flight session resumes from its checkpoint, bit-for-bit
    #     identical to a run that was never interrupted.  The substrate
    #     fixes that make co-tenancy safe: per-session heartbeat files
    #     (heartbeat-<id>.json), session-labelled metric series (one
    #     tenant's refunds never bleed into another's snapshot), and
    #     process-pool reuse keyed by evaluator fingerprint.
    #       repro serve --port 8642 --state-dir ./serve-state \
    #           --max-sessions 2 --tenant-quota 200
    #       repro submit --dataset heart --algorithm pbt --max-trials 40 --wait
    #       repro status            # all sessions at a glance
    #       repro events --session <id> --follow   # live trial stream
    #     The same stack is a library (no sockets needed):
    from repro.serve import SessionManager
    manager = SessionManager(state_dir=Path(tempfile.mkdtemp()),
                             max_sessions=2, tenant_quota=50)
    session_id = manager.submit({"dataset": "heart", "algorithm": "rs",
                                 "max_trials": 5, "seed": 0, "scale": 0.5})
    while manager.status(session_id)["status"] in ("queued", "running"):
        manager.events(session_id, after=0, timeout=1.0)  # long-poll
    served = manager.status(session_id)
    manager.shutdown()
    print(f"\n[serve] session {session_id}: {served['status']} after "
          f"{served['trials']} trials, best accuracy "
          f"{served['result']['best_accuracy']:.4f}")

    # 11. Surviving failures.  Long searches meet infrastructure faults:
    #     a pool worker OOM-killed mid-evaluation, an evaluation that
    #     hangs forever, a flaky IPC channel.  The engine recovers from
    #     all three without changing results: a broken process pool is
    #     rebuilt and its lost tasks resubmitted under a RetryPolicy
    #     (bounded attempts, exponential backoff, seeded jitter); a task
    #     that keeps killing its worker is quarantined as a failed record
    #     with failure_kind="worker_crash" (innocent co-pending tasks are
    #     never quarantined — the crash is attributed by re-running the
    #     round one task at a time); eval_timeout arms a watchdog that
    #     kills hung evaluations and records failure_kind="timeout".
    #     Failure records carry zero timings and are never cached, so a
    #     crash-and-recover run's surviving records are bit-for-bit
    #     identical to a run that never faulted.  Every recovery path is
    #     reproducibly testable through the chaos harness — a seeded
    #     FaultPlan of worker kills / transient errors / hangs injected
    #     at exact task indices:
    #       REPRO_EVAL_TIMEOUT=300 REPRO_CHAOS='crash@2,delay@5:30!' \
    #           repro search --dataset heart --backend process --n-jobs 4 ...
    #     The same knobs as a library:
    from repro.engine import RetryPolicy
    faulty = SearchSession(
        AutoFPProblem.from_arrays(
            X, y, model="lr", random_state=0, name="heart/lr",
            context=ExecutionContext(eval_timeout=300.0,
                                     chaos="crash@2,error@5"),
        ),
        make_search_algorithm("rs", random_state=0),
    )
    survived = faulty.run(max_trials=10)
    print(f"\n[faults] chaos plan crash@2,error@5 -> {len(survived)} trials, "
          f"quarantined {sum(t.failure_kind is not None for t in survived.trials)}, "
          f"best accuracy {survived.best_accuracy:.4f} "
          f"(identical to the no-fault run: transient faults retry clean)")
    print(f"[faults] RetryPolicy backoff: "
          f"{[round(RetryPolicy(seed=0).delay(n), 4) for n in (1, 2, 3)]}s")
    #     Under `repro serve`, a crash degrades /healthz (status
    #     "degraded" + last_crash details) but sessions keep being
    #     served; only a pool that cannot be rebuilt fails its session.

    # 12. Scaling out.  The "remote" backend distributes evaluations over
    #     worker daemons on any machines that can reach the coordinator.
    #     The search process binds a coordinator socket and prints its
    #     address; `repro worker` daemons dial it, register their core
    #     counts, lease evaluations and stream results back while
    #     heartbeating.  Membership is elastic (workers may join or leave
    #     mid-search), a worker that dies is detected by heartbeat
    #     silence and its in-flight evaluations are resubmitted to
    #     survivors under the §11 RetryPolicy, and workers pointed at a
    #     shared --cache-dir deduplicate results across machines through
    #     the persistent eval cache.  On real machines:
    #       # terminal 1 — the search binds the coordinator:
    #       repro search --dataset heart --backend remote \
    #           --remote-coordinator 0.0.0.0:8643 --max-trials 40
    #       # terminals 2+3 (any reachable host) — two workers:
    #       repro worker --coordinator <host>:8643 --cores 4
    #       repro worker --coordinator <host>:8643 --cores 4
    #       # now `kill` one worker mid-run: the search finishes on the
    #       # survivor with results identical to an undisturbed run.
    #     The same fleet in-process (what the tests and CI smoke use),
    #     with a chaos fault that drops one of the two workers at
    #     dispatch index 5 — mid-search, with leases in flight:
    from repro.engine import ChaosBackend, ExecutionEngine
    from repro.engine.remote import start_loopback

    remote_backend, remote_workers = start_loopback(2)
    remote_problem = AutoFPProblem.from_arrays(
        X, y, model="lr", random_state=0, name="heart/lr")
    remote_problem.evaluator.set_engine(
        ExecutionEngine(ChaosBackend(remote_backend, "drop_worker@5")))
    distributed = make_search_algorithm("pbt", random_state=0).search(
        remote_problem, max_trials=40)
    remote_problem.evaluator.engine.close()
    for remote_worker in remote_workers:
        remote_worker.stop()
    print(f"\n[remote] 2-worker fleet, one dropped mid-search: "
          f"{len(distributed)} trials, best accuracy "
          f"{distributed.best_accuracy:.4f} — identical to serial: "
          f"{distributed.best_accuracy == best.best_accuracy}")


if __name__ == "__main__":
    main()
