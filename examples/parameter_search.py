"""Parameter-extended Auto-FP: One-step vs Two-step (Section 6 of the paper).

Run with::

    python examples/parameter_search.py

The example extends the search space with preprocessor parameters in two
flavours — the low-cardinality grid of Table 6 and the high-cardinality
grid of Table 7 — and compares the two extension strategies:

* One-step: every parameterisation becomes its own preprocessor and one
  pipeline search covers parameters and ordering jointly.
* Two-step: parameter values are resampled between short pipeline searches.

Expect One-step to win on the low-cardinality space and Two-step to win on
the high-cardinality space (where the QuantileTransformer's ~4000 variants
dominate the One-step candidate pool).
"""

from __future__ import annotations

from repro import AutoFPProblem
from repro.datasets import load_dataset
from repro.extensions import (
    compare_one_step_two_step,
    high_cardinality_space,
    low_cardinality_space,
)
from repro.search import PBT


def run_comparison(dataset: str, space_name: str, parameter_space, budget: int = 30) -> None:
    X, y = load_dataset(dataset)
    problem = AutoFPProblem.from_arrays(X, y, model="lr", random_state=0, name=dataset)
    baseline = problem.baseline_accuracy()

    outcomes = compare_one_step_two_step(
        problem,
        parameter_space,
        lambda seed: PBT(random_state=seed),
        max_trials=budget,
        trials_per_round=8,
        random_state=0,
    )
    one, two = outcomes["one_step"], outcomes["two_step"]

    print(f"--- {dataset} / {space_name} (no-FP accuracy {baseline:.4f}) ---")
    print(f"  one-step: {one.best_accuracy:.4f}  "
          f"best = {one.best_pipeline.describe()}")
    print(f"  two-step: {two.best_accuracy:.4f}  "
          f"best = {two.best_pipeline.describe()}  ({two.n_rounds} rounds)")
    winner = "one-step" if one.best_accuracy >= two.best_accuracy else "two-step"
    print(f"  winner: {winner}\n")


def main() -> None:
    low = low_cardinality_space()
    high = high_cardinality_space()
    print(f"low-cardinality space: {low.n_parameterized_preprocessors()} one-step "
          f"preprocessors (max cardinality {low.max_cardinality()})")
    print(f"high-cardinality space: {high.n_parameterized_preprocessors()} one-step "
          f"preprocessors (max cardinality {high.max_cardinality()})\n")

    for dataset in ("australian", "madeline"):
        run_comparison(dataset, "low-cardinality (Table 6)", low)
        run_comparison(dataset, "high-cardinality (Table 7)", high)


if __name__ == "__main__":
    main()
