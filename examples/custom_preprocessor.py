"""Extending Auto-FP with a custom preprocessor and a custom search space.

Run with::

    python examples/custom_preprocessor.py

The paper notes that the benchmark "can easily be extended to derive
additional insights" when more preprocessors are needed.  This example
shows the two extension points:

1. implement a new :class:`~repro.preprocessing.base.Preprocessor`
   (here a simple log1p transform and a feature clipper),
2. build a :class:`~repro.core.search_space.SearchSpace` that mixes the new
   preprocessors with the built-in ones and hand it to any search algorithm.
"""

from __future__ import annotations

import numpy as np

from repro import AutoFPProblem, SearchSpace, make_search_algorithm
from repro.datasets import load_dataset
from repro.preprocessing import Preprocessor, default_preprocessors


class Log1pTransformer(Preprocessor):
    """Apply sign-preserving log1p to every feature (tames heavy tails)."""

    name = "log1p"

    def __init__(self) -> None:
        super().__init__()

    def _fit(self, X: np.ndarray, y=None) -> None:
        return None

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return np.sign(X) * np.log1p(np.abs(X))


class QuantileClipper(Preprocessor):
    """Clip every feature to its [lower, upper] training quantiles."""

    name = "quantile_clipper"

    def __init__(self, lower: float = 0.01, upper: float = 0.99) -> None:
        super().__init__(lower=lower, upper=upper)

    def _fit(self, X: np.ndarray, y=None) -> None:
        self.low_ = np.quantile(X, self.lower, axis=0)
        self.high_ = np.quantile(X, self.upper, axis=0)

    def _transform(self, X: np.ndarray) -> np.ndarray:
        return np.clip(X, self.low_, self.high_)


def main() -> None:
    X, y = load_dataset("forex")

    # A search space mixing the 7 paper preprocessors with the 2 custom ones.
    candidates = default_preprocessors() + [Log1pTransformer(), QuantileClipper()]
    space = SearchSpace(candidates, max_length=4)
    print(f"extended space: {space.n_candidates} candidates, "
          f"{space.size():,} possible pipelines")

    problem = AutoFPProblem.from_arrays(X, y, model="lr", space=space,
                                        random_state=0, name="forex/custom")
    baseline = problem.baseline_accuracy()

    result = make_search_algorithm("tevo_h", random_state=0).search(problem, max_trials=40)
    print(f"no-FP accuracy:   {baseline:.4f}")
    print(f"best accuracy:    {result.best_accuracy:.4f}")
    print(f"best pipeline:    {result.best_pipeline.describe()}")

    used_custom = any(
        name in ("log1p", "quantile_clipper")
        for trial in result.trials
        for name in trial.pipeline.names()
    )
    print(f"custom preprocessors explored during the search: {used_custom}")


if __name__ == "__main__":
    main()
